"""Server-side telemetry stores: traces, slow requests, request rate.

Small bounded containers the :class:`~repro.server.daemon.ValidationServer`
hangs its request-scoped telemetry on — all stdlib, all O(capacity)
memory, so a long-lived daemon cannot grow without bound:

- :class:`TraceStore` keeps the last N sampled traces (Chrome
  trace-event payloads) by trace_id, behind ``GET /v1/traces/<id>``;
- :class:`SlowLog` keeps the last N requests that crossed the
  ``--slow-ms`` threshold, with their trace_ids, for ``/v1/stats``
  and ``repro-xic top``;
- :class:`RequestWindow` remembers recent request completion times so
  ``/v1/stats`` can report a live requests-per-second figure.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Optional

__all__ = ["RequestWindow", "SlowLog", "TraceStore"]


class TraceStore:
    """Last-N sampled traces, keyed by trace_id (LRU on insert)."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stored = 0
        self._traces: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def put(self, trace_id: str, payload: dict) -> None:
        with self._lock:
            if trace_id in self._traces:
                self._traces.move_to_end(trace_id)
            self._traces[trace_id] = payload
            self.stored += 1
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            return self._traces.get(trace_id)

    def ids(self) -> "list[str]":
        """Stored trace ids, most recent last."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)


class SlowLog:
    """Ring of the last N slow-request records (dicts)."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.total = 0
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            self.total += 1

    def tail(self, n: int = 10) -> "list[dict]":
        """Most recent ``n`` records, oldest first."""
        with self._lock:
            items = list(self._ring)
        return items[-n:] if n >= 0 else items

    def __len__(self) -> int:
        return len(self._ring)


class RequestWindow:
    """Completion timestamps of the last N requests, for live RPS."""

    def __init__(self, capacity: int = 512,
                 window_s: float = 60.0):
        self.window_s = window_s
        self._times: "deque[float]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def mark(self, now: Optional[float] = None) -> None:
        with self._lock:
            self._times.append(time.monotonic() if now is None else now)

    def rate(self, now: Optional[float] = None) -> float:
        """Requests per second over the trailing window (0.0 when
        idle).  With fewer completions than the window covers, the
        denominator shrinks to the observed span, so a cold server
        reports its true short-term rate rather than diluting it."""
        now = time.monotonic() if now is None else now
        cutoff = now - self.window_s
        with self._lock:
            recent = [t for t in self._times if t >= cutoff]
        if not recent:
            return 0.0
        span = max(now - recent[0], 1e-9)
        return len(recent) / span
