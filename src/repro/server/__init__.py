"""The long-lived validation service: registry + daemon.

The expensive per-schema artifacts — the parsed ``DTD^C``, its
content-addressed fingerprint, and the compiled per-label
:class:`~repro.stream.StreamPlan` — are built exactly once per process
by the :class:`SchemaRegistry` and served hot by the
:class:`ValidationServer` behind ``repro-xic serve``::

    from repro import SchemaRegistry
    from repro.server import ValidationServer

    registry = SchemaRegistry()
    registry.load("book", "schemas/book.dtdc", root="book")
    server = ValidationServer(registry, cache="~/.cache/repro")
    # await server.start_http("127.0.0.1", 8080)

See :mod:`repro.server.registry` for the handle/hot-swap semantics and
:mod:`repro.server.daemon` for the wire protocols.
"""

from repro.server.daemon import ValidationServer
from repro.server.registry import (
    SchemaHandle, SchemaNotFound, SchemaRegistry, as_handle,
)

__all__ = [
    "SchemaHandle",
    "SchemaNotFound",
    "SchemaRegistry",
    "ValidationServer",
    "as_handle",
]
