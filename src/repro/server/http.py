"""Hand-rolled HTTP/1.1 framing over ``asyncio`` streams.

The serve daemon deliberately avoids every HTTP dependency — including
stdlib ``http.server``, whose threading model and handler classes fight
the asyncio front door — and implements the small slice of HTTP/1.1 the
service needs directly on :func:`asyncio.start_server` streams:

- request line + headers + ``Content-Length`` bodies (no chunked
  requests; responses always carry an explicit ``Content-Length``);
- keep-alive by default for HTTP/1.1, honored ``Connection: close``;
- incoming body bytes are SHA-256-hashed *as they are read*, so the
  cache-admission key for a validate request is ready the moment the
  request is — the daemon never re-hashes the document.

This module knows nothing about the service's routes; it parses
requests into :class:`HttpRequest` and writes :class:`HttpResponse`
objects.  The route table lives in :mod:`repro.server.daemon`.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "HttpRequest", "HttpResponse",
           "read_request", "write_response"]

#: Upper bounds that keep a misbehaving client from ballooning memory.
MAX_LINE = 16 * 1024
MAX_BODY = 256 * 1024 * 1024

_REASONS = {200: "OK", 201: "Created", 204: "No Content",
            400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            422: "Unprocessable Entity", 500: "Internal Server Error"}


class HttpError(Exception):
    """A request that could not be framed; carries the status to send."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, body."""

    method: str
    path: str                      # decoded path, e.g. "/v1/validate/book"
    query: "dict[str, str]"        # first value per key
    headers: "dict[str, str]"      # lower-cased names
    body: bytes
    #: a ``hashlib.sha256`` that has consumed exactly the body bytes —
    #: fed during the read, so cache admission never re-hashes
    hasher: object = None
    keep_alive: bool = True
    #: path split on "/", empty segments dropped: ["v1", "validate", "book"]
    segments: "list[str]" = field(default_factory=list)


@dataclass
class HttpResponse:
    """One response to write: status + body (+ content type)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: "dict[str, str]" = field(default_factory=dict)


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""             # clean EOF between requests
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "header line too long") from exc
    if len(line) > MAX_LINE:
        raise HttpError(400, "header line too long")
    return line


async def read_request(reader: asyncio.StreamReader
                       ) -> "HttpRequest | None":
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on framing problems — the caller answers
    with the carried status and closes the connection.
    """
    line = await _read_line(reader)
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise HttpError(400, f"malformed request line {line!r}") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0 or length > MAX_BODY:
        raise HttpError(413, f"body of {length} bytes exceeds the "
                        f"{MAX_BODY}-byte limit")
    hasher = hashlib.sha256()
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated body") from exc
        hasher.update(body)

    split = urlsplit(target)
    path = unquote(split.path)
    connection = headers.get("connection", "").lower()
    keep_alive = (version == "HTTP/1.1" and connection != "close") \
        or (version == "HTTP/1.0" and connection == "keep-alive")
    return HttpRequest(
        method=method.upper(), path=path,
        query={k: v for k, v in parse_qsl(split.query)},
        headers=headers, body=body, hasher=hasher,
        keep_alive=keep_alive,
        segments=[s for s in path.split("/") if s])


async def write_response(writer: asyncio.StreamWriter,
                         response: HttpResponse,
                         keep_alive: bool) -> None:
    """Serialize ``response`` (always with ``Content-Length``)."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    head.extend(f"{k}: {v}" for k, v in response.headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()
