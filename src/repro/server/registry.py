"""The schema registry: every expensive schema artifact, compiled once.

A ``DTD^C`` is cheap to *hold* but expensive to *prepare*: parsing the
schema text, fingerprinting it for the content-addressed
:class:`~repro.corpus.ResultCache`, and compiling the per-label
:class:`~repro.stream.StreamPlan` each cost real work that every
validation entry point used to re-pay independently.  The
:class:`SchemaRegistry` makes the compiled triple ``(DTDC, StreamPlan,
fingerprint)`` a first-class, named, versioned object — the
:class:`SchemaHandle` — and becomes the pivot of the public API::

    from repro import SchemaRegistry

    registry = SchemaRegistry()
    handle = registry.load("book", "schemas/book.dtdc", root="book")
    validator = handle.validator()          # a repro.Validator
    report = validator.check_stream("doc.xml")

    registry.reload("book", new_text)       # hot swap: version bumps,
    registry.get("book").version            # in-flight holders of the
                                            # old handle are untouched

Hot-swap semantics: a handle, once obtained, never changes — ``reload``
builds the *new* handle completely (parse, check) before atomically
replacing the name binding, so requests that resolved the old handle
finish on the old plan while new admissions see the new version.  This
is what gives ``repro-xic serve`` zero-downtime schema reloads.

The uniform ``schema: str | DTDC | SchemaHandle`` contract used across
the package is implemented by :meth:`SchemaRegistry.resolve` (strings
name registered schemas) and :func:`as_handle` (registry-free: wraps a
bare ``DTDC`` in a process-wide memoized anonymous handle, so even
legacy ``Validator(dtd)`` call sites compile each schema once per
process).
"""

from __future__ import annotations

import os
import threading
import weakref
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.dtd.dtdc import DTDC
from repro.errors import ReproError
from repro.obs import NULL_OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stream.plan import StreamPlan
    from repro.validator import Validator

__all__ = ["SchemaHandle", "SchemaNotFound", "SchemaRegistry", "as_handle"]

#: What schema-accepting APIs take: a registered name, a parsed schema,
#: or a compiled handle.
SchemaLike = Union[str, DTDC, "SchemaHandle"]

#: What :meth:`SchemaRegistry.load` accepts as the schema itself: a
#: parsed ``DTDC``, DTD^C text (recognized by a leading ``<``), or a
#: filesystem path to read the text from.
SchemaSource = Union[str, os.PathLike, DTDC]


class SchemaNotFound(ReproError):
    """No schema is registered under the requested name."""


class SchemaHandle:
    """One compiled schema: ``(DTDC, StreamPlan, fingerprint)`` + identity.

    Handles are immutable from the caller's point of view — the lazy
    ``fingerprint``/``plan`` properties compute once and cache (under a
    lock, so concurrent first touches compile once).  ``version`` counts
    reloads of the *name* in the owning registry; the handle itself is
    never mutated by a reload, only superseded (``active`` flips False).
    """

    __slots__ = ("name", "version", "dtd", "source_text", "active",
                 "_fingerprint", "_plan", "_codegen", "_obs", "_lock",
                 "__weakref__")

    def __init__(self, dtd: DTDC, name: str = "<anonymous>",
                 version: int = 1, source_text: Optional[str] = None,
                 obs=None):
        if not isinstance(dtd, DTDC):
            raise TypeError(f"SchemaHandle needs a DTDC, got {type(dtd)!r}")
        self.name = name
        self.version = version
        self.dtd = dtd
        #: the DTD^C text this handle was parsed from (None when built
        #: from an in-memory ``DTDC``); ``reload(name)`` without a new
        #: source re-parses this text
        self.source_text = source_text
        #: False once a registry replaced or unloaded this handle;
        #: purely informational — the compiled artifacts stay valid
        self.active = True
        self._fingerprint: Optional[str] = None
        self._plan = None
        #: lazily-compiled codegen artifact: a CompiledSchema, or the
        #: CompileError that proved the schema outside the codegen
        #: subset (memoized either way — compile is attempted once)
        self._codegen = None
        self._obs = obs or NULL_OBS
        self._lock = threading.Lock()

    @property
    def fingerprint(self) -> str:
        """SHA-256 over ``S`` and Σ — the cache-key half of the triple;
        computed once per handle."""
        if self._fingerprint is None:
            from repro.corpus.cache import schema_fingerprint

            with self._lock:
                if self._fingerprint is None:
                    self._fingerprint = schema_fingerprint(self.dtd)
        return self._fingerprint

    @property
    def plan(self) -> "StreamPlan":
        """The compiled :class:`~repro.stream.StreamPlan`; compiled once
        per handle (the ``registry_schema_compilations`` counter is the
        regression tripwire for accidental recompiles)."""
        if self._plan is None:
            from repro.stream.plan import compile_plan

            with self._lock:
                if self._plan is None:
                    plan = compile_plan(self.dtd)
                    if self._obs:
                        self._obs.counter(
                            "registry_schema_compilations",
                            help="StreamPlan compilations performed by "
                            "schema handles (one per schema per process "
                            "when everything routes through the registry)",
                        ).add(1)
                    self._plan = plan
        return self._plan

    @property
    def codegen(self):
        """The generated-code artifact
        (:class:`~repro.codegen.CompiledSchema`) — compiled once per
        handle, shared by every engine="codegen" call site; raises
        :class:`~repro.codegen.CompileError` for schemas outside the
        codegen subset (the failure is memoized too, so the probe is
        paid once)."""
        cached = self._codegen
        if cached is None:
            from repro.codegen import CompileError, compile_schema

            # resolve plan/fingerprint before taking the lock: both
            # properties lock on first touch themselves
            plan = self.plan
            fingerprint = self.fingerprint
            with self._lock:
                if self._codegen is None:
                    try:
                        self._codegen = compile_schema(
                            plan, fingerprint, obs=self._obs)
                    except CompileError as exc:
                        self._codegen = exc
            cached = self._codegen
        if isinstance(cached, Exception):
            raise cached
        return cached

    def supports_codegen(self) -> bool:
        """Whether this schema is inside the codegen subset (compiles
        on first call; the answer is memoized)."""
        from repro.codegen import CompileError

        try:
            self.codegen
        except CompileError:
            return False
        return True

    def validator(self, obs=None) -> "Validator":
        """A :class:`repro.Validator` bound to this handle (sharing its
        compiled plan and fingerprint)."""
        from repro.validator import Validator

        return Validator(self, obs=obs)

    def to_dict(self) -> dict:
        """JSON-safe identity — what ``repro-xic serve`` reports."""
        return {"name": self.name, "version": self.version,
                "fingerprint": self.fingerprint,
                "root": self.dtd.structure.root,
                "constraints": len(self.dtd.constraints),
                "engines": self.engines(),
                "active": self.active}

    def engines(self) -> "list[str]":
        """Engine names this handle can serve (registered engines,
        minus ``codegen``/``auto``'s codegen half when the schema is
        outside the codegen subset — ``auto`` itself always works, it
        just resolves to ``stream``)."""
        from repro import engines as _engines

        return [name for name in _engines.names()
                if name != "codegen" or self.supports_codegen()]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<SchemaHandle {self.name!r} v{self.version} "
                f"root={self.dtd.structure.root!r} "
                f"|Sigma|={len(self.dtd.constraints)}"
                f"{'' if self.active else ' retired'}>")


#: Process-wide memo for :func:`as_handle`: one anonymous handle per
#: ``DTDC`` object, so every facade constructed over the same schema
#: shares one compiled plan.  Weak keys: dropping the schema drops the
#: handle.
_ADHOC: "weakref.WeakKeyDictionary[DTDC, SchemaHandle]" = \
    weakref.WeakKeyDictionary()
_ADHOC_LOCK = threading.Lock()


def as_handle(schema: "DTDC | SchemaHandle", obs=None) -> SchemaHandle:
    """The uniform-contract adapter for registry-free call sites.

    A :class:`SchemaHandle` passes through; a :class:`DTDC` is wrapped
    in a memoized anonymous handle (one per schema object per process).
    Strings are *not* accepted here — a name only means something to a
    :class:`SchemaRegistry`, so use :meth:`SchemaRegistry.resolve`.
    """
    if isinstance(schema, SchemaHandle):
        return schema
    if not isinstance(schema, DTDC):
        raise TypeError(
            f"expected a DTDC or SchemaHandle, got {type(schema)!r} "
            "(string names resolve through a SchemaRegistry)")
    with _ADHOC_LOCK:
        handle = _ADHOC.get(schema)
        if handle is None:
            handle = SchemaHandle(schema, obs=obs)
            _ADHOC[schema] = handle
    return handle


class SchemaRegistry:
    """Named, versioned, hot-swappable compiled schemas.

    All mutating operations are atomic under one lock; readers
    (``get``/``resolve``) take the lock only for the dict lookup, and
    the handle they receive is immutable, so a concurrent ``reload``
    can never change what an in-flight request validates against.
    """

    def __init__(self, obs=None):
        self.obs = obs or NULL_OBS
        self._handles: dict[str, SchemaHandle] = {}
        self._lock = threading.Lock()

    # -- loading -----------------------------------------------------

    def _build(self, name: str, source: SchemaSource,
               root: Optional[str], version: int) -> SchemaHandle:
        """Parse and wrap ``source`` — fully, before any binding swaps."""
        if isinstance(source, DTDC):
            dtd, text = source, None
        else:
            if isinstance(source, os.PathLike):
                text = Path(source).read_text()
            elif isinstance(source, str):
                # the check_stream convention: text is recognized by a
                # leading '<' (DTD^C text always starts with a decl),
                # anything else is a path
                text = source if source.lstrip().startswith("<") \
                    else Path(source).read_text()
            else:
                raise TypeError(
                    f"schema source for {name!r} has unsupported type "
                    f"{type(source)!r} (expected DTDC, text, or path)")
            from repro.xmlio.dtdparse import parse_dtdc

            dtd = parse_dtdc(text, root=root)
        if self.obs:
            self.obs.counter(
                "registry_schemas_loaded",
                help="schema load/reload operations on the registry",
            ).add(1)
        return SchemaHandle(dtd, name=name, version=version,
                            source_text=text, obs=self.obs)

    def load(self, name: str, source: SchemaSource,
             root: Optional[str] = None,
             replace: bool = False) -> SchemaHandle:
        """Compile ``source`` and bind it to ``name``.

        Loading an already-bound name is an error unless
        ``replace=True`` (which behaves like :meth:`reload`).
        """
        with self._lock:
            old = self._handles.get(name)
            if old is not None and not replace:
                raise ReproError(
                    f"schema {name!r} is already loaded (v{old.version}); "
                    "use reload() to hot-swap it")
            handle = self._build(name, source, root,
                                 old.version + 1 if old else 1)
            self._handles[name] = handle
            if old is not None:
                old.active = False
            self._gauge()
        self.obs.event(
            "schema-reload" if old is not None else "schema-load",
            f"{name} v{handle.version}", name=name,
            version=handle.version, fingerprint=handle.fingerprint)
        return handle

    def reload(self, name: str, source: Optional[SchemaSource] = None,
               root: Optional[str] = None) -> SchemaHandle:
        """Hot-swap ``name``: build the new handle completely, then
        atomically replace the binding.  ``source=None`` re-parses the
        text the current version was loaded from.

        Holders of the old handle are untouched — their plan, schema,
        and fingerprint all stay valid; only *new* ``get``/``resolve``
        calls see the bumped version.
        """
        with self._lock:
            old = self._handles.get(name)
            if old is None:
                raise SchemaNotFound(
                    f"cannot reload {name!r}: no such schema is loaded")
            if source is None:
                if old.source_text is None:
                    raise ReproError(
                        f"cannot reload {name!r} without a source: it was "
                        "loaded from an in-memory DTDC")
                source = old.source_text
            handle = self._build(name, source, root, old.version + 1)
            self._handles[name] = handle
            old.active = False
            self._gauge()
        self.obs.event("schema-reload", f"{name} v{handle.version}",
                       name=name, version=handle.version,
                       fingerprint=handle.fingerprint)
        return handle

    def put(self, name: str, source: SchemaSource,
            root: Optional[str] = None) -> SchemaHandle:
        """Upsert: :meth:`load` if ``name`` is free, else :meth:`reload`
        (the ``PUT /v1/schemas/<name>`` semantics of the server)."""
        return self.load(name, source, root=root, replace=True)

    def unload(self, name: str) -> SchemaHandle:
        """Remove ``name``; returns the (now retired) handle."""
        with self._lock:
            handle = self._handles.pop(name, None)
            if handle is None:
                raise SchemaNotFound(
                    f"cannot unload {name!r}: no such schema is loaded")
            handle.active = False
            self._gauge()
        self.obs.event("schema-unload", f"{name} v{handle.version}",
                       name=name, version=handle.version)
        return handle

    def _gauge(self) -> None:
        if self.obs:
            self.obs.gauge("registry_schemas",
                           help="schemas currently loaded"
                           ).set(len(self._handles))

    # -- lookup ------------------------------------------------------

    def get(self, name: str) -> SchemaHandle:
        """The current handle for ``name``; :class:`SchemaNotFound` if
        absent (never None — admission errors must be loud)."""
        with self._lock:
            handle = self._handles.get(name)
            known = ", ".join(sorted(self._handles)) or "none"
        if handle is None:
            raise SchemaNotFound(
                f"no schema named {name!r} is loaded (loaded: {known})")
        return handle

    def resolve(self, schema: SchemaLike) -> SchemaHandle:
        """The uniform ``schema: str | DTDC | SchemaHandle`` contract:
        names look up this registry, everything else goes through
        :func:`as_handle`."""
        if isinstance(schema, str):
            return self.get(schema)
        return as_handle(schema, obs=self.obs)

    def names(self) -> "list[str]":
        with self._lock:
            return sorted(self._handles)

    def handles(self) -> "list[SchemaHandle]":
        """Current handles, sorted by name."""
        with self._lock:
            return [self._handles[n] for n in sorted(self._handles)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._handles

    def __len__(self) -> int:
        return len(self._handles)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SchemaRegistry {self.names()}>"
