"""The long-lived validation daemon behind ``repro-xic serve``.

One :class:`ValidationServer` hosts a :class:`~repro.server.registry.SchemaRegistry`
(compiled schemas, hot-swappable), an optional content-addressed
:class:`~repro.corpus.ResultCache`, and a server-lifetime
:class:`~repro.obs.Observability` handle, behind two transports that
share one dispatcher:

- **HTTP** (hand-rolled on ``asyncio.start_server``, zero new deps —
  see :mod:`repro.server.http`)::

      GET    /healthz                     liveness + loaded schemas
      GET    /metrics                     Prometheus text exposition
      GET    /v1/schemas                  registry listing
      PUT    /v1/schemas/<name>[?root=r]  load or hot-reload (body = DTD^C)
      DELETE /v1/schemas/<name>           unload
      POST   /v1/validate/<name>[?engine=auto|batch|codegen|stream]
                                          body = XML bytes
      POST   /v1/lint/<name>[?select=..&ignore=..]
      POST   /v1/synth/<name>
      POST   /v1/shutdown                 wind the daemon down

- **JSONL** (stdin/stdout, or any stream pair): one request object per
  line in, one response object per line out, same operations spelled
  ``{"op": "validate", "schema": "book", "document": "<book>..."}`` —
  plus ``ping``, ``schemas``, ``load``/``reload``/``unload``,
  ``metrics`` and ``shutdown``.  EOF on stdin is a clean shutdown.

Request lifecycle (the admission path the whole design serves):

1. resolve the schema name to its current :class:`SchemaHandle` — this
   pin is what makes reloads zero-downtime: the in-flight request keeps
   the old handle while new admissions see the new version;
2. SHA-256 the incoming document bytes *during the read* (the HTTP
   framing layer hashes as it reads; JSONL hashes the line's document
   once) and finish the hash into the
   :func:`~repro.corpus.cache.result_key_hasher` cache key;
3. answer from the :class:`ResultCache` on a hit — a warm byte-identical
   re-submission costs one hash, no parse, no validation;
4. on a miss, validate with the engine the request named — ``stream``
   (the handle's compiled :class:`~repro.stream.StreamPlan`, the
   default), ``batch`` (parse-then-validate), ``codegen``
   (schema-specialized generated code validating the raw bytes), or
   ``auto`` (codegen when the schema supports it) — the report is
   byte-identical across engines — and write it through the cache.
   ``mode`` is the deprecated spelling of ``engine``.

Per-request :class:`~repro.obs.Observability` spans and counters are
absorbed into the server-lifetime handle after every request (the
lifetime tracer is disabled by default so span storage cannot grow
without bound); ``GET /metrics`` exports the merged registry in
Prometheus text format.

Validation reports are byte-identical to the CLI: the ``report`` field
of a validate response is exactly ``ValidationReport.to_dict()``, the
payload ``repro-xic validate --format json`` splices into its output.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import sys
import time
from typing import Optional

from repro.errors import ParseError, ReproError
from repro.obs import (
    NULL_TRACER, EventLog, Observability, TraceContext, activate,
    parse_traceparent, trace_events,
)
from repro.obs.metrics import Histogram
from repro.server.http import (
    HttpError, HttpRequest, HttpResponse, read_request, write_response,
)
from repro.server.registry import SchemaNotFound, SchemaRegistry
from repro.server.telemetry import RequestWindow, SlowLog, TraceStore

__all__ = ["ValidationServer"]

#: StreamReader limit for the transports: JSONL lines carry whole
#: documents, so the default 64 KiB readline limit is far too small.
STREAM_LIMIT = 64 * 1024 * 1024

#: request latency histogram buckets (seconds)
_LATENCY_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


class ValidationServer:
    """The daemon: registry + cache + metrics behind HTTP and JSONL.

    Parameters
    ----------
    registry:
        The :class:`SchemaRegistry` to serve (default: a fresh empty
        one, populated at runtime via the registry operations).
    cache:
        ``None``, a directory path, or a prebuilt
        :class:`~repro.corpus.ResultCache` for cache-aware admission.
    obs:
        The server-lifetime :class:`~repro.obs.Observability`.  Default:
        metrics enabled, tracer disabled (bounded memory); pass a fully
        enabled handle to also retain per-request span trees.
    default_mode:
        The engine for validate requests that do not name one —
        ``"stream"`` (single-pass, the hot default), ``"batch"``,
        ``"codegen"``, ``"auto"``, or any engine registered through
        :func:`repro.engines.register` before the server starts.
    sample:
        Trace sampling rate in ``[0, 1]``: the fraction of requests
        that get a per-request tracer and land in the trace store.
        Requests carrying a sampled ``traceparent`` or ``?trace=1``
        are always traced regardless (default ``0.0``).
    slow_ms:
        Requests slower than this (wall-clock, milliseconds) are
        recorded in the slow log and emit a ``slow-request`` event.
    events:
        The :class:`~repro.obs.EventLog` to emit structured events
        into (default: a fresh ring-only log).
    trace_capacity:
        Bound on the trace store (``GET /v1/traces/<id>``).
    """

    def __init__(self, registry: Optional[SchemaRegistry] = None,
                 cache=None, obs=None, default_mode: str = "stream",
                 sample: float = 0.0, slow_ms: float = 500.0,
                 events: Optional[EventLog] = None,
                 trace_capacity: int = 256):
        from repro import engines as _engines
        from repro.corpus.cache import ResultCache

        if default_mode not in _engines.names():
            raise ValueError(
                f"unknown default_mode {default_mode!r} "
                f"(known: {', '.join(_engines.names())})")
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be within [0, 1]")
        self.registry = registry if registry is not None \
            else SchemaRegistry()
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(directory=cache)
        self.obs = obs if obs is not None \
            else Observability(tracer=NULL_TRACER)
        self.default_mode = default_mode
        self.sample = float(sample)
        self.slow_ms = float(slow_ms)
        self.events = events if events is not None else EventLog()
        # Share one event log with everything holding the obs handle
        # (the registry's reload events, notably) — unless the caller
        # already attached their own.
        if self.obs.enabled and not self.obs.events:
            self.obs.events = self.events
        self.traces = TraceStore(trace_capacity)
        self.slow = SlowLog()
        self.window = RequestWindow()
        self._started = time.monotonic()
        #: optional test/instrumentation hook, called as
        #: ``hook(op, handle)`` right after admission resolves the
        #: schema handle — the hot-reload tests swap the registry here
        #: to prove in-flight requests finish on the old plan
        self.admission_hook = None
        self._http: Optional[asyncio.AbstractServer] = None
        self.http_address: "tuple[str, int] | None" = None
        self._shutdown = asyncio.Event()
        #: live HTTP connections as (task, writer) pairs, so ``close()``
        #: can end keep-alive handlers instead of leaving them to be
        #: cancelled (and noisily logged) at loop teardown
        self._conns: set = set()

    # ------------------------------------------------------------------
    # the dispatcher (shared by both transports)
    # ------------------------------------------------------------------

    def handle_request(self, req: dict) -> "tuple[dict, int]":
        """Dispatch one request dict; returns ``(payload, http_status)``.

        Never raises for request-level problems: schema-not-found maps
        to 404/``not-found``, unparseable documents and schema text to
        422/``invalid-document``, everything else malformed to
        400/``bad-request``.  The response always echoes a request
        ``id`` (the JSONL correlation field) when one was sent.

        Every request is admitted under a :class:`TraceContext` —
        adopted from an incoming ``traceparent`` header/field, or
        freshly minted — so events emitted anywhere below correlate by
        trace_id.  *Sampled* requests (``--sample`` rate, a sampled
        traceparent, or ``?trace=1``) additionally run under a
        per-request tracer whose span tree lands in the bounded trace
        store (``GET /v1/traces/<id>``) and, with ``?trace=1``, inline
        in the response.
        """
        op = str(req.get("op", ""))
        t0 = time.perf_counter()
        ctx = self._admit_context(req)
        sampled = ctx.sampled and bool(self.obs)
        if sampled:
            req_obs: Optional[Observability] = Observability()
        elif self.obs:
            req_obs = Observability(tracer=NULL_TRACER)
        else:
            req_obs = None
        req["_ctx"] = ctx
        req["_obs"] = req_obs
        with activate(ctx):
            try:
                handler = self._OPS.get(op)
                if handler is None:
                    raise ReproError(
                        f"unknown op {op!r} (known: "
                        f"{', '.join(sorted(self._OPS))})")
                if sampled:
                    with req_obs.span(f"serve.{op or '?'}",
                                      op=op or "?") as root:
                        with activate(root.context()):
                            payload, status = handler(self, req)
                else:
                    payload, status = handler(self, req)
            except SchemaNotFound as exc:
                payload, status = _error("not-found", exc), 404
                self.events.warn("admission-reject", str(exc), op=op)
            except ParseError as exc:
                payload, status = _error("invalid-document", exc), 422
            except (ReproError, UnicodeDecodeError) as exc:
                payload, status = _error("bad-request", exc), 400
            except OSError as exc:
                payload, status = _error("bad-request", exc), 400
            elapsed = time.perf_counter() - t0
            trace_payload = self._finish_request(
                req, op, payload, status, elapsed, ctx, sampled, req_obs)
        if trace_payload is not None and req.get("_want_trace"):
            payload = {**payload, "trace": trace_payload}
        if sampled:
            payload.setdefault("trace_id", ctx.trace_id)
        if "id" in req:
            payload = {"id": req["id"], **payload}
        return payload, status

    def _admit_context(self, req: dict) -> TraceContext:
        """The request's :class:`TraceContext`: adopt a ``traceparent``
        header/field when one parses, mint a fresh one otherwise; the
        sampling decision is the caller's when they made one, else a
        ``--sample`` coin flip.  ``?trace=1`` (HTTP) / ``"trace": true``
        (JSONL) forces sampling on."""
        forced = bool(req.get("_want_trace") or req.get("trace"))
        if forced:
            req["_want_trace"] = True
        ctx = parse_traceparent(req.get("traceparent"))
        if ctx is None:
            sampled = forced or (self.sample > 0.0
                                 and random.random() < self.sample)
            return TraceContext.new(sampled=sampled)
        if forced and not ctx.sampled:
            ctx = ctx.with_sampled(True)
        return ctx

    def _finish_request(self, req: dict, op: str, payload: dict,
                        status: int, elapsed: float, ctx: TraceContext,
                        sampled: bool,
                        req_obs: Optional[Observability]
                        ) -> Optional[dict]:
        """Post-dispatch bookkeeping: lifetime metrics (with a latency
        exemplar for sampled requests), trace-store insert, request
        window, slow log.  Returns the trace-event payload when the
        request was sampled."""
        trace_payload = None
        if sampled and req_obs is not None and req_obs.tracer.roots:
            if req.get("_want_trace"):
                trace_payload = trace_events(req_obs.tracer.roots,
                                             trace_id=ctx.trace_id)
                self.traces.put(ctx.trace_id, trace_payload)
            else:
                # Nobody asked for the export inline; keep the raw span
                # tree and render trace events on first fetch.
                self.traces.put(ctx.trace_id, req_obs.tracer.roots)
        if self.obs:
            outcome = "ok" if payload.get("ok") else "error"
            self.obs.counter(
                "serve_requests_total", {"op": op or "?",
                                         "outcome": outcome},
                help="requests served, by operation and outcome").add(1)
            self.obs.histogram(
                "serve_request_seconds", {"op": op or "?"},
                help="request wall-clock latency",
                buckets=_LATENCY_BUCKETS).observe(
                    elapsed, trace_id=ctx.trace_id if sampled else None)
            if sampled:
                self.obs.counter(
                    "serve_traces_sampled",
                    help="requests that ran under a per-request "
                    "tracer").add(1)
            if req_obs is not None:
                # Spans stay per-request (trace store); only metrics
                # fold into the server-lifetime registry.
                self.obs.absorb(
                    {"metrics": req_obs.metrics.to_dicts()})
        self.window.mark()
        ms = elapsed * 1000.0
        if ms >= self.slow_ms:
            record = {
                "ts": round(time.time(), 3),
                "op": op or "?",
                "schema": req.get("schema"),
                "ms": round(ms, 3),
                "status": status,
                "trace_id": ctx.trace_id if sampled else None,
            }
            self.slow.add(record)
            self.events.warn("slow-request",
                             f"{op or '?'} took {ms:.1f} ms",
                             op=op or "?", ms=record["ms"],
                             schema=req.get("schema"))
        return trace_payload

    # -- operations ----------------------------------------------------

    def _op_ping(self, req: dict) -> "tuple[dict, int]":
        import repro

        return {"ok": True, "server": "repro-xic serve",
                "version": repro.__version__,
                "schemas": self.registry.names()}, 200

    def _op_schemas(self, req: dict) -> "tuple[dict, int]":
        return {"ok": True,
                "schemas": [h.to_dict()
                            for h in self.registry.handles()]}, 200

    def _op_load(self, req: dict) -> "tuple[dict, int]":
        handle = self.registry.load(_required(req, "name"),
                                    _required(req, "schema"),
                                    root=req.get("root"))
        return {"ok": True, "schema": handle.to_dict()}, 201

    def _op_reload(self, req: dict) -> "tuple[dict, int]":
        handle = self.registry.reload(_required(req, "name"),
                                      req.get("schema"),
                                      root=req.get("root"))
        return {"ok": True, "schema": handle.to_dict()}, 200

    def _op_put(self, req: dict) -> "tuple[dict, int]":
        name = _required(req, "name")
        created = name not in self.registry
        handle = self.registry.put(name, _required(req, "schema"),
                                   root=req.get("root"))
        return {"ok": True,
                "schema": handle.to_dict()}, 201 if created else 200

    def _op_unload(self, req: dict) -> "tuple[dict, int]":
        handle = self.registry.unload(_required(req, "name"))
        return {"ok": True, "schema": handle.to_dict()}, 200

    def _op_metrics(self, req: dict) -> "tuple[dict, int]":
        fmt = req.get("format", "prom")
        if fmt == "json":
            return {"ok": True, "format": "json",
                    "metrics": self.obs.to_dict()}, 200
        if fmt == "prom":
            return {"ok": True, "format": "prom",
                    "metrics": self.obs.to_prometheus()}, 200
        raise ReproError(f"unknown metrics format {fmt!r} "
                        "(known: prom, json)")

    def _op_shutdown(self, req: dict) -> "tuple[dict, int]":
        self.request_shutdown()
        return {"ok": True, "shutting_down": True}, 200

    def _op_validate(self, req: dict) -> "tuple[dict, int]":
        from repro.corpus.cache import result_key_hasher

        handle = self.registry.get(_required(req, "schema"))
        if self.admission_hook is not None:
            self.admission_hook("validate", handle)
        data, hasher = self._document_bytes(req)
        key = result_key_hasher(hasher, handle.fingerprint)
        report = self.cache.get(key) if self.cache is not None else None
        cached = report is not None
        engine_used = None
        if cached:
            self.events.debug("cache-hit", f"{handle.name} {key[:12]}",
                              schema=handle.name, key=key)
        else:
            engine = req.get("engine") or req.get("mode") \
                or self.default_mode
            t_engine = time.perf_counter()
            report, engine_used = self._validate_bytes(
                handle, data, engine, req.get("_obs"))
            if self.obs:
                self.obs.histogram(
                    "serve_engine_seconds", {"engine": engine_used},
                    help="validate latency by resolved engine",
                    buckets=_LATENCY_BUCKETS).observe(
                        time.perf_counter() - t_engine)
            if self.cache is not None:
                self.cache.put(key, report)
        if not report.ok:
            self.events.info(
                "validation-violations",
                f"{handle.name}: {len(report.violations)} violation(s)",
                schema=handle.name, violations=len(report.violations),
                cached=cached)
        if self.obs:
            self.obs.counter(
                "serve_documents_validated",
                help="validate requests admitted").add(1)
            if cached:
                self.obs.counter(
                    "serve_cache_hits",
                    help="validate requests answered from the "
                    "result cache").add(1)
            self.obs.counter(
                "serve_bytes_read",
                help="document bytes admitted").add(len(data))
            self.obs.counter(
                "serve_schema_requests_total",
                {"schema": handle.name},
                help="validate requests per schema").add(1)
        return {"ok": True, "valid": report.ok, "cached": cached,
                "key": key, "engine": engine_used,
                "schema": {"name": handle.name,
                           "version": handle.version,
                           "fingerprint": handle.fingerprint},
                "report": report.to_dict()}, 200

    def _validate_bytes(self, handle, data: bytes, engine: str,
                        req_obs: Optional[Observability]
                        ) -> "tuple[object, str]":
        """One cache-missing validation; returns ``(report, resolved)``
        where ``resolved`` is the engine that actually ran (``auto``
        never survives resolution).  Reports are byte-identical across
        engines (the E19/E23 equivalence), so the choice is purely a
        performance knob.  Spans/metrics land on the per-request
        handle; :meth:`_finish_request` folds the metrics into the
        lifetime registry."""
        if engine == "auto":
            engine = "codegen" if handle.supports_codegen() \
                else "stream"
        if engine == "codegen":
            from repro.codegen import CodegenValidator

            validator = CodegenValidator(handle.codegen, obs=req_obs)
            return validator.validate_bytes(data), "codegen"
        if engine == "stream":
            from repro.stream import StreamValidator

            sv = StreamValidator(handle.plan, obs=req_obs)
            return sv.validate_text(data.decode("utf-8")), "stream"
        if engine == "batch":
            from repro.dtd.validate import validate
            from repro.xmlio.parser import parse_document

            tree = parse_document(data.decode("utf-8"),
                                  handle.dtd.structure, obs=req_obs)
            return validate(tree, handle.dtd, obs=req_obs), "batch"
        # third-party engines (and the unknown-name error) route
        # through the registry
        from repro import engines as _engines

        backend = _engines.create(engine, handle, obs=req_obs)
        return backend.validate(data.decode("utf-8")), engine

    def _op_check_corpus(self, req: dict) -> "tuple[dict, int]":
        """Validate many documents in one request — optionally across
        worker processes (``jobs``), whose chunk spans come back under
        this request's trace (the pool boundary crossing)."""
        from repro.corpus import CorpusValidator

        handle = self.registry.get(_required(req, "schema"))
        if self.admission_hook is not None:
            self.admission_hook("check-corpus", handle)
        docs = req.get("documents")
        if not isinstance(docs, list) or not docs:
            raise ReproError(
                "check-corpus needs 'documents': a non-empty list of "
                "xml strings or [doc_id, xml] pairs")
        pairs: "list[tuple[str, str]]" = []
        for i, doc in enumerate(docs):
            if isinstance(doc, str):
                pairs.append((f"doc[{i}]", doc))
            elif isinstance(doc, (list, tuple)) and len(doc) == 2:
                pairs.append((str(doc[0]), str(doc[1])))
            else:
                raise ReproError(
                    f"documents[{i}] must be an xml string or a "
                    "[doc_id, xml] pair")
        try:
            jobs = int(req.get("jobs", 1))
        except (TypeError, ValueError):
            raise ReproError("jobs must be an integer >= 1") from None
        if jobs < 1:
            raise ReproError("jobs must be an integer >= 1")
        engine = req.get("engine") or req.get("mode") \
            or self.default_mode
        validator = CorpusValidator(
            handle, jobs=jobs, cache=self.cache,
            obs=req.get("_obs"), engine=engine)
        report = validator.validate(pairs)
        if self.obs:
            self.obs.counter(
                "serve_documents_validated",
                help="validate requests admitted").add(len(pairs))
            self.obs.counter(
                "serve_schema_requests_total",
                {"schema": handle.name},
                help="validate requests per schema").add(1)
        data = json.loads(report.to_json())
        return {"ok": True, "valid": report.ok,
                "documents": len(pairs), "jobs": jobs,
                "engine": validator.engine,
                "schema": {"name": handle.name,
                           "version": handle.version,
                           "fingerprint": handle.fingerprint},
                "report": data}, 200

    def _op_check_shard(self, req: dict) -> "tuple[dict, int]":
        """One shard node's unit of work in a sharded corpus run:
        validate this node's documents with exact per-document
        ``CorpusValidator`` semantics (so the coordinator's reassembled
        ``verdicts_json`` is byte-identical to a serial run) and export
        the merge-class (``L_id``) aggregates the coordinator folds.

        Aggregates need a parsed tree, so documents with merge-class
        constraints pay one extra parse here; unparseable documents
        export nothing (their verdict already carries the error)."""
        from repro.corpus import CorpusValidator
        from repro.shard.aggregates import extract_aggregates
        from repro.shard.locality import Locality, classify_sigma
        from repro.xmlio.parser import parse_document

        handle = self.registry.get(_required(req, "schema"))
        if self.admission_hook is not None:
            self.admission_hook("check-shard", handle)
        docs = req.get("documents")
        if not isinstance(docs, list) or not docs:
            raise ReproError(
                "check-shard needs 'documents': a non-empty list of "
                "[doc_id, xml] pairs")
        pairs: "list[tuple[str, str]]" = []
        for i, doc in enumerate(docs):
            if isinstance(doc, (list, tuple)) and len(doc) == 2:
                pairs.append((str(doc[0]), str(doc[1])))
            else:
                raise ReproError(
                    f"documents[{i}] must be a [doc_id, xml] pair")
        engine = req.get("engine") or req.get("mode") \
            or self.default_mode
        req_obs = req.get("_obs")
        validator = CorpusValidator(handle, jobs=1, cache=self.cache,
                                    obs=req_obs, engine=engine)
        report = validator.validate(pairs)
        aggregates: "dict[str, dict]" = {}
        if req.get("aggregates", True) \
                and classify_sigma(handle.dtd)[Locality.MERGE]:
            for doc_id, text in pairs:
                try:
                    tree = parse_document(text, handle.dtd.structure)
                except ParseError:
                    continue
                aggregates[doc_id] = extract_aggregates(handle.dtd,
                                                        tree)
        if self.obs:
            self.obs.counter(
                "serve_documents_validated",
                help="validate requests admitted").add(len(pairs))
            self.obs.counter(
                "serve_schema_requests_total",
                {"schema": handle.name},
                help="validate requests per schema").add(1)
        return {"ok": True, "valid": report.ok,
                "documents": len(pairs),
                "engine": validator.engine,
                "schema": {"name": handle.name,
                           "version": handle.version,
                           "fingerprint": handle.fingerprint},
                "verdicts": [v.to_dict(provenance=True)
                             for v in report.verdicts],
                "aggregates": aggregates,
                "metrics": req_obs.metrics.to_dicts()
                if req_obs else []}, 200

    def _op_lint(self, req: dict) -> "tuple[dict, int]":
        from repro.analysis import LintConfig, analyze

        handle = self.registry.get(_required(req, "schema"))
        if self.admission_hook is not None:
            self.admission_hook("lint", handle)
        config = LintConfig(select=tuple(req.get("select") or ()),
                            ignore=tuple(req.get("ignore") or ()))
        report = analyze(handle.dtd, config, obs=req.get("_obs"))
        return {"ok": True, "clean": report.clean,
                "schema": {"name": handle.name,
                           "version": handle.version},
                "report": json.loads(report.to_json())}, 200

    def _op_synth(self, req: dict) -> "tuple[dict, int]":
        from repro.synthesis import check_satisfiability
        from repro.xmlio.serializer import serialize

        handle = self.registry.get(_required(req, "schema"))
        if self.admission_hook is not None:
            self.admission_hook("synth", handle)
        report = check_satisfiability(handle.dtd, obs=req.get("_obs"))
        return {"ok": True,
                "schema": {"name": handle.name,
                           "version": handle.version},
                **report.to_dict(),
                "witness": serialize(report.witness)
                if report.witness is not None else None}, 200

    def _op_stats(self, req: dict) -> "tuple[dict, int]":
        return self.stats(), 200

    def _op_trace(self, req: dict) -> "tuple[dict, int]":
        trace_id = str(_required(req, "trace_id")).lower()
        payload = self.traces.get(trace_id)
        if payload is None:
            return _error(
                "not-found",
                f"no stored trace {trace_id!r} "
                f"({len(self.traces)} of {self.traces.capacity} "
                "slots in use; traces are stored only for sampled "
                "requests)"), 404
        if not isinstance(payload, dict):  # raw span tree: render once
            payload = trace_events(payload, trace_id=trace_id)
            self.traces.put(trace_id, payload)
        return {"ok": True, "trace_id": trace_id,
                "trace": payload}, 200

    _OPS = {
        "ping": _op_ping,
        "schemas": _op_schemas,
        "load": _op_load,
        "reload": _op_reload,
        "put": _op_put,
        "unload": _op_unload,
        "metrics": _op_metrics,
        "shutdown": _op_shutdown,
        "validate": _op_validate,
        "check-corpus": _op_check_corpus,
        "check-shard": _op_check_shard,
        "lint": _op_lint,
        "synth": _op_synth,
        "stats": _op_stats,
        "trace": _op_trace,
    }

    def stats(self) -> dict:
        """The live-health snapshot behind ``GET /v1/stats`` and
        ``repro-xic top``: request rate, latency quantiles (overall and
        per-op), cache hit ratio, per-schema counts, slow-request tail,
        trace-store and event-log occupancy."""
        requests = errors = 0
        by_schema: "dict[str, float]" = {}
        validated = hits = 0.0
        by_op: "dict[str, dict]" = {}
        overall = Histogram("serve_request_seconds", (),
                            buckets=_LATENCY_BUCKETS)
        if self.obs and self.obs.metrics.enabled:
            m = self.obs.metrics
            for labels, value in m.values("serve_requests_total").items():
                requests += value
                if dict(labels).get("outcome") == "error":
                    errors += value
            for labels, value in m.values(
                    "serve_schema_requests_total").items():
                by_schema[dict(labels).get("schema", "?")] = value
            validated = m.total("serve_documents_validated")
            hits = m.total("serve_cache_hits")
            for inst in m.collect():
                if inst.name != "serve_request_seconds" or \
                        not isinstance(inst, Histogram):
                    continue
                op = inst.label_dict().get("op", "?")
                by_op[op] = _latency_summary(inst)
                overall.count += inst.count
                overall.total += inst.total
                for i, n in enumerate(inst.bucket_counts):
                    overall.bucket_counts[i] += n
                if inst.min is not None and (overall.min is None
                                             or inst.min < overall.min):
                    overall.min = inst.min
                if inst.max is not None and (overall.max is None
                                             or inst.max > overall.max):
                    overall.max = inst.max
        return {
            "ok": True,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "rps": round(self.window.rate(), 3),
            "requests": {"total": int(requests), "errors": int(errors)},
            "latency": {"overall": _latency_summary(overall),
                        "by_op": by_op},
            "cache": {
                "enabled": self.cache is not None,
                "validated": int(validated),
                "hits": int(hits),
                "hit_ratio": round(hits / validated, 4)
                if validated else None,
            },
            "schemas": {"loaded": self.registry.names(),
                        "requests": by_schema},
            "slow": {"threshold_ms": self.slow_ms,
                     "total": self.slow.total,
                     "recent": self.slow.tail(10)},
            "traces": {"sample_rate": self.sample,
                       "stored": len(self.traces),
                       "capacity": self.traces.capacity,
                       "recent_ids": self.traces.ids()[-5:]},
            "events": {"emitted": self.events.emitted,
                       "dropped": self.events.dropped,
                       "buffered": len(self.events),
                       "by_level": self.events.counts()},
        }

    def _document_bytes(self, req: dict) -> "tuple[bytes, object]":
        """The document bytes of a validate request plus a SHA-256
        hasher that has consumed exactly those bytes.

        HTTP requests arrive with the hasher already fed by the framing
        layer (``_hasher``); JSONL requests carry inline ``document``
        text or a server-local ``document_path`` (read in binary so the
        key matches the corpus path-input convention byte for byte).
        """
        if "_body" in req:
            return req["_body"], req["_hasher"]
        if "document" in req:
            data = str(req["document"]).encode("utf-8")
        elif "document_path" in req:
            with open(req["document_path"], "rb") as fh:
                data = fh.read()
        else:
            raise ReproError(
                "validate needs 'document' (inline XML text) or "
                "'document_path' (server-local file)")
        hasher = hashlib.sha256()
        hasher.update(data)
        return data, hasher

    # ------------------------------------------------------------------
    # HTTP transport
    # ------------------------------------------------------------------

    async def start_http(self, host: str = "127.0.0.1",
                         port: int = 0) -> "tuple[str, int]":
        """Bind the HTTP front door; returns ``(host, port)`` (the
        ephemeral port is resolved when ``port=0``)."""
        self._http = await asyncio.start_server(
            self._handle_http_conn, host, port, limit=STREAM_LIMIT)
        self.http_address = self._http.sockets[0].getsockname()[:2]
        return self.http_address

    async def _handle_http_conn(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        entry = (asyncio.current_task(), writer)
        self._conns.add(entry)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(writer, HttpResponse(
                        status=exc.status,
                        body=_json_bytes(_error("bad-request",
                                                exc.message))),
                        keep_alive=False)
                    break
                if request is None:
                    break
                response = self._route_http(request)
                await write_response(writer, response,
                                     request.keep_alive)
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._conns.discard(entry)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _route_http(self, request: HttpRequest) -> HttpResponse:
        """Map an HTTP request onto the shared dispatcher."""
        try:
            return self._route_http_inner(request)
        except UnicodeDecodeError as exc:
            return HttpResponse(status=400,
                                body=_json_bytes(_error("bad-request",
                                                        exc)))

    def _route_http_inner(self, request: HttpRequest) -> HttpResponse:
        method, seg = request.method, request.segments
        if seg == ["healthz"]:
            req: dict = {"op": "ping"}
        elif seg == ["metrics"]:
            if method != "GET":
                return _method_not_allowed(method)
            return HttpResponse(
                body=self.obs.to_prometheus().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        elif seg == ["v1", "schemas"]:
            req = {"op": "schemas"}
        elif seg == ["v1", "stats"]:
            if method != "GET":
                return _method_not_allowed(method)
            req = {"op": "stats"}
        elif len(seg) == 3 and seg[:2] == ["v1", "traces"]:
            if method != "GET":
                return _method_not_allowed(method)
            req = {"op": "trace", "trace_id": seg[2]}
        elif seg == ["v1", "shutdown"]:
            if method != "POST":
                return _method_not_allowed(method)
            req = {"op": "shutdown"}
        elif len(seg) == 3 and seg[:2] == ["v1", "schemas"]:
            if method == "PUT":
                req = {"op": "put", "name": seg[2],
                       "schema": request.body.decode("utf-8"),
                       "root": request.query.get("root")}
            elif method == "DELETE":
                req = {"op": "unload", "name": seg[2]}
            else:
                return _method_not_allowed(method)
        elif len(seg) == 3 and seg[:2] == ["v1", "check-corpus"]:
            if method != "POST":
                return _method_not_allowed(method)
            try:
                body = json.loads(request.body.decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("body must be a JSON object")
            except ValueError as exc:
                return HttpResponse(status=400, body=_json_bytes(_error(
                    "bad-request",
                    f"unparseable check-corpus body: {exc}")))
            req = {"op": "check-corpus", "schema": seg[2]}
            for field in ("documents", "jobs", "engine", "mode"):
                if field in body:
                    req[field] = body[field]
        elif len(seg) == 3 and seg[0] == "v1" and \
                seg[1] in ("validate", "lint", "synth"):
            if method != "POST":
                return _method_not_allowed(method)
            req = {"op": seg[1], "schema": seg[2]}
            if seg[1] == "validate":
                req["_body"] = request.body
                req["_hasher"] = request.hasher
                if "engine" in request.query:
                    req["engine"] = request.query["engine"]
                if "mode" in request.query:  # deprecated alias
                    req["mode"] = request.query["mode"]
            elif seg[1] == "lint":
                for flag in ("select", "ignore"):
                    if request.query.get(flag):
                        req[flag] = [s for s in
                                     request.query[flag].split(",") if s]
        else:
            return HttpResponse(status=404, body=_json_bytes(_error(
                "not-found", f"no route {method} {request.path}")))
        # Telemetry admission inputs, uniform across every dict route:
        # the W3C traceparent header, and ``?trace=1`` forcing sampling
        # plus an inline trace in the response.
        traceparent = request.headers.get("traceparent")
        if traceparent:
            req.setdefault("traceparent", traceparent)
        if request.query.get("trace", "0").lower() not in ("0", "false",
                                                           "no", ""):
            req["_want_trace"] = True
        payload, status = self.handle_request(req)
        return HttpResponse(status=status, body=_json_bytes(payload))

    # ------------------------------------------------------------------
    # JSONL transport
    # ------------------------------------------------------------------

    async def serve_jsonl(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """One request object per line in, one response per line out.

        Returns on EOF, on a ``shutdown`` op, or when the server is
        shutting down.  Works over any stream pair — the stdio mode of
        ``repro-xic serve`` and the TCP-socket tests both land here.
        """
        while not self._shutdown.is_set():
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                payload = _error("bad-request", "request line too long")
                writer.write(_json_bytes(payload) + b"\n")
                await writer.drain()
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                req = json.loads(line)
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                payload = _error("bad-request", f"unparseable request: "
                                 f"{exc}")
            else:
                payload, _status = self.handle_request(req)
            writer.write(_json_bytes(payload) + b"\n")
            await writer.drain()

    async def serve_stdio(self) -> None:
        """JSONL over this process's stdin/stdout.

        Reads happen on a dedicated *daemon* thread feeding an asyncio
        queue — a TTY, a pipe, and a test double all work, and a thread
        still blocked in ``readline`` cannot hang interpreter shutdown
        the way a default-executor worker would.  The loop ends at EOF
        (closing stdin is the clean way to stop a ``repro-xic serve
        --stdio`` daemon), on a ``shutdown`` op, or when the server
        shuts down through another transport.
        """
        import threading

        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()

        def _pump() -> None:
            try:
                for raw in sys.stdin:
                    loop.call_soon_threadsafe(queue.put_nowait, raw)
                loop.call_soon_threadsafe(queue.put_nowait, None)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass

        threading.Thread(target=_pump, daemon=True,
                         name="repro-serve-stdin").start()
        while not self._shutdown.is_set():
            getter = asyncio.ensure_future(queue.get())
            stopper = asyncio.ensure_future(self._shutdown.wait())
            done, pending = await asyncio.wait(
                {getter, stopper}, return_when=asyncio.FIRST_COMPLETED)
            for task in pending:
                task.cancel()
            if getter not in done:
                break
            line = getter.result()
            if line is None:
                break
            line = line.strip()
            if not line:
                continue
            try:
                req = json.loads(line)
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                payload = _error("bad-request",
                                 f"unparseable request: {exc}")
            else:
                payload, _status = self.handle_request(req)
            print(json.dumps(payload, sort_keys=True), flush=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the serve loops to wind down (idempotent)."""
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def close(self) -> None:
        """Stop accepting connections, end open keep-alive exchanges,
        and release the listening socket."""
        self.request_shutdown()
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None
        conns = list(self._conns)
        for _task, writer in conns:
            writer.close()  # handlers see EOF and finish cleanly
        if conns:
            await asyncio.wait({task for task, _w in conns}, timeout=5)
        self.events.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<ValidationServer schemas={self.registry.names()} "
                f"http={self.http_address} "
                f"cache={'on' if self.cache is not None else 'off'}>")


def _required(req: dict, field: str) -> str:
    value = req.get(field)
    if value is None:
        raise ReproError(f"request is missing the {field!r} field")
    return value


def _error(code: str, exc) -> dict:
    return {"ok": False, "code": code, "error": str(exc)}


def _latency_summary(hist: Histogram) -> dict:
    """count + mean/p50/p90/p99/max in milliseconds for ``/v1/stats``."""

    def _ms(value: Optional[float]) -> Optional[float]:
        return round(value * 1000.0, 3) if value is not None else None

    return {
        "count": hist.count,
        "mean_ms": _ms(hist.mean),
        "p50_ms": _ms(hist.quantile(0.5)),
        "p90_ms": _ms(hist.quantile(0.9)),
        "p99_ms": _ms(hist.quantile(0.99)),
        "max_ms": _ms(hist.max),
    }


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _method_not_allowed(method: str) -> HttpResponse:
    return HttpResponse(status=405, body=_json_bytes(_error(
        "bad-request", f"method {method} not allowed here")))
