"""Data model for XML documents (Definition 2.1 of the paper).

An XML document is represented as a *data tree* ``(V, elem, att, root)``:

- ``V`` is a finite set of vertices,
- ``elem`` maps each vertex to its element label and its ordered list of
  children (each child is either a string value or another vertex),
- ``att`` is a partial function from (vertex, attribute-name) pairs to
  finite sets of string values,
- ``root`` is a distinguished vertex.

The public classes are :class:`Vertex` and :class:`DataTree`; a fluent
:class:`TreeBuilder` makes constructing documents in code pleasant, and
:class:`AttributeIndex` provides the hash indexes used by the linear-time
constraint checker.
"""

from repro.datamodel.tree import DataTree, Vertex
from repro.datamodel.builder import TreeBuilder
from repro.datamodel.indexes import AttributeIndex

__all__ = ["DataTree", "Vertex", "TreeBuilder", "AttributeIndex"]
