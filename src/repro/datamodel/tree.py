"""Data trees: the formal model of XML documents (Definition 2.1).

A :class:`DataTree` owns a set of :class:`Vertex` objects.  Each vertex has

- a *label* (its element name, an element of the set **E** of the paper),
- an ordered list of *children*, each of which is either a plain string
  (an atomic value in **S**) or another vertex, and
- a partial attribute map from attribute names (**A**) to finite sets of
  string values (``att : V x A -> P(S)``).

The tree invariant of Definition 2.1 — every vertex has at most one
parent, and every non-root vertex is reachable from the root — is
enforced eagerly by the mutation API and can be re-checked at any time
with :meth:`DataTree.check_invariants`.

Attribute values are stored as ``frozenset`` objects.  Single-valued
attributes (``R(tau, l) = S``) are represented as singleton sets, which is
exactly the convention of Definition 2.4.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import DataModelError, DuplicateVertexError, UnknownVertexError

#: Type alias for a child of a vertex: either an atomic string value or a
#: nested element vertex.
Child = "str | Vertex"


def _freeze_values(values: "str | Iterable[str]") -> frozenset[str]:
    """Normalize an attribute value to a ``frozenset`` of strings.

    A bare string is treated as a singleton value, *not* as an iterable of
    characters — passing ``"abc"`` yields ``frozenset({"abc"})``.
    """
    if isinstance(values, str):
        return frozenset((values,))
    out = frozenset(values)
    if not all(isinstance(v, str) for v in out):
        raise TypeError("attribute values must be strings")
    return out


class Vertex:
    """A single element node of a data tree.

    Vertices are created through :meth:`DataTree.create` (or the
    :class:`~repro.datamodel.builder.TreeBuilder`) and belong to exactly
    one tree for their whole life.  Identity is object identity; the
    integer :attr:`vid` is a stable, human-readable handle that is unique
    within the owning tree.
    """

    __slots__ = ("vid", "label", "_children", "_attributes", "_parent", "_tree")

    def __init__(self, tree: "DataTree", vid: int, label: str):
        self.vid = vid
        self.label = label
        self._children: list[str | Vertex] = []
        self._attributes: dict[str, frozenset[str]] = {}
        self._parent: Vertex | None = None
        self._tree = tree

    # -- structure ----------------------------------------------------------

    @property
    def owner(self) -> "DataTree":
        """The tree this vertex belongs to (for its whole life)."""
        return self._tree

    @property
    def parent(self) -> "Vertex | None":
        """The unique parent vertex, or ``None`` for the root / detached."""
        return self._parent

    @property
    def children(self) -> tuple["str | Vertex", ...]:
        """The ordered children (strings and vertices), as a tuple."""
        return tuple(self._children)

    @property
    def child_vertices(self) -> tuple["Vertex", ...]:
        """Only the element (vertex) children, in document order."""
        return tuple(c for c in self._children if isinstance(c, Vertex))

    @property
    def child_labels(self) -> tuple[str, ...]:
        """The label word of this vertex's children.

        String children contribute the reserved symbol ``"S"`` (the atomic
        type of the paper); element children contribute their label.  This
        is the word that must belong to ``L(P(label))`` for the document to
        be structurally valid (Definition 2.4).
        """
        return tuple("S" if isinstance(c, str) else c.label for c in self._children)

    @property
    def text(self) -> str:
        """The concatenation of the *direct* string children."""
        return "".join(c for c in self._children if isinstance(c, str))

    def append(self, child: "str | Vertex") -> "str | Vertex":
        """Append a child (string value or vertex) and return it.

        Appending a vertex that already has a parent, that belongs to a
        different tree, or that would create a cycle raises
        :class:`DataModelError`.
        """
        if isinstance(child, str):
            self._children.append(child)
            return child
        if not isinstance(child, Vertex):
            raise TypeError(f"child must be str or Vertex, got {type(child)!r}")
        if child._tree is not self._tree:
            raise DataModelError("cannot adopt a vertex from another tree")
        if child._parent is not None:
            raise DuplicateVertexError(
                f"vertex #{child.vid} ({child.label!r}) already has a parent")
        # Reject cycles: a vertex may not become a child of its own
        # descendant (includes child is self).
        anc: Vertex | None = self
        while anc is not None:
            if anc is child:
                raise DataModelError(
                    f"appending vertex #{child.vid} would create a cycle")
            anc = anc._parent
        child._parent = self
        self._children.append(child)
        return child

    def extend(self, children: Iterable["str | Vertex"]) -> None:
        """Append several children in order."""
        for child in children:
            self.append(child)

    def remove_child(self, child: "str | Vertex") -> None:
        """Remove one occurrence of ``child``; a removed vertex becomes
        detached (it keeps its subtree and can be re-appended elsewhere).

        Raises :class:`DataModelError` when ``child`` is not a child.
        """
        for i, existing in enumerate(self._children):
            if existing is child or (isinstance(child, str)
                                     and existing == child
                                     and isinstance(existing, str)):
                del self._children[i]
                if isinstance(existing, Vertex):
                    existing._parent = None
                return
        raise DataModelError(
            f"{child!r} is not a child of vertex #{self.vid}")

    def detach(self) -> "Vertex":
        """Remove this vertex from its parent and return it.

        Detaching the root raises :class:`DataModelError`.
        """
        if self._parent is None:
            raise DataModelError("cannot detach a parentless vertex")
        self._parent.remove_child(self)
        return self

    def replace_child(self, old: "Vertex", new: "str | Vertex") -> None:
        """Replace the child ``old`` with ``new`` in place (same
        position); ``old`` becomes detached."""
        for i, existing in enumerate(self._children):
            if existing is old:
                # Validate adoption exactly like append() would.
                self.append(new)
                adopted = self._children.pop()
                self._children[i] = adopted
                old._parent = None
                return
        raise DataModelError(
            f"{old!r} is not a child of vertex #{self.vid}")

    # -- attributes ----------------------------------------------------------

    @property
    def attributes(self) -> Mapping[str, frozenset[str]]:
        """Read-only view of the attribute map of this vertex."""
        return dict(self._attributes)

    def set_attribute(self, name: str, values: "str | Iterable[str]") -> None:
        """Set attribute ``name`` to a (set of) string value(s).

        A bare string is stored as a singleton set.  Setting an attribute
        replaces any previous value; use :meth:`del_attribute` to remove.
        """
        frozen = _freeze_values(values)
        self._attributes[sys.intern(name)] = frozen
        self._tree._on_attribute_change(self, name)

    def del_attribute(self, name: str) -> None:
        """Remove attribute ``name``; missing attributes are ignored."""
        if name in self._attributes:
            del self._attributes[name]
            self._tree._on_attribute_change(self, name)

    def has_attribute(self, name: str) -> bool:
        """Whether ``att(self, name)`` is defined."""
        return name in self._attributes

    def attr(self, name: str) -> frozenset[str]:
        """``x.l`` of the paper: the value set of attribute ``name``.

        Raises :class:`KeyError` when the attribute is undefined; use
        :meth:`attr_or_empty` for a non-raising variant.
        """
        return self._attributes[name]

    def attr_or_empty(self, name: str) -> frozenset[str]:
        """Like :meth:`attr` but returns an empty set when undefined."""
        return self._attributes.get(name, frozenset())

    def single(self, name: str) -> str:
        """The value of a single-valued attribute.

        Raises :class:`DataModelError` when the attribute holds zero or
        more than one value.
        """
        values = self._attributes.get(name)
        if values is None or len(values) != 1:
            raise DataModelError(
                f"attribute {name!r} of vertex #{self.vid} ({self.label!r}) "
                f"is not single-valued: {values!r}")
        return next(iter(values))

    def attr_tuple(self, names: Iterable[str]) -> tuple[str, ...]:
        """``x[X]`` of the paper: the tuple of single values along ``names``."""
        return tuple(self.single(n) for n in names)

    # -- traversal ------------------------------------------------------------

    def descendants(self) -> Iterator["Vertex"]:
        """All vertex descendants in pre-order (excluding ``self``)."""
        stack = [c for c in reversed(self._children) if isinstance(c, Vertex)]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                c for c in reversed(node._children) if isinstance(c, Vertex))

    def subtree(self) -> Iterator["Vertex"]:
        """``self`` followed by all descendants, pre-order."""
        yield self
        yield from self.descendants()

    def children_labeled(self, label: str) -> list["Vertex"]:
        """The element children carrying ``label``, in document order."""
        return [c for c in self._children
                if isinstance(c, Vertex) and c.label == label]

    def first_child_labeled(self, label: str) -> "Vertex | None":
        """The first element child carrying ``label``, or ``None``."""
        for c in self._children:
            if isinstance(c, Vertex) and c.label == label:
                return c
        return None

    def path_from_root(self) -> list["Vertex"]:
        """The vertices from the root down to ``self`` (inclusive)."""
        chain: list[Vertex] = []
        node: Vertex | None = self
        while node is not None:
            chain.append(node)
            node = node._parent
        chain.reverse()
        return chain

    @property
    def depth(self) -> int:
        """Number of edges from the root (the root has depth 0)."""
        depth = 0
        node = self._parent
        while node is not None:
            depth += 1
            node = node._parent
        return depth

    # -- misc -----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Vertex #{self.vid} {self.label!r}>"


class DataTree:
    """A data tree ``(V, elem, att, root)`` per Definition 2.1.

    Create the root with the constructor, then grow the tree::

        tree = DataTree("book")
        entry = tree.create("entry")
        tree.root.append(entry)
        entry.set_attribute("isbn", "1-55860-622-X")

    The class maintains an ``ext`` index (label -> vertices) incrementally
    so that ``ext(tau)`` is O(1); note that *detached* vertices (created
    but never appended) are intentionally included in ``V`` only after
    they are attached — see :meth:`vertices`.
    """

    def __init__(self, root_label: str):
        self._next_vid = 0
        self._all: list[Vertex] = []
        self.root = self.create(root_label)
        self._attr_epoch = 0  # bumped on every attribute change (cache key)

    # -- construction ----------------------------------------------------------

    def create(self, label: str) -> Vertex:
        """Create a new, detached vertex with the given element label."""
        if not isinstance(label, str) or not label:
            raise TypeError("vertex label must be a non-empty string")
        # Interned labels make ``extension(label)`` and per-label dispatch
        # dict lookups hit CPython's pointer-equality fast path.
        v = Vertex(self, self._next_vid, sys.intern(label))
        self._next_vid += 1
        self._all.append(v)
        return v

    def create_under(self, parent: Vertex, label: str) -> Vertex:
        """Create a vertex and immediately append it to ``parent``."""
        v = self.create(label)
        parent.append(v)
        return v

    # -- the formal accessors ----------------------------------------------------

    def vertices(self) -> list[Vertex]:
        """``V``: the root plus every vertex attached under it, pre-order."""
        return list(self.root.subtree())

    def ext(self, label: str) -> list[Vertex]:
        """``ext(tau)``: all attached vertices labeled ``label``, pre-order."""
        return [v for v in self.root.subtree() if v.label == label]

    def ext_values(self, label: str, attribute: str) -> set[str]:
        """``ext(tau).l``: the union of ``x.l`` over ``x in ext(tau)``.

        Vertices on which the attribute is undefined contribute nothing.
        """
        out: set[str] = set()
        for v in self.ext(label):
            out |= v.attr_or_empty(attribute)
        return out

    def labels(self) -> set[str]:
        """All element labels occurring in the (attached) tree."""
        return {v.label for v in self.root.subtree()}

    def size(self) -> int:
        """Number of attached vertices."""
        return sum(1 for _ in self.root.subtree())

    def find(self, vid: int) -> Vertex:
        """Look up an attached vertex by its :attr:`Vertex.vid`."""
        for v in self.root.subtree():
            if v.vid == vid:
                return v
        raise UnknownVertexError(f"no attached vertex with vid {vid}")

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Re-verify the Definition 2.1 invariants; raise on violation.

        The mutation API maintains these eagerly, so this is mostly useful
        in tests and after deserialization.
        """
        seen: set[int] = set()
        for v in self.root.subtree():
            if id(v) in seen:
                raise DuplicateVertexError(
                    f"vertex #{v.vid} is reachable twice")
            seen.add(id(v))
            for c in v.children:
                if isinstance(c, Vertex) and c.parent is not v:
                    raise DataModelError(
                        f"vertex #{c.vid} has inconsistent parent pointer")
        if self.root.parent is not None:
            raise DataModelError("root must not have a parent")

    # -- change notification (used by AttributeIndex caching) -----------------------

    def _on_attribute_change(self, vertex: Vertex, name: str) -> None:
        self._attr_epoch += 1

    @property
    def attribute_epoch(self) -> int:
        """Monotone counter bumped on every attribute mutation.

        Index structures use this to detect staleness cheaply.
        """
        return self._attr_epoch

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<DataTree root={self.root.label!r} size={self.size()}>"
