"""A fluent builder for data trees.

Writing documents vertex-by-vertex is verbose; the :class:`TreeBuilder`
offers a compact nested-call style used throughout the examples, tests
and workload generators::

    b = TreeBuilder("book")
    with b.element("entry", isbn="1-55860-622-X"):
        b.leaf("title", "Data on the Web")
        b.leaf("publisher", "Morgan Kaufmann")
    b.leaf("author", "Abiteboul")
    tree = b.tree

Attributes passed as keyword arguments may be strings (single-valued) or
iterables of strings (set-valued, e.g. IDREFS).  Because Python keyword
arguments cannot contain characters like ``-``, attributes can also be
supplied via the ``attrs`` mapping parameter.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from contextlib import contextmanager

from repro.datamodel.tree import DataTree, Vertex


class TreeBuilder:
    """Incrementally build a :class:`~repro.datamodel.tree.DataTree`."""

    def __init__(self, root_label: str,
                 attrs: Mapping[str, "str | Iterable[str]"] | None = None,
                 **kw_attrs: "str | Iterable[str]"):
        self.tree = DataTree(root_label)
        self._stack: list[Vertex] = [self.tree.root]
        _set_attrs(self.tree.root, attrs, kw_attrs)

    @property
    def current(self) -> Vertex:
        """The vertex new children are appended to."""
        return self._stack[-1]

    @contextmanager
    def element(self, label: str,
                attrs: Mapping[str, "str | Iterable[str]"] | None = None,
                **kw_attrs: "str | Iterable[str]"):
        """Open a child element; children added inside the ``with`` block
        become its children.  Yields the new vertex."""
        v = self.tree.create(label)
        _set_attrs(v, attrs, kw_attrs)
        self.current.append(v)
        self._stack.append(v)
        try:
            yield v
        finally:
            self._stack.pop()

    def leaf(self, label: str, text: str | None = None,
             attrs: Mapping[str, "str | Iterable[str]"] | None = None,
             **kw_attrs: "str | Iterable[str]") -> Vertex:
        """Append a childless (or text-only) element and return it."""
        v = self.tree.create(label)
        _set_attrs(v, attrs, kw_attrs)
        if text is not None:
            v.append(text)
        self.current.append(v)
        return v

    def text(self, value: str) -> None:
        """Append a string child to the current element."""
        self.current.append(value)


def _set_attrs(vertex: Vertex,
               attrs: Mapping[str, "str | Iterable[str]"] | None,
               kw_attrs: Mapping[str, "str | Iterable[str]"]) -> None:
    if attrs:
        for name, values in attrs.items():
            vertex.set_attribute(name, values)
    for name, values in kw_attrs.items():
        vertex.set_attribute(name, values)
