"""Hash indexes over a data tree, used by the linear-time constraint checker.

The naive reading of a constraint like ``tau.l -> tau`` ("no two
``tau``-elements share an ``l`` value") is quadratic in ``|ext(tau)|``.
The checker in :mod:`repro.constraints.checker` instead builds an
:class:`AttributeIndex` once — a single pass over the tree — and then
answers every per-constraint question with hash lookups, which is how the
paper's "linear time" validation costs are realized in practice (exp E13
benchmarks the difference).

The index is *maintainable*: :meth:`AttributeIndex.index_vertex`,
:meth:`AttributeIndex.unindex_vertex` and
:meth:`AttributeIndex.refresh_vertex` apply single-vertex deltas in time
proportional to that vertex's attribute payload, which is what the
incremental revalidation engine (:mod:`repro.incremental`) builds on.
A snapshot of each vertex's attribute map as last indexed makes removal
and refresh independent of the tree's current mutation state.

The index records the tree's ``attribute_epoch`` at build time;
:meth:`AttributeIndex.is_stale` reports whether attribute mutations have
happened since that were not folded back in through the delta API.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datamodel.tree import DataTree, Vertex


class AttributeIndex:
    """Per-(label, attribute) value indexes over one data tree.

    The structures, built in one pass and maintainable per vertex:

    - ``extension(label)``              — the vertices with that label;
    - ``value_set(label, attr)``        — the set ``ext(label).attr``
      (union of all value sets);
    - ``vertices_with_value(l, a, s)``  — the vertices whose ``a``
      contains ``s``;
    - ``id_owners[value]``              — for the document-wide ID
      semantics of ``L_id``: every vertex (any label) whose *declared ID
      attribute* contains the value.  Which attribute counts as the ID
      attribute of each label is supplied by ``id_attributes``.

    Internally every vertex family is a ``vid -> Vertex`` dict so that a
    single vertex can be added or removed in O(1) per indexed value;
    insertion order is document order for a freshly built index.
    """

    def __init__(self, tree: DataTree,
                 id_attributes: dict[str, str] | None = None,
                 obs=None):
        self.tree = tree
        self.epoch = tree.attribute_epoch
        self.id_attributes = dict(id_attributes or {})
        #: label -> vid -> vertex
        self._ext: dict[str, dict[int, Vertex]] = {}
        #: (label, attr) -> value -> vid -> vertex
        self._owners: dict[tuple[str, str], dict[str, dict[int, Vertex]]] = {}
        #: id value -> vid -> vertex (all labels, declared ID attrs only)
        self._id_owners: dict[str, dict[int, Vertex]] = {}
        #: vid -> attribute map as last indexed (removal/refresh baseline)
        self._snapshot: dict[int, dict[str, frozenset[str]]] = {}
        if obs:
            with obs.span("index.build") as span:
                n = 0
                for v in tree.root.subtree():
                    self.index_vertex(v)
                    n += 1
                span.set(vertices=n)
                obs.counter(
                    "index_vertices_indexed",
                    help="vertices folded into the attribute index",
                ).add(n)
        else:
            for v in tree.root.subtree():
                self.index_vertex(v)

    # -- maintenance -----------------------------------------------------------

    def index_vertex(self, v: Vertex) -> set[str]:
        """Add one vertex (not its subtree); returns the ID values gained."""
        self._ext.setdefault(v.label, {})[v.vid] = v
        snap = dict(v.attributes)
        self._snapshot[v.vid] = snap
        for attr_name, values in snap.items():
            owner_map = self._owners.setdefault((v.label, attr_name), {})
            for value in values:
                owner_map.setdefault(value, {})[v.vid] = v
        return self._sync_id(v, frozenset(), self._id_values(v, snap))

    def unindex_vertex(self, v: Vertex) -> set[str]:
        """Remove one vertex (not its subtree); returns the ID values lost.

        Uses the attribute snapshot taken when the vertex was (last)
        indexed, so the vertex may already have been mutated or detached.
        """
        snap = self._snapshot.pop(v.vid, {})
        ext = self._ext.get(v.label)
        if ext is not None:
            ext.pop(v.vid, None)
            if not ext:
                del self._ext[v.label]
        for attr_name, values in snap.items():
            self._discard_owned(v, attr_name, values)
        return self._sync_id(v, self._id_values(v, snap), frozenset())

    def refresh_vertex(self, v: Vertex) -> set[str]:
        """Re-read one indexed vertex's attributes; returns the ID values
        whose ownership changed (gained or lost)."""
        old = self._snapshot.get(v.vid)
        if old is None:  # not indexed yet: treat as an addition
            return self.index_vertex(v)
        new = dict(v.attributes)
        self._snapshot[v.vid] = new
        for attr_name, old_values in old.items():
            new_values = new.get(attr_name, frozenset())
            gone = old_values - new_values
            if gone:
                self._discard_owned(v, attr_name, gone)
        for attr_name, new_values in new.items():
            old_values = old.get(attr_name, frozenset())
            fresh = new_values - old_values
            if fresh:
                owner_map = self._owners.setdefault((v.label, attr_name), {})
                for value in fresh:
                    owner_map.setdefault(value, {})[v.vid] = v
        return self._sync_id(v, self._id_values(v, old),
                             self._id_values(v, new))

    def sync_epoch(self) -> None:
        """Declare the index caught up with the tree's attribute epoch."""
        self.epoch = self.tree.attribute_epoch

    def _discard_owned(self, v: Vertex, attr_name: str,
                       values: frozenset[str]) -> None:
        owner_map = self._owners.get((v.label, attr_name))
        if owner_map is None:
            return
        for value in values:
            owners = owner_map.get(value)
            if owners is None:
                continue
            owners.pop(v.vid, None)
            if not owners:
                del owner_map[value]
        if not owner_map:
            del self._owners[(v.label, attr_name)]

    def _id_values(self, v: Vertex,
                   attrs: dict[str, frozenset[str]]) -> frozenset[str]:
        id_attr = self.id_attributes.get(v.label)
        if id_attr is None:
            return frozenset()
        return attrs.get(id_attr, frozenset())

    def _sync_id(self, v: Vertex, old: frozenset[str],
                 new: frozenset[str]) -> set[str]:
        changed = set(old ^ new)
        for value in old - new:
            owners = self._id_owners.get(value)
            if owners is not None:
                owners.pop(v.vid, None)
                if not owners:
                    del self._id_owners[value]
        for value in new - old:
            self._id_owners.setdefault(value, {})[v.vid] = v
        return changed

    # -- staleness -------------------------------------------------------------

    def is_stale(self) -> bool:
        """Whether the tree's attributes changed after the index last
        synchronized (at build time or via :meth:`sync_epoch`)."""
        return self.tree.attribute_epoch != self.epoch

    # -- queries ----------------------------------------------------------------

    @property
    def id_owners(self) -> dict[str, dict[int, Vertex]]:
        """ID value -> (vid -> vertex) over all declared ID attributes."""
        return self._id_owners

    def id_owner_list(self, value: str) -> list[Vertex]:
        """The vertices whose declared ID attribute contains ``value``."""
        return list(self._id_owners.get(value, {}).values())

    def extension(self, label: str) -> list[Vertex]:
        """``ext(label)``, in document order for a freshly built index."""
        return list(self._ext.get(label, {}).values())

    def value_set(self, label: str, attr: str) -> set[str]:
        """``ext(label).attr``: all values of ``attr`` over ``ext(label)``."""
        return set(self._owners.get((label, attr), {}))

    def value_count(self, label: str, attr: str, value: str) -> int:
        """How many vertices of ``label`` carry ``value`` in ``attr``."""
        return len(self._owners.get((label, attr), {}).get(value, {}))

    def vertices_with_value(self, label: str, attr: str,
                            value: str) -> list[Vertex]:
        """Vertices in ``ext(label)`` whose ``attr`` set contains ``value``."""
        return list(self._owners.get((label, attr), {})
                    .get(value, {}).values())

    def duplicate_groups(self, label: str,
                         attrs: Sequence[str]) -> list[list[Vertex]]:
        """Groups of >=2 vertices of ``label`` agreeing on all of ``attrs``.

        Vertices on which some attribute of ``attrs`` is undefined or not
        single-valued are skipped (they cannot witness a key violation in
        a structurally valid document; the structural validator flags them
        separately).
        """
        groups: dict[tuple[str, ...], list[Vertex]] = {}
        for v in self.extension(label):
            row: list[str] = []
            ok = True
            for attr in attrs:
                values = v.attr_or_empty(attr)
                if len(values) != 1:
                    ok = False
                    break
                row.append(next(iter(values)))
            if ok:
                groups.setdefault(tuple(row), []).append(v)
        return [grp for grp in groups.values() if len(grp) > 1]

    def id_clashes(self) -> list[tuple[str, list[Vertex]]]:
        """ID values owned by more than one vertex (document-wide)."""
        return [(value, list(owners.values()))
                for value, owners in self._id_owners.items()
                if len(owners) > 1]
