"""Hash indexes over a data tree, used by the linear-time constraint checker.

The naive reading of a constraint like ``tau.l -> tau`` ("no two
``tau``-elements share an ``l`` value") is quadratic in ``|ext(tau)|``.
The checker in :mod:`repro.constraints.checker` instead builds an
:class:`AttributeIndex` once — a single pass over the tree — and then
answers every per-constraint question with hash lookups, which is how the
paper's "linear time" validation costs are realized in practice (exp E13
benchmarks the difference).

The index is a snapshot: it records the tree's ``attribute_epoch`` at
build time and :meth:`AttributeIndex.is_stale` reports whether attribute
mutations have happened since.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.datamodel.tree import DataTree, Vertex


class AttributeIndex:
    """Per-(label, attribute) value indexes over one data tree.

    The structures built in one pass:

    - ``ext[label]``            — list of vertices with that label;
    - ``values[label, attr]``   — the set ``ext(label).attr`` (union of
      all value sets);
    - ``owners[label, attr]``   — map value -> list of vertices whose
      ``attr`` contains the value;
    - ``all_id_owners[value]``  — for the document-wide ID semantics of
      ``L_id``: every vertex (any label) whose *declared ID attribute*
      contains the value.  Which attribute counts as the ID attribute of
      each label is supplied by ``id_attributes``.
    """

    def __init__(self, tree: DataTree,
                 id_attributes: dict[str, str] | None = None):
        self.tree = tree
        self.epoch = tree.attribute_epoch
        self.ext: dict[str, list[Vertex]] = defaultdict(list)
        self.values: dict[tuple[str, str], set[str]] = defaultdict(set)
        self.owners: dict[tuple[str, str], dict[str, list[Vertex]]] = (
            defaultdict(lambda: defaultdict(list)))
        self.id_attributes = dict(id_attributes or {})
        self.id_owners: dict[str, list[Vertex]] = defaultdict(list)
        self._build()

    def _build(self) -> None:
        for v in self.tree.root.subtree():
            self.ext[v.label].append(v)
            for attr, values in v.attributes.items():
                key = (v.label, attr)
                self.values[key] |= values
                owner_map = self.owners[key]
                for value in values:
                    owner_map[value].append(v)
            id_attr = self.id_attributes.get(v.label)
            if id_attr is not None and v.has_attribute(id_attr):
                for value in v.attr(id_attr):
                    self.id_owners[value].append(v)

    # -- staleness -------------------------------------------------------------

    def is_stale(self) -> bool:
        """Whether the tree's attributes changed after this index was built."""
        return self.tree.attribute_epoch != self.epoch

    # -- queries ----------------------------------------------------------------

    def extension(self, label: str) -> list[Vertex]:
        """``ext(label)`` in document order."""
        return self.ext.get(label, [])

    def value_set(self, label: str, attr: str) -> set[str]:
        """``ext(label).attr``: all values of ``attr`` over ``ext(label)``."""
        return self.values.get((label, attr), set())

    def vertices_with_value(self, label: str, attr: str,
                            value: str) -> list[Vertex]:
        """Vertices in ``ext(label)`` whose ``attr`` set contains ``value``."""
        owner_map = self.owners.get((label, attr))
        if owner_map is None:
            return []
        return owner_map.get(value, [])

    def duplicate_groups(self, label: str,
                         attrs: Sequence[str]) -> list[list[Vertex]]:
        """Groups of >=2 vertices of ``label`` agreeing on all of ``attrs``.

        Vertices on which some attribute of ``attrs`` is undefined or not
        single-valued are skipped (they cannot witness a key violation in
        a structurally valid document; the structural validator flags them
        separately).
        """
        groups: dict[tuple[str, ...], list[Vertex]] = defaultdict(list)
        for v in self.extension(label):
            row: list[str] = []
            ok = True
            for attr in attrs:
                values = v.attr_or_empty(attr)
                if len(values) != 1:
                    ok = False
                    break
                row.append(next(iter(values)))
            if ok:
                groups[tuple(row)].append(v)
        return [grp for grp in groups.values() if len(grp) > 1]

    def id_clashes(self) -> list[tuple[str, list[Vertex]]]:
        """ID values owned by more than one vertex (document-wide)."""
        return [(value, owners)
                for value, owners in self.id_owners.items()
                if len(owners) > 1]
