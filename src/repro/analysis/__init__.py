"""Static analysis of ``DTD^C`` schemas: the ``repro-xic lint`` engine.

The paper's central observation is that properties of a ``DTD^C =
(S, Σ)`` can be decided *statically* — the §2.2 well-formedness side
conditions, consistency of the schema (required vs. necessarily-empty
types), redundancy via implication (Prop 3.1, Thm 3.2), the
finite/unrestricted divergence of Cor 3.3, and the primary-key
coincidence fast path (Thm 3.4 / Thm 3.8).  This package packages all
of those checks as registered rules over a shared diagnostic model::

    from repro.analysis import analyze, LintConfig

    report = analyze(dtd)                      # all rules
    report = analyze(dtd, LintConfig(select=("XIC3",)))   # semantic only
    for d in report:
        print(d)            # XIC301 warning [entry.isbn -> entry]: ...
    print(report.to_json())

Rule families: ``XIC1xx`` structure, ``XIC2xx`` well-formedness,
``XIC3xx`` semantics.  See the diagnostic-code table in the README.
"""

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.engine import RuleContext, analyze, analyze_structure
from repro.analysis.evidence import attach_evidence
from repro.analysis.registry import (
    DEFAULT_REGISTRY, LintConfig, Rule, RuleRegistry, rule,
)

# Importing the rule modules registers the stock rules.
from repro.analysis import rules_structure as _rules_structure  # noqa: F401
from repro.analysis import rules_wellformed as _rules_wellformed  # noqa: F401
from repro.analysis import rules_semantic as _rules_semantic  # noqa: F401

__all__ = [
    "AnalysisReport", "Diagnostic", "Severity",
    "RuleContext", "analyze", "analyze_structure", "attach_evidence",
    "DEFAULT_REGISTRY", "LintConfig", "Rule", "RuleRegistry", "rule",
]
