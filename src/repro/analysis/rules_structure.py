"""Structural rules (``XIC1xx``): findings about ``S`` alone.

These need no constraints and no implication machinery — they inspect
the element-type graph and the content-model regular expressions.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import RuleContext
from repro.analysis.registry import finding, rule
from repro.regexlang.glushkov import GlushkovNFA


@rule("XIC101", "nondeterministic-content-model", Severity.WARNING,
      "content model is not 1-unambiguous (XML 1.0 determinism)")
def check_nondeterministic(ctx: RuleContext) -> Iterator[Diagnostic]:
    """XML 1.0 requires deterministic content models; the paper's
    grammar does not, and validation here is exact either way — but a
    non-deterministic model usually signals an authoring mistake, and
    the Glushkov matcher runs slower on it (subset construction)."""
    for tau in sorted(ctx.structure.element_types):
        if not GlushkovNFA(ctx.structure.content(tau)).is_deterministic():
            yield finding(
                f"content model of {tau!r} is not 1-unambiguous "
                "(XML 1.0 would reject it; validation here is exact "
                "but slower)", element=tau)


@rule("XIC102", "unreachable-element-type", Severity.WARNING,
      "element type is declared but unreachable from the root")
def check_unreachable(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A declared type that no content model chain from the root can
    reach never occurs in a valid document; constraints on it are
    vacuous and the declaration is dead weight."""
    s = ctx.structure
    if not s.has_element(s.root):
        return
    reachable = {s.root}
    queue = deque((s.root,))
    while queue:
        tau = queue.popleft()
        for child in s.subelements(tau):
            if child not in reachable and s.has_element(child):
                reachable.add(child)
                queue.append(child)
    for tau in sorted(s.element_types - reachable):
        yield finding(
            f"element type {tau!r} is declared but unreachable from the "
            f"root {s.root!r}; it can never occur in a valid document",
            element=tau,
            fix=f"reference {tau!r} from a reachable content model or "
            "drop the declaration")


@rule("XIC104", "non-generating-required-type", Severity.ERROR,
      "a required element type derives no finite tree")
def check_non_generating(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A type on a mandatory containment chain from the root whose
    content model admits no finite derivation (``<!ELEMENT a (a)>``):
    no finite document validates, whatever Σ says.  The verdict comes
    from the shared satisfiability core, so it cannot disagree with
    ``repro-xic consistent`` or ``repro-xic synth``."""
    if not ctx.structure_ok:
        return  # XIC103 already explains the dangling references
    for tau in sorted(ctx.satisfiability.structural_conflicts):
        yield finding(
            f"element type {tau!r} is required by the content models "
            "but derives no finite tree (its content model mentions "
            "itself on every alternative) — no valid document exists",
            element=tau,
            fix=f"add a base case to the content model of {tau!r} or "
            "make it optional in its parents")


@rule("XIC103", "dangling-content-reference", Severity.ERROR,
      "content model or root references an undeclared element type")
def check_dangling(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Definition 2.2 requires ``P(tau)`` to range over declared
    element types, and the root to be declared.  ``DTDStructure.check``
    raises on the first violation; this rule reports them all."""
    s = ctx.structure
    if not s.has_element(s.root):
        yield finding(f"root element type {s.root!r} is not declared",
                      element=s.root)
    for tau in sorted(s.element_types):
        for ref in sorted(s.subelements(tau)):
            if not s.has_element(ref):
                yield finding(
                    f"content model of {tau!r} mentions undeclared "
                    f"element type {ref!r}", element=tau,
                    fix=f"declare <!ELEMENT {ref} ...>")
