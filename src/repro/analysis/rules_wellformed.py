"""Well-formedness rules (``XIC2xx``): the §2.2 side conditions of Σ.

The actual checking lives in :mod:`repro.constraints.wellformed`, which
produces structured :class:`WellFormednessProblem` records carrying the
``XIC2xx`` codes; each rule here filters the shared result for its own
code, so per-rule enable/disable and severity overrides work uniformly.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import RuleContext
from repro.analysis.registry import finding, rule


def _problems_with(ctx: RuleContext, code: str) -> Iterator[Diagnostic]:
    for p in ctx.wellformed_problems:
        if p.code == code:
            yield finding(p.message, element=p.element,
                          constraint=p.constraint)


@rule("XIC201", "undeclared-element", Severity.ERROR,
      "constraint references an undeclared element type")
def check_undeclared_element(ctx: RuleContext) -> Iterator[Diagnostic]:
    yield from _problems_with(ctx, "XIC201")


@rule("XIC202", "undeclared-attribute", Severity.ERROR,
      "constraint references an undeclared attribute")
def check_undeclared_attribute(ctx: RuleContext) -> Iterator[Diagnostic]:
    yield from _problems_with(ctx, "XIC202")


@rule("XIC203", "field-arity", Severity.ERROR,
      "field violates a single/set-valuedness side condition")
def check_field_arity(ctx: RuleContext) -> Iterator[Diagnostic]:
    yield from _problems_with(ctx, "XIC203")


@rule("XIC204", "missing-target-key", Severity.ERROR,
      "foreign-key target fields are not a stated key")
def check_missing_target_key(ctx: RuleContext) -> Iterator[Diagnostic]:
    yield from _problems_with(ctx, "XIC204")


@rule("XIC205", "id-side-condition", Severity.ERROR,
      "L_id side condition violated (ID constraint / attribute / IDREF)")
def check_id_side_condition(ctx: RuleContext) -> Iterator[Diagnostic]:
    yield from _problems_with(ctx, "XIC205")


@rule("XIC206", "cross-language-target", Severity.ERROR,
      "foreign-key target key is stated in a different language")
def check_cross_language_target(ctx: RuleContext) -> Iterator[Diagnostic]:
    yield from _problems_with(ctx, "XIC206")
