"""Semantic rules (``XIC3xx``): findings that use the §3 machinery.

These rules run the implication engines and the consistency analysis,
so they only fire on *sound* schemas (coherent structure, single
constraint language, well-formed Σ) — on broken input the ``XIC1xx`` /
``XIC2xx`` families already explain what is wrong, and deeper semantic
claims would be noise.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import RuleContext
from repro.analysis.registry import finding, rule
from repro.constraints.base import Language
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.errors import ConstraintError, PrimaryKeyRestrictionError
from repro.implication.lid import _canonical_inverse as _canon_lid
from repro.implication.lu import LuEngine, _canonical_inverse as _canon_lu
from repro.implication.l_primary import LPrimaryEngine
from repro.implication.lu_primary import check_primary_restriction


def _canonical(c):
    if isinstance(c, IDInverse):
        return _canon_lid(c)
    if isinstance(c, Inverse):
        return _canon_lu(c)
    return c


def _mandated_keys(sigma):
    """Keys §2.2 *requires* to be stated: every stated foreign key's
    target key (and both endpoint keys of an inverse).  These are always
    derivable from the foreign key itself (rules FK-K/UFK-K/SFK-K), but
    dropping them would make Σ ill-formed — so the redundancy rule must
    not suggest it.  Returns ``(key_ids, id_elements)``."""
    keys: set[tuple[str, frozenset]] = set()
    ids: set[str] = set()
    for c in sigma:
        if isinstance(c, ForeignKey):
            keys.add((c.target, frozenset(c.target_fields)))
        elif isinstance(c, (UnaryForeignKey, SetValuedForeignKey)):
            keys.add((c.target, frozenset((c.target_field,))))
        elif isinstance(c, Inverse):
            keys.add((c.element, frozenset((c.key_field,))))
            keys.add((c.target, frozenset((c.target_key_field,))))
        elif isinstance(c, (IDForeignKey, IDSetValuedForeignKey)):
            ids.add(c.target)
        elif isinstance(c, IDInverse):
            ids.update((c.element, c.target))
    return keys, ids


def _is_mandated(phi: object, keys: set[tuple[str, frozenset]],
                 ids: set[str]) -> bool:
    if isinstance(phi, Key):
        return (phi.element, phi.field_set) in keys
    if isinstance(phi, UnaryKey):
        return (phi.element, frozenset((phi.field,))) in keys
    if isinstance(phi, IDConstraint):
        return phi.element in ids
    return False


@rule("XIC301", "redundant-constraint", Severity.WARNING,
      "constraint is implied by the rest of Sigma")
def check_redundant(ctx: RuleContext) -> Iterator[Diagnostic]:
    """``Σ\\{φ} ⊨ φ``: the constraint adds nothing — every model of the
    others already satisfies it (Prop 3.1 / Thm 3.2 closures)."""
    if not ctx.sound or len(ctx.sigma) < 2:
        return
    counts = Counter(_canonical(c) for c in ctx.sigma)
    mandated_keys, mandated_ids = _mandated_keys(ctx.sigma)
    for i, phi in enumerate(ctx.sigma):
        if counts[_canonical(phi)] > 1:
            continue  # exact duplicates are XIC305's finding
        if _is_mandated(phi, mandated_keys, mandated_ids):
            continue  # §2.2 requires stating it; dropping is no fix
        rest = ctx.sigma[:i] + ctx.sigma[i + 1:]
        try:
            result = ctx.engine_for(rest).implies(phi)
        except (PrimaryKeyRestrictionError, ConstraintError):
            return
        if result:
            via = result.derivation.rule if result.derivation else "axioms"
            yield finding(
                f"implied by the rest of Sigma (via {via}); every model "
                "of the other constraints already satisfies it",
                constraint=str(phi), element=phi.element,
                fix="drop the redundant constraint")


@rule("XIC302", "finite-only-implication", Severity.WARNING,
      "finite and unrestricted implication diverge on this Sigma")
def check_divergence(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Constraints derivable only *finitely* (cycle rules ``C_k``,
    Cor 3.3): the schema means different things over finite documents
    and over unrestricted models — usually an accidental cardinality
    cycle, e.g. ``{tau.a -> tau, tau.b -> tau, tau.a sub tau.b}``."""
    language = ctx.language
    if not ctx.sound or language is None:
        return
    if (language & Language.LID) or not (language & Language.LU):
        return  # L_id and primary-L: the two problems coincide
    try:
        eng = LuEngine(ctx.sigma)
    except ConstraintError:
        return
    for n in sorted(set(eng.fin_keys) - set(eng.keys), key=str):
        yield finding(
            f"Sigma finitely implies the key {n[0]}.{n[1]} -> {n[0]} "
            "(cycle rule C_k) but does not imply it over unrestricted "
            "models — finite and unrestricted implication diverge "
            "(Cor 3.3)", element=n[0])
    for n in sorted(eng.fin_edges, key=str):
        for m in sorted(eng.fin_edges[n], key=str):
            if m in eng.edges.get(n, {}):
                continue
            yield finding(
                f"Sigma finitely implies {n[0]}.{n[1]} sub {m[0]}.{m[1]} "
                "(cycle rule C_k reverses a stated inclusion) but does "
                "not imply it over unrestricted models (Cor 3.3)",
                element=n[0])


@rule("XIC303", "inconsistent-schema", Severity.ERROR,
      "a required element type has a necessarily empty extension")
def check_inconsistent(ctx: RuleContext) -> Iterator[Diagnostic]:
    """The conflict set of the shared satisfiability core: types forced
    by the content models to occur in every valid document whose
    extension Σ forces to be empty — no valid document exists at all.
    (Purely structural conflicts are ``XIC104``'s finding.)"""
    if not ctx.sound:
        return
    for tau in sorted(ctx.satisfiability.constraint_conflicts):
        yield finding(
            f"element type {tau!r} is required by the content models but "
            "its extension is empty in every model of Sigma — no valid "
            "document exists", element=tau,
            fix=f"make {tau!r} optional in its parent content model or "
            "drop one of the conflicting foreign keys")


@rule("XIC304", "vacuous-type", Severity.WARNING,
      "element type has a necessarily empty extension")
def check_vacuous(ctx: RuleContext) -> Iterator[Diagnostic]:
    """A type whose extension Σ forces to be empty in every model (the
    ``L_id`` multi-target degeneracy, closed upward through mandatory
    containment).  Constraints on it hold vacuously, so implication
    answers about it are misleading."""
    if not ctx.sound:
        return
    report = ctx.satisfiability
    for tau in sorted(report.vacuous - report.conflicts):
        yield finding(
            f"the extension of {tau!r} is empty in every model of Sigma; "
            "all constraints on it hold vacuously", element=tau,
            fix="drop one of the foreign keys forcing the emptiness")


@rule("XIC305", "duplicate-constraint", Severity.WARNING,
      "the same constraint is stated more than once")
def check_duplicates(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Exact restatements (inverse constraints are compared up to their
    symmetric flip)."""
    counts = Counter(_canonical(c) for c in ctx.sigma)
    seen = set()
    for c in ctx.sigma:
        canon = _canonical(c)
        if counts[canon] > 1 and canon not in seen:
            seen.add(canon)
            yield finding(
                f"stated {counts[canon]} times", constraint=str(c),
                element=c.element, fix="keep a single copy")


@rule("XIC306", "shadowed-key", Severity.WARNING,
      "a stated key is a strict superset of another stated key")
def check_shadowed(ctx: RuleContext) -> Iterator[Diagnostic]:
    """If ``X ⊂ Y`` and ``tau[X] -> tau`` is stated, ``tau[Y] -> tau``
    is automatically satisfied — the wider key adds nothing (and ``I_p``
    deliberately has no augmentation rule to derive that for you)."""
    stated: list[tuple[str, frozenset, str]] = []
    for c in ctx.sigma:
        if isinstance(c, Key):
            stated.append((c.element, c.field_set, str(c)))
        elif isinstance(c, UnaryKey):
            stated.append((c.element, frozenset((c.field,)), str(c)))
    for element, fields, text in stated:
        shadowing = sorted(
            other_text for other_element, other_fields, other_text in stated
            if other_element == element and other_fields < fields)
        if shadowing:
            yield finding(
                f"shadowed by the smaller stated key {shadowing[0]}; any "
                "superset of a key is automatically a key",
                constraint=text, element=element,
                fix="drop the wider key")


@rule("XIC307", "primary-key-eligible", Severity.INFO,
      "Sigma satisfies the primary-key restriction (fast-path eligible)")
def check_primary_eligible(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Under the primary-key restriction implication and finite
    implication *coincide* (Thm 3.4 for ``L_u``, Thm 3.8/Cor 3.9 for
    ``L``), so a single run of the unrestricted decider answers both —
    the coincidence fast path."""
    language = ctx.language
    if not ctx.sound or not ctx.sigma or language is None:
        return
    if language & Language.LID:
        return  # Prop 3.1: L_id coincides regardless; nothing to certify
    if language & Language.LU:
        try:
            check_primary_restriction(ctx.sigma)
        except (PrimaryKeyRestrictionError, ConstraintError):
            return
        yield finding(
            "Sigma satisfies the primary-key restriction: implication "
            "and finite implication coincide (Thm 3.4) and one I_u run "
            "answers both")
    else:
        try:
            LPrimaryEngine(ctx.sigma)
        except (PrimaryKeyRestrictionError, ConstraintError):
            return
        yield finding(
            "Sigma satisfies the primary-key restriction: implication "
            "and finite implication coincide (Thm 3.8, Cor 3.9) under "
            "the I_p system")


@rule("XIC308", "undecidable-mix", Severity.WARNING,
      "full multi-attribute L outside the primary-key restriction")
def check_undecidable(ctx: RuleContext) -> Iterator[Diagnostic]:
    """Multi-attribute keys and foreign keys outside the primary-key
    restriction: implication and finite implication are undecidable
    (Thm 3.6) — only the sound-but-incomplete prover and the bounded
    chase refutation remain."""
    if not ctx.sound or ctx.language != Language.L:
        return
    if not any(isinstance(c, (Key, ForeignKey)) for c in ctx.sigma):
        return
    try:
        LPrimaryEngine(ctx.sigma)
    except PrimaryKeyRestrictionError as exc:
        yield finding(
            "Sigma uses multi-attribute keys/foreign keys outside the "
            f"primary-key restriction ({exc}); implication for full L "
            "is undecidable (Thm 3.6) — only bounded analysis "
            "(LGeneralEngine.decide) is available",
            fix="restructure Sigma to reference one primary key per "
            "element type")
    except ConstraintError:
        return
