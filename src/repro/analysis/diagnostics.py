"""The structured diagnostic model of the schema analysis engine.

A :class:`Diagnostic` is one finding about a ``DTD^C``: a stable code
(``XIC101`` …), a :class:`Severity`, a human-readable message, and
optional provenance — the element type and/or constraint the finding
anchors to, plus a fix suggestion.  :class:`AnalysisReport` is the
deterministic, JSON-serializable collection the engine returns.

Code families:

- ``XIC1xx`` — structural findings about ``S`` alone;
- ``XIC2xx`` — well-formedness of Σ against ``S`` (§2.2 side
  conditions, shared with :mod:`repro.constraints.wellformed`);
- ``XIC3xx`` — semantic findings that involve the §3 implication and
  consistency machinery.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace
from collections.abc import Iterable, Iterator


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR`` and ``WARNING`` are *findings* (they make ``lint`` exit
    nonzero); ``INFO`` and ``HINT`` are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"
    HINT = "hint"

    @property
    def rank(self) -> int:
        """Lower rank = more severe (for sorting)."""
        return _RANK[self]

    @property
    def is_finding(self) -> bool:
        """Whether this severity makes the lint outcome non-clean."""
        return self in (Severity.ERROR, Severity.WARNING)


_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2,
         Severity.HINT: 3}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analysis.

    ``element`` and ``constraint`` locate the finding inside the schema
    (either may be absent); ``rule`` is the kebab-case name of the rule
    that produced it; ``fix`` is an optional suggestion.

    ``evidence`` is an optional concrete artifact backing the finding —
    a synthesized witness or counterexample document as XML text —
    attached by :func:`repro.analysis.evidence.attach_evidence` (the
    ``lint --witness`` path); ``evidence_note`` says how to read it.
    """

    code: str
    severity: Severity
    message: str
    rule: str = ""
    element: str | None = None
    constraint: str | None = None
    fix: str | None = None
    evidence: str | None = None
    evidence_note: str | None = None

    @property
    def is_finding(self) -> bool:
        """Whether this diagnostic counts against a clean verdict."""
        return self.severity.is_finding

    def with_severity(self, severity: Severity) -> "Diagnostic":
        """The same diagnostic at an overridden severity."""
        return replace(self, severity=severity)

    def sort_key(self) -> tuple:
        """Deterministic ordering: severity, code, then location."""
        return (self.severity.rank, self.code, self.element or "",
                self.constraint or "", self.message)

    def to_dict(self) -> dict:
        """A JSON-ready mapping (optional fields omitted when absent)."""
        out = {"code": self.code, "severity": self.severity.value,
               "message": self.message, "rule": self.rule}
        if self.element is not None:
            out["element"] = self.element
        if self.constraint is not None:
            out["constraint"] = self.constraint
        if self.fix is not None:
            out["fix"] = self.fix
        if self.evidence is not None:
            out["evidence"] = self.evidence
        if self.evidence_note is not None:
            out["evidence_note"] = self.evidence_note
        return out

    def __str__(self) -> str:
        where = ""
        if self.constraint is not None:
            where = f" [{self.constraint}]"
        elif self.element is not None:
            where = f" [{self.element}]"
        suffix = f" (fix: {self.fix})" if self.fix else ""
        return (f"{self.code} {self.severity.value}{where}: "
                f"{self.message}{suffix}")


class AnalysisReport:
    """The deterministic outcome of analysing one ``DTD^C``."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: tuple[Diagnostic, ...] = tuple(
            sorted(diagnostics, key=Diagnostic.sort_key))

    @property
    def findings(self) -> list[Diagnostic]:
        """The errors and warnings (what makes ``lint`` exit 1)."""
        return [d for d in self.diagnostics if d.is_finding]

    @property
    def clean(self) -> bool:
        """Whether the schema has no errors or warnings."""
        return not self.findings

    def by_code(self, code: str) -> list[Diagnostic]:
        """Diagnostics whose code starts with ``code`` (prefix match)."""
        return [d for d in self.diagnostics if d.code.startswith(code)]

    def count(self, severity: Severity) -> int:
        """How many diagnostics carry the given severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def to_dict(self) -> dict:
        """A JSON-ready mapping of the whole report."""
        return {
            "clean": self.clean,
            "summary": {s.value: self.count(s) for s in Severity},
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, **extra: object) -> str:
        """The report as a JSON document (``extra`` keys are merged in)."""
        payload = {**extra, **self.to_dict()}
        return json.dumps(payload, indent=2, sort_keys=False)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __str__(self) -> str:
        if not self.diagnostics:
            return "clean (no diagnostics)"
        lines = [str(d) for d in self.diagnostics]
        n = len(self.findings)
        lines.append(f"{len(self.diagnostics)} diagnostic(s), "
                     f"{n} finding(s)")
        return "\n".join(lines)
