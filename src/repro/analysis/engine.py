"""The analysis driver: run registered rules over one ``DTD^C``.

:func:`analyze` builds a :class:`RuleContext` (shared, lazily computed
facts about the schema — its language, its well-formedness problems,
its consistency report) and runs every enabled rule of a registry over
it, returning a deterministic
:class:`~repro.analysis.diagnostics.AnalysisReport`.

The context exists so rules stay cheap and independent: expensive facts
(implication closures, consistency) are computed once and memoized, and
rules that need a *sound* schema (the semantic ``XIC3xx`` family) can
bail out early via :attr:`RuleContext.sound` when structural or
well-formedness errors make deeper analysis meaningless.
"""

from __future__ import annotations

from functools import cached_property

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.registry import DEFAULT_REGISTRY, LintConfig, RuleRegistry
from repro.constraints.base import Constraint, Language
from repro.constraints.wellformed import (
    WellFormednessProblem, language_of, well_formed_problems,
)
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import ConstraintError
from repro.implication.lid import LidEngine
from repro.implication.lu import LuEngine
from repro.implication.l_primary import LPrimaryEngine
from repro.obs import NULL_OBS


class RuleContext:
    """Shared, memoized facts about the schema under analysis."""

    def __init__(self, dtd: DTDC) -> None:
        self.dtd = dtd
        self.structure: DTDStructure = dtd.structure
        self.sigma: tuple[Constraint, ...] = tuple(dtd.constraints)

    @cached_property
    def language(self) -> Language | None:
        """The common language of Σ, or ``None`` when Σ mixes languages
        (full flag set when Σ is empty)."""
        if not self.sigma:
            return Language.L | Language.LU | Language.LID
        try:
            return language_of(self.sigma)
        except ConstraintError:
            return None

    @cached_property
    def structure_ok(self) -> bool:
        """Whether ``S`` is globally coherent (root + references declared)."""
        try:
            self.structure.check()
        except Exception:
            return False
        return True

    @cached_property
    def wellformed_problems(self) -> list[WellFormednessProblem]:
        """The §2.2 side-condition violations of Σ (empty = well-formed)."""
        if not self.structure_ok:
            return []
        return well_formed_problems(self.sigma, self.structure)

    @cached_property
    def sound(self) -> bool:
        """Whether semantic rules may run: coherent structure, single
        language, no well-formedness problems."""
        return (self.structure_ok and self.language is not None
                and not self.wellformed_problems)

    def engine_for(self, sigma):
        """The implication decider for a subset of Σ, chosen by Σ's
        common language (``L_id`` over ``L_u`` over primary ``L``).

        May raise
        :class:`~repro.errors.PrimaryKeyRestrictionError` (general-``L``
        sets outside the restriction have no exact decider, Thm 3.6).
        """
        language = self.language
        if language is None:
            raise ConstraintError("mixed-language Sigma has no decider")
        if language & Language.LID:
            return LidEngine(sigma)
        if language & Language.LU:
            return LuEngine(sigma)
        return LPrimaryEngine(sigma)

    @cached_property
    def consistency(self):
        """The required/vacuous consistency report (memoized)."""
        from repro.dtd.consistency import consistency_report

        return consistency_report(self.dtd)

    @cached_property
    def satisfiability(self):
        """The analytic satisfiability verdict (memoized, no witness).

        This is the same call the ``repro-xic consistent`` subcommand
        makes, so the lint rules (``XIC104``, ``XIC303``) and the CLI
        verdict agree by construction.
        """
        from repro.synthesis import check_satisfiability

        return check_satisfiability(self.dtd, synthesize=False)


def analyze(dtd: DTDC, config: LintConfig | None = None,
            registry: RuleRegistry | None = None,
            obs=None) -> AnalysisReport:
    """Run every enabled rule over the schema; return the report.

    ``config`` selects/ignores rules and overrides severities;
    ``registry`` defaults to the stock rule set.  Build the ``DTDC``
    with ``check=False`` when linting possibly ill-formed input — the
    whole point is to *report* the problems, not raise on them.
    ``obs`` (optional :class:`repro.obs.Observability`) times each rule
    under an ``analysis.rule`` span and counts diagnostics per code.

    .. deprecated::
        New code should prefer the unified facade,
        ``repro.Validator(dtd).analyze(config)``; this function stays as
        the delegation target (and for the ``registry`` extension
        point).
    """
    obs = obs or NULL_OBS
    if registry is None:
        registry = DEFAULT_REGISTRY
    if config is None:
        config = LintConfig()
    ctx = RuleContext(dtd)
    diagnostics: list[Diagnostic] = []
    with obs.span("analysis.analyze") as top:
        for r in registry:
            if not config.enables(r.code):
                continue
            with obs.span("analysis.rule", code=r.code,
                          rule=r.name) as span:
                found = [config.apply_severity(d) for d in r.run(ctx)]
            diagnostics.extend(found)
            if obs.enabled:
                span.set(diagnostics=len(found))
                obs.counter("analysis_rules_run",
                            help="analysis rules executed").inc()
                if found:
                    obs.counter(
                        "analysis_diagnostics", {"code": r.code},
                        help="diagnostics emitted per rule code",
                    ).add(len(found))
        if obs.enabled:
            top.set(diagnostics=len(diagnostics))
    return AnalysisReport(diagnostics)


def analyze_structure(structure: DTDStructure,
                      config: LintConfig | None = None) -> AnalysisReport:
    """Run the structural (``XIC1xx``) rules over ``S`` alone."""
    base = config or LintConfig()
    scoped = LintConfig(select=base.select or ("XIC1",),
                        ignore=base.ignore, severity=base.severity)
    return analyze(DTDC(structure, (), check=False), config=scoped)
