"""The rule registry and per-run lint configuration.

A :class:`Rule` packages one check: a stable code, a kebab-case name, a
default severity, a one-line description, and the check function itself
(taking a :class:`~repro.analysis.engine.RuleContext`, yielding
:class:`~repro.analysis.diagnostics.Diagnostic` objects).  Rules live in
a :class:`RuleRegistry`; the module-level :data:`DEFAULT_REGISTRY` is
what :func:`repro.analysis.analyze` consults, and the :func:`rule`
decorator registers into it.

:class:`LintConfig` selects/ignores rules by code prefix and overrides
severities per code — the programmatic form of the CLI's ``--select``,
``--ignore`` flags.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # engine imports registry; annotation only
    from repro.analysis.engine import RuleContext

_CODE_RE = re.compile(r"^XIC\d{3}$")

#: A rule body: context in, diagnostics out.
RuleCheck = Callable[["RuleContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    code: str
    name: str
    severity: Severity
    description: str
    check: RuleCheck

    def run(self, ctx: "RuleContext") -> list[Diagnostic]:
        """Run the check, stamping code/rule/default severity onto every
        diagnostic the body yields (bodies only supply the payload)."""
        out = []
        for d in self.check(ctx):
            if not d.code:
                d = replace(d, code=self.code, severity=self.severity,
                            rule=self.name)
            out.append(d)
        return out


def finding(message: str, *, element: str | None = None,
            constraint: str | None = None,
            fix: str | None = None) -> Diagnostic:
    """A diagnostic payload for rule bodies; the registry stamps the
    code, rule name and default severity on via :meth:`Rule.run`."""
    return Diagnostic("", Severity.WARNING, message, element=element,
                      constraint=constraint, fix=fix)


class RuleRegistry:
    """An ordered collection of rules, keyed by code."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, r: Rule) -> Rule:
        """Add a rule; codes must be unique and shaped ``XICnnn``."""
        if not _CODE_RE.match(r.code):
            raise ValueError(f"bad rule code {r.code!r} (want XICnnn)")
        if r.code in self._rules:
            raise ValueError(f"duplicate rule code {r.code}")
        self._rules[r.code] = r
        return r

    def rule(self, code: str, name: str, severity: Severity,
             description: str) -> Callable[[RuleCheck], RuleCheck]:
        """Decorator: register ``check`` under the given code."""
        def deco(check: RuleCheck) -> RuleCheck:
            self.register(Rule(code, name, severity, description, check))
            return check
        return deco

    def get(self, code: str) -> Rule:
        """The rule with exactly this code (:class:`KeyError` if none)."""
        return self._rules[code]

    def codes(self) -> list[str]:
        """All registered codes, sorted."""
        return sorted(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self._rules.values(), key=lambda r: r.code))

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, code: str) -> bool:
        return code in self._rules


#: The registry the stock rules register into and `analyze` consults.
DEFAULT_REGISTRY = RuleRegistry()

#: Register a rule into the default registry (decorator).
rule = DEFAULT_REGISTRY.rule


def _matches(code: str, prefixes: Iterable[str]) -> bool:
    return any(code.startswith(p) for p in prefixes)


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection and severity overrides.

    ``select`` / ``ignore`` entries are code prefixes: ``"XIC3"``
    matches the whole semantic family, ``"XIC301"`` one rule.  An empty
    ``select`` means "all rules".  ``severity`` maps exact codes to
    overriding severities.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    severity: Mapping[str, Severity] = field(default_factory=dict)

    def enables(self, code: str) -> bool:
        """Whether a rule with this code should run."""
        if self.select and not _matches(code, self.select):
            return False
        return not _matches(code, self.ignore)

    def apply_severity(self, d: Diagnostic) -> Diagnostic:
        """Apply a per-code severity override, if one is configured."""
        override = self.severity.get(d.code)
        return d.with_severity(override) if override else d
