"""Concrete evidence for semantic lint findings (``lint --witness``).

An abstract diagnostic like "this constraint is redundant" is easy to
doubt; a document is not.  :func:`attach_evidence` revisits the
semantic findings of an :class:`~repro.analysis.diagnostics.
AnalysisReport` and attaches, where one can be synthesized, a concrete
XML document (plus a note saying how to read it):

- ``XIC301`` (redundant constraint) — a witness of ``(S, Σ∖{φ})``:
  the document satisfies the *other* constraints and, sure enough,
  already satisfies φ;
- ``XIC302`` (finite/unrestricted divergence) — a finite prefix of the
  infinite model behind Cor 3.3, lowered to a document under the
  user's structure; the prefix breaks Σ exactly at its boundary,
  materializing why no finite model exists;
- ``XIC303`` (inconsistent schema) — the unsat core, plus a witness of
  the *repaired* schema (Σ minus the core) proving the removal fixes
  it;
- ``XIC304`` (vacuous type) — a zero-violation witness whose extension
  of the vacuous type is empty, as it must be in every model.

Evidence is best-effort: when synthesis cannot produce a verified
document (bounded occurrence corners, mixed multi-type divergence) the
diagnostic passes through unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.constraints.checker import check
from repro.constraints.lang_lu import UnaryForeignKey, UnaryKey
from repro.dtd.dtdc import DTDC
from repro.implication.counterexample import AffineAttribute, InfiniteWitness
from repro.implication.lowering import lower_model
from repro.obs import NULL_OBS
from repro.synthesis import check_satisfiability, synthesize_witness
from repro.xmlio.serializer import serialize

#: How many rows of the infinite model a divergence prefix shows.
PREFIX_ROWS = 3


def attach_evidence(report: AnalysisReport, dtd: DTDC,
                    obs=None) -> AnalysisReport:
    """A copy of the report with evidence documents attached where the
    synthesis machinery can produce one (see the module docstring)."""
    obs = obs or NULL_OBS
    out = []
    with obs.span("analysis.evidence"):
        for d in report:
            handler = _HANDLERS.get(d.code)
            if handler is not None:
                try:
                    d = handler(d, dtd, obs) or d
                except Exception:  # evidence is best-effort
                    pass
            out.append(d)
    return AnalysisReport(out)


def _witness_xml(dtd: DTDC, obs) -> "str | None":
    tree, _exercised, _rounds = synthesize_witness(dtd, obs=obs)
    return None if tree is None else serialize(tree)


def _redundant(d: Diagnostic, dtd: DTDC, obs) -> "Diagnostic | None":
    """XIC301: witness of Σ∖{φ} that already satisfies φ."""
    phi = next((c for c in dtd.constraints if str(c) == d.constraint),
               None)
    if phi is None:
        return None
    rest = tuple(c for c in dtd.constraints if c is not phi)
    sub = DTDC(dtd.structure, rest, check=False)
    tree, _ex, _r = synthesize_witness(sub, obs=obs)
    if tree is None or not check(tree, [phi], dtd.structure).ok:
        return None
    return replace(
        d, evidence=serialize(tree),
        evidence_note=f"a document satisfying Sigma without {phi}; "
        "it already satisfies the dropped constraint, as every model "
        "of the others must")


def _divergent(d: Diagnostic, dtd: DTDC, obs) -> "Diagnostic | None":
    """XIC302: a lowered prefix of the infinite separating model."""
    element = d.element
    if element is None:
        return None
    sigma = tuple(dtd.constraints)
    # Symbolic evaluation only covers single-type unary Σ.
    for c in sigma:
        if isinstance(c, UnaryKey) and c.element == element:
            continue
        if isinstance(c, UnaryForeignKey) and c.element == element \
                and c.target == element:
            continue
        return None
    shifts = _acyclic_shifts(sigma)
    if shifts is None:
        return None
    witness = InfiniteWitness(element, tuple(
        AffineAttribute(f, shift) for f, shift in sorted(
            shifts.items(), key=lambda kv: str(kv[0]))))
    if not all(witness.satisfies(c) for c in sigma):
        return None
    tree = lower_model(witness.prefix(PREFIX_ROWS), dtd.structure)
    if tree is None:
        return None
    return replace(
        d, evidence=serialize(tree),
        evidence_note=f"the first {PREFIX_ROWS} rows of an infinite "
        "model of Sigma (attribute i carries value i + shift); any "
        "finite truncation like this one violates Sigma at its "
        "boundary — the divergence is exactly the impossibility of "
        "closing the prefix off")


def _acyclic_shifts(sigma) -> "dict | None":
    """Affine shifts satisfying every stated inclusion: ``shift(f) >=
    shift(g)`` for each ``f ⊆ g``, strict somewhere — the longest
    stated-edge path from each field.  ``None`` on a cyclic graph."""
    edges: dict = {}
    fields: set = set()
    for c in sigma:
        if isinstance(c, UnaryKey):
            fields.add(c.field)
        elif isinstance(c, UnaryForeignKey):
            fields.update((c.field, c.target_field))
            edges.setdefault(c.field, set()).add(c.target_field)
    depth: dict = {}
    visiting: set = set()

    def longest(f) -> "int | None":
        if f in depth:
            return depth[f]
        if f in visiting:
            return None  # cycle
        visiting.add(f)
        best = 0
        for g in sorted(edges.get(f, ()), key=str):
            sub = longest(g)
            if sub is None:
                return None
            best = max(best, sub + 1)
        visiting.discard(f)
        depth[f] = best
        return best

    for f in sorted(fields, key=str):
        if longest(f) is None:
            return None
    return depth


def _inconsistent(d: Diagnostic, dtd: DTDC, obs) -> "Diagnostic | None":
    """XIC303: the unsat core + a witness of the repaired schema."""
    sat = check_satisfiability(dtd, synthesize=False, obs=obs)
    if sat.core is None or not sat.core.constraints:
        return None
    kept = tuple(c for c in dtd.constraints
                 if not any(c is m for m in sat.core.constraints))
    repaired = _witness_xml(DTDC(dtd.structure, kept, check=False), obs)
    note = str(sat.core)
    if repaired is not None:
        note += ("; the attached document validates cleanly once the "
                 "core constraints are removed")
    return replace(d, evidence=repaired, evidence_note=note)


def _vacuous(d: Diagnostic, dtd: DTDC, obs) -> "Diagnostic | None":
    """XIC304: a clean witness in which the vacuous type never occurs."""
    xml = _witness_xml(dtd, obs)
    if xml is None:
        return None
    return replace(
        d, evidence=xml,
        evidence_note=f"a zero-violation witness; note it contains no "
        f"{d.element!r} element — none can exist in any model of Sigma")


_HANDLERS = {
    "XIC301": _redundant,
    "XIC302": _divergent,
    "XIC303": _inconsistent,
    "XIC304": _vacuous,
}
