"""Merging two ``DTD^C`` s (the mediated-schema step of integration).

The merge is the disjoint union of the two schemas under a fresh root
whose content is ``(root1, root2)``.  Element-type collisions are
rejected — the caller resolves them first with
:func:`repro.transform.rename.rename_elements`, which is exactly how
real integration pipelines disambiguate source vocabularies.

Constraint propagation is the union: every source constraint survives
verbatim.  For ``L_id`` there is a genuine semantic subtlety the report
surfaces: ID uniqueness is *document-wide*, so two sources that were
individually consistent can clash after the merge (the same ID value
used by both) — constraint preservation at the schema level does not
imply satisfaction at the instance level, and
:func:`merge_documents` + validation is the check.
"""

from __future__ import annotations

from repro.constraints.wellformed import language_of
from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import ConstraintError, SchemaError


def merge(d1: DTDC, d2: DTDC, root: str = "merged") -> DTDC:
    """The disjoint union of two ``DTD^C`` s under a fresh root."""
    s1, s2 = d1.structure, d2.structure
    collisions = s1.element_types & s2.element_types
    if collisions:
        raise SchemaError(
            f"element types declared in both sources: "
            f"{sorted(collisions)}; rename before merging")
    if root in s1.element_types | s2.element_types:
        raise SchemaError(f"fresh root {root!r} collides with a source "
                          "element type")
    out = DTDStructure(root)
    out.define_element(root, f"({s1.root}, {s2.root})")
    for s in (s1, s2):
        for t in s.element_types:
            out.define_element(t, s.content(t))
        for t in s.element_types:
            for a in s.attributes(t):
                out.define_attribute(t, a,
                                     set_valued=s.is_set_valued(t, a),
                                     kind=s.kind(t, a))
    constraints = list(d1.constraints) + list(d2.constraints)
    try:
        language_of(constraints)
    except ConstraintError as exc:
        raise ConstraintError(
            "the merged constraint set mixes languages; translate one "
            f"source first ({exc})") from exc
    return DTDC(out, constraints)


def copy_subtree(target: DataTree, source: Vertex) -> Vertex:
    """A deep copy of ``source`` (labels, children, attributes) owned by
    ``target``; the copy is returned detached."""
    clone = target.create(source.label)
    for name, values in source.attributes.items():
        clone.set_attribute(name, values)
    for child in source.children:
        if isinstance(child, str):
            clone.append(child)
        else:
            clone.append(copy_subtree(target, child))
    return clone


def merge_documents(tree1: DataTree, tree2: DataTree,
                    root: str = "merged") -> DataTree:
    """The document-level merge matching :func:`merge`'s schema."""
    out = DataTree(root)
    out.root.append(copy_subtree(out, tree1.root))
    out.root.append(copy_subtree(out, tree2.root))
    return out
