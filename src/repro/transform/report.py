"""Propagation reports: did the transformation preserve the semantics?

:func:`verify_propagation` asks, for each source constraint, whether the
transformed Σ' *implies* its image under the transformation's renaming —
the correctness question the paper's conclusion poses for integration
programs.  The check picks the right decision procedure per language
(Prop 3.1 / Thm 3.2 / Thm 3.8) and reports per-constraint verdicts.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.constraints.base import Constraint, Language
from repro.constraints.wellformed import language_of
from repro.dtd.dtdc import DTDC
from repro.implication.l_primary import LPrimaryEngine
from repro.implication.lid import LidEngine
from repro.implication.lu import LuEngine
from repro.transform.rename import rewrite_constraint

_EMPTY: dict = {}


@dataclass
class PropagationReport:
    """Per-constraint outcome of a propagation check."""

    preserved: list[Constraint] = field(default_factory=list)
    lost: list[Constraint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked source constraint propagated."""
        return not self.lost

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        lines = [f"propagated: {len(self.preserved)}, "
                 f"lost: {len(self.lost)}"]
        lines.extend(f"  LOST: {c}" for c in self.lost)
        return "\n".join(lines)


def _engine_for(constraints, probe: Constraint):
    language = language_of(list(constraints) + [probe])
    if language & Language.LID:
        return LidEngine(constraints)
    if language & Language.LU:
        return LuEngine(constraints)
    return LPrimaryEngine(constraints)


def verify_propagation(source: DTDC, transformed: DTDC,
                       elem_map: Mapping[str, str] = _EMPTY,
                       attr_map: Mapping[tuple[str, str], str] = _EMPTY,
                       finite: bool = True) -> PropagationReport:
    """Check that Σ' implies the image of every source constraint.

    ``elem_map`` / ``attr_map`` describe how the transformation renamed
    things (identity by default).  ``finite=True`` uses finite
    implication — the appropriate notion for stored documents.
    """
    report = PropagationReport()
    sigma_prime = list(transformed.constraints)
    for c in source.constraints:
        image = rewrite_constraint(c, elem_map=elem_map,
                                   attr_map=attr_map)
        try:
            engine = _engine_for(sigma_prime, image)
            result = engine.finitely_implies(image) if finite \
                else engine.implies(image)
        except Exception:
            result = False
        if result:
            report.preserved.append(c)
        else:
            report.lost.append(c)
    return report
