"""Renaming element types and attributes, with Σ rewritten along.

Renaming is the simplest integration step and the one where constraint
propagation is *lossless*: every constraint has an image and the image
set is equivalent to the source set up to the renaming bijection.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import SchemaError
from repro.regexlang.ast import Atom, Concat, Epsilon, Regex, Star, Union

_EMPTY: dict = {}


def map_symbols(regex: Regex, mapping: Mapping[str, str]) -> Regex:
    """Rewrite the alphabet symbols of a content model."""
    if isinstance(regex, Epsilon):
        return regex
    if isinstance(regex, Atom):
        return Atom(mapping.get(regex.symbol, regex.symbol))
    if isinstance(regex, Union):
        return Union(map_symbols(regex.left, mapping),
                     map_symbols(regex.right, mapping))
    if isinstance(regex, Concat):
        return Concat(map_symbols(regex.left, mapping),
                      map_symbols(regex.right, mapping))
    if isinstance(regex, Star):
        return Star(map_symbols(regex.inner, mapping))
    raise TypeError(f"unknown regex node {regex!r}")


def _map_field(field: Field, element: str,
               elem_map: Mapping[str, str],
               attr_map: Mapping[tuple[str, str], str]) -> Field:
    """Rewrite one field *as referenced from* ``element`` (old name)."""
    if field.is_element:
        return Field(elem_map.get(field.name, field.name),
                     is_element=True)
    new_name = attr_map.get((element, field.name), field.name)
    return Field(new_name)


def rewrite_constraint(c: Constraint,
                       elem_map: Mapping[str, str] = _EMPTY,
                       attr_map: Mapping[tuple[str, str], str] = _EMPTY
                       ) -> Constraint:
    """The image of a constraint under element/attribute renaming.

    ``elem_map`` maps old element type names to new ones; ``attr_map``
    maps (old element type, old attribute) pairs to new attribute names.
    """
    def elem(name: str) -> str:
        return elem_map.get(name, name)

    def field(f: Field, owner: str) -> Field:
        return _map_field(f, owner, elem_map, attr_map)

    if isinstance(c, UnaryKey):
        return UnaryKey(elem(c.element), field(c.field, c.element))
    if isinstance(c, Key):
        return Key(elem(c.element),
                   tuple(field(f, c.element) for f in c.fields))
    if isinstance(c, UnaryForeignKey):
        return UnaryForeignKey(elem(c.element), field(c.field, c.element),
                               elem(c.target),
                               field(c.target_field, c.target))
    if isinstance(c, SetValuedForeignKey):
        return SetValuedForeignKey(elem(c.element),
                                   field(c.field, c.element),
                                   elem(c.target),
                                   field(c.target_field, c.target))
    if isinstance(c, ForeignKey):
        return ForeignKey(elem(c.element),
                          tuple(field(f, c.element) for f in c.fields),
                          elem(c.target),
                          tuple(field(f, c.target)
                                for f in c.target_fields))
    if isinstance(c, Inverse):
        return Inverse(elem(c.element), field(c.key_field, c.element),
                       field(c.field, c.element),
                       elem(c.target),
                       field(c.target_key_field, c.target),
                       field(c.target_field, c.target))
    if isinstance(c, IDConstraint):
        return IDConstraint(elem(c.element))
    if isinstance(c, IDForeignKey):
        return IDForeignKey(elem(c.element), field(c.field, c.element),
                            elem(c.target))
    if isinstance(c, IDSetValuedForeignKey):
        return IDSetValuedForeignKey(elem(c.element),
                                     field(c.field, c.element),
                                     elem(c.target))
    if isinstance(c, IDInverse):
        return IDInverse(elem(c.element), field(c.field, c.element),
                         elem(c.target), field(c.target_field, c.target))
    raise TypeError(f"unknown constraint type {c!r}")


def rename_elements(dtd: DTDC, mapping: Mapping[str, str]) -> DTDC:
    """A new ``DTD^C`` with element types renamed per ``mapping``.

    The mapping must be injective on the declared element types and the
    renamed names must not collide with unrenamed ones (a collision
    would *merge* extensions and silently change constraint semantics).
    """
    s = dtd.structure
    declared = s.element_types
    images = {mapping.get(t, t) for t in declared}
    if len(images) != len(declared):
        raise SchemaError("element renaming is not injective on the "
                          "declared element types")
    for old in mapping:
        if old not in declared:
            raise SchemaError(f"cannot rename undeclared element {old!r}")
    out = DTDStructure(mapping.get(s.root, s.root))
    for t in declared:
        out.define_element(mapping.get(t, t),
                           map_symbols(s.content(t), mapping))
    for t in declared:
        for a in s.attributes(t):
            out.define_attribute(mapping.get(t, t), a,
                                 set_valued=s.is_set_valued(t, a),
                                 kind=s.kind(t, a))
    constraints = [rewrite_constraint(c, elem_map=mapping)
                   for c in dtd.constraints]
    return DTDC(out, constraints)


def rename_attributes(dtd: DTDC, element: str,
                      mapping: Mapping[str, str]) -> DTDC:
    """A new ``DTD^C`` with attributes of ``element`` renamed."""
    s = dtd.structure
    if not s.has_element(element):
        raise SchemaError(f"undeclared element type {element!r}")
    for old in mapping:
        if not s.has_attribute(element, old):
            raise SchemaError(
                f"cannot rename undeclared attribute {element}.{old}")
    new_names = [mapping.get(a, a) for a in s.attributes(element)]
    if len(set(new_names)) != len(new_names):
        raise SchemaError("attribute renaming is not injective")
    out = DTDStructure(s.root)
    for t in s.element_types:
        out.define_element(t, s.content(t))
    for t in s.element_types:
        for a in s.attributes(t):
            name = mapping.get(a, a) if t == element else a
            out.define_attribute(t, name,
                                 set_valued=s.is_set_valued(t, a),
                                 kind=s.kind(t, a))
    attr_map = {(element, old): new for old, new in mapping.items()}
    constraints = [rewrite_constraint(c, attr_map=attr_map)
                   for c in dtd.constraints]
    return DTDC(out, constraints)
