"""Projecting a ``DTD^C`` onto a subtree (the export/view step).

``project(dtd, new_root)`` restricts the schema to the element types
reachable from ``new_root`` through content models and through Σ's
reference constraints are **not** followed — a reference out of the
projected subtree is precisely a constraint that cannot survive.

The function returns the projected ``DTD^C`` together with the list of
*dropped* constraints.  Dropping is where integration loses semantics
silently (the §1 motivation in reverse), so the caller is forced to see
the list; ``strict=True`` turns any drop into an error.
"""

from __future__ import annotations

from collections import deque

from repro.constraints.base import Constraint
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import ConstraintError, SchemaError


def reachable_types(structure: DTDStructure, root: str) -> set[str]:
    """Element types reachable from ``root`` through content models."""
    if not structure.has_element(root):
        raise SchemaError(f"undeclared element type {root!r}")
    seen = {root}
    queue = deque((root,))
    while queue:
        t = queue.popleft()
        for child in structure.subelements(t):
            if child not in seen:
                seen.add(child)
                queue.append(child)
    return seen


def _mentioned_types(c: Constraint) -> set[str]:
    if isinstance(c, (UnaryKey, Key, IDConstraint)):
        return {c.element}
    if isinstance(c, (UnaryForeignKey, SetValuedForeignKey, ForeignKey,
                      Inverse, IDForeignKey, IDSetValuedForeignKey,
                      IDInverse)):
        return {c.element, c.target}
    raise TypeError(f"unknown constraint type {c!r}")


def project(dtd: DTDC, new_root: str, strict: bool = False
            ) -> tuple[DTDC, list[Constraint]]:
    """Restrict to the subtree under ``new_root``.

    Returns ``(projected DTD^C, dropped constraints)``.  A constraint is
    kept iff every element type it mentions survives the projection.
    With ``strict=True``, any dropped constraint raises
    :class:`~repro.errors.ConstraintError` instead.
    """
    s = dtd.structure
    keep = reachable_types(s, new_root)
    out = DTDStructure(new_root)
    for t in sorted(keep):
        out.define_element(t, s.content(t))
    for t in sorted(keep):
        for a in s.attributes(t):
            out.define_attribute(t, a,
                                 set_valued=s.is_set_valued(t, a),
                                 kind=s.kind(t, a))
    kept: list[Constraint] = []
    dropped: list[Constraint] = []
    for c in dtd.constraints:
        (kept if _mentioned_types(c) <= keep else dropped).append(c)
    # Keeping a foreign key whose *stated target key* was dropped would
    # leave Σ' ill-formed, so drop dependents transitively until Σ' is
    # well-formed again — every drop lands in the report.
    from repro.constraints.wellformed import well_formed

    while True:
        problems = well_formed(kept, out)
        if not problems:
            break
        bad = [c for c in kept
               if any(p.startswith(f"{c}:") for p in problems)]
        if not bad:  # pragma: no cover - defensive
            raise ConstraintError("; ".join(problems))
        for c in bad:
            kept.remove(c)
            dropped.append(c)
    projected = DTDC(out, kept)
    if strict and dropped:
        raise ConstraintError(
            "projection drops constraints: "
            + "; ".join(str(c) for c in dropped))
    return projected, dropped
