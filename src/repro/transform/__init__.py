"""Constraint propagation through integration/transformation programs.

The paper closes (§5) with the practical question it leaves open: *"how
constraints propagate through integration programs, and how they can
help in verifying their correctness?"*.  This package implements the
three transformations that cover the common integration pipeline and
makes their constraint propagation explicit and checkable:

- :func:`rename_elements` / :func:`rename_attributes` — consistent
  renaming of element types and attributes, rewriting Σ along;
- :func:`merge` — disjoint union of two ``DTD^C`` s under a fresh root
  (the "mediated schema" step), with collision detection and the
  document-level merge;
- :func:`project` — restriction of a ``DTD^C`` to the subtree reachable
  from a new root type, keeping exactly the constraints whose types
  survive (and reporting the ones that were *dropped*, since dropping a
  constraint is where integration silently loses semantics);
- :class:`PropagationReport` — for each transformation, which
  constraints were preserved verbatim, rewritten, or dropped, plus an
  implication-engine check that the preserved Σ' still implies the
  images of selected source constraints.
"""

from repro.transform.rename import rename_attributes, rename_elements
from repro.transform.merge import merge
from repro.transform.project import project
from repro.transform.report import PropagationReport, verify_propagation

__all__ = ["rename_attributes", "rename_elements", "merge", "project",
           "PropagationReport", "verify_propagation"]
