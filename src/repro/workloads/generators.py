"""Seeded random generators for structures, documents and constraint
sets — the workload side of every benchmark.

Everything takes an explicit ``seed`` (or ``random.Random``) so runs are
reproducible; nothing here consults global randomness.
"""

from __future__ import annotations

import random

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.structure import DTDStructure
from repro.regexlang.ast import (
    ATOMIC, Atom, Concat, Epsilon, Regex, Star, Union,
)
from repro.regexlang.properties import shortest_word


def _rng(seed: "int | random.Random") -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


# ---------------------------------------------------------------------------
# Structures and documents
# ---------------------------------------------------------------------------


def random_structure(seed: "int | random.Random" = 0, n_types: int = 6,
                     max_attrs: int = 3,
                     recursion: bool = True) -> DTDStructure:
    """A random DTD structure: a root whose content fans out over the
    other types; each type gets text-or-children content and attributes."""
    rng = _rng(seed)
    names = [f"e{i}" for i in range(n_types)]
    s = DTDStructure(names[0])
    for i, name in enumerate(names):
        children = [n for n in names[i + 1:i + 4]]
        if recursion and rng.random() < 0.3 and i > 0:
            children.append(name)  # recursive like the paper's section
        parts: list[str] = []
        for child in children:
            parts.append(rng.choice([f"{child}*", f"{child}?", child])
                         if child != name else f"{name}*")
        if not parts or rng.random() < 0.5:
            parts.append("#PCDATA*" if rng.random() < 0.5 else "#PCDATA?")
        s.define_element(name, "(" + ", ".join(parts) + ")")
    for name in names:
        for a in range(rng.randint(0, max_attrs)):
            s.define_attribute(name, f"a{a}",
                               set_valued=rng.random() < 0.25)
    s.check()
    return s


def _random_word(regex: Regex, rng: random.Random,
                 budget: int) -> list[str]:
    """A random word of ``L(regex)``, biased short when budget is low."""
    if isinstance(regex, Epsilon):
        return []
    if isinstance(regex, Atom):
        return [regex.symbol]
    if isinstance(regex, Union):
        if budget <= 0:
            a = shortest_word(regex.left)
            b = shortest_word(regex.right)
            side = regex.left if len(a) <= len(b) else regex.right
            return _random_word(side, rng, budget)
        return _random_word(rng.choice((regex.left, regex.right)),
                            rng, budget)
    if isinstance(regex, Concat):
        left = _random_word(regex.left, rng, budget)
        return left + _random_word(regex.right, rng, budget - len(left))
    if isinstance(regex, Star):
        out: list[str] = []
        while budget > len(out) and rng.random() < 0.6:
            part = _random_word(regex.inner, rng, budget - len(out))
            if not part:
                break
            out.extend(part)
        return out
    raise TypeError(f"unknown regex node {regex!r}")


def random_document(structure: DTDStructure,
                    seed: "int | random.Random" = 0,
                    size_budget: int = 200,
                    max_depth: int = 12) -> DataTree:
    """A structurally valid random document for ``structure``.

    Every declared attribute is populated (Definition 2.4 requires it);
    attribute values are drawn from small per-attribute pools, so key
    constraints will usually be violated — by design: this generator
    feeds the *checker* benchmarks, which need violations to find.
    """
    rng = _rng(seed)
    tree = DataTree(structure.root)
    counter = [0]

    def fill(vertex: Vertex, depth: int) -> None:
        for attr in sorted(structure.attributes(vertex.label)):
            if structure.is_set_valued(vertex.label, attr):
                vertex.set_attribute(attr, {
                    f"{attr}-{rng.randint(0, 9)}"
                    for _i in range(rng.randint(0, 3))})
            else:
                vertex.set_attribute(attr, f"{attr}-{rng.randint(0, 9)}")
        budget = max(0, size_budget - counter[0])
        word = _random_word(structure.content(vertex.label), rng, budget) \
            if depth < max_depth \
            else list(shortest_word(structure.content(vertex.label)))
        for symbol in word:
            if symbol == ATOMIC:
                vertex.append(f"text-{counter[0]}")
                counter[0] += 1
                continue
            child = tree.create(symbol)
            vertex.append(child)
            counter[0] += 1
            fill(child, depth + 1)

    fill(tree.root, 0)
    return tree


# ---------------------------------------------------------------------------
# Checking / incremental-revalidation workloads
# ---------------------------------------------------------------------------


def random_check_sigma(structure: DTDStructure,
                       seed: "int | random.Random" = 0,
                       n_constraints: int = 8,
                       with_inverses: bool = True) -> list[Constraint]:
    """A random Σ *aligned to* ``structure``: every constraint mentions
    element types and attributes the structure declares (and that
    :func:`random_document` therefore populates).

    This is the Σ for document-*checking* workloads — unlike
    :func:`random_lu_sigma`, whose synthetic ``t0..tN`` vocabulary is
    meant for implication benchmarks and never matches a generated
    document.  The mix covers unary keys, unary and set-valued foreign
    keys, multi-attribute keys/foreign keys and (optionally) inverses,
    i.e. every evaluator family of the checker.
    """
    rng = _rng(seed)
    singles: dict[str, list[Field]] = {}
    setvs: dict[str, list[Field]] = {}
    for label in sorted(structure.element_types):
        for attr in sorted(structure.attributes(label)):
            bucket = setvs if structure.is_set_valued(label, attr) \
                else singles
            bucket.setdefault(label, []).append(Field(attr))
    keyed = sorted(singles)
    if not keyed:
        return []
    sigma: list[Constraint] = []
    keys: dict[str, Field] = {}
    for label in keyed:
        keys[label] = rng.choice(singles[label])
        sigma.append(UnaryKey(label, keys[label]))
    while len(sigma) < n_constraints:
        roll = rng.random()
        src = rng.choice(keyed)
        dst = rng.choice(keyed)
        if roll < 0.35:
            sigma.append(UnaryForeignKey(src, rng.choice(singles[src]),
                                         dst, keys[dst]))
        elif roll < 0.55 and src in setvs:
            sigma.append(SetValuedForeignKey(src, rng.choice(setvs[src]),
                                             dst, keys[dst]))
        elif roll < 0.75 and len(singles[src]) >= 2:
            width = rng.randint(1, min(2, len(singles[src])))
            sigma.append(Key(src, tuple(rng.sample(
                sorted(singles[src], key=str), width))))
        elif roll < 0.9 and singles.get(dst):
            width = min(2, len(singles[src]), len(singles[dst]))
            if width == 0:
                continue
            sigma.append(ForeignKey(
                src, tuple(rng.sample(sorted(singles[src], key=str), width)),
                dst, tuple(rng.sample(sorted(singles[dst], key=str), width))))
        elif with_inverses and src != dst \
                and src in setvs and dst in setvs:
            sigma.append(Inverse(src, keys[src], rng.choice(setvs[src]),
                                 dst, keys[dst], rng.choice(setvs[dst])))
    return sigma


def random_bulk_document(structure: DTDStructure,
                         seed: "int | random.Random" = 0,
                         n_vertices: int = 10000,
                         value_pool: int = 100) -> DataTree:
    """A large random document for checking workloads: exactly
    ``n_vertices`` vertices with declared labels and fully populated
    attributes, attached at random parents.

    Unlike :func:`random_document` this does *not* respect content
    models — ``G ⊨ Σ`` never reads them, and content-model-respecting
    generation cannot reach arbitrary sizes for every random structure
    (optional/short content keeps documents small regardless of budget).
    Use it to scale the constraint-checking and incremental benchmarks
    (E13/E16); use :func:`random_document` when structural validity
    matters.
    """
    rng = _rng(seed)
    labels = sorted(structure.element_types)
    tree = DataTree(structure.root)

    def populate(v: Vertex) -> None:
        for attr in sorted(structure.attributes(v.label)):
            if structure.is_set_valued(v.label, attr):
                v.set_attribute(attr, {
                    f"{attr}-{rng.randint(0, value_pool - 1)}"
                    for _i in range(rng.randint(0, 3))})
            else:
                v.set_attribute(attr,
                                f"{attr}-{rng.randint(0, value_pool - 1)}")

    populate(tree.root)
    attached = [tree.root]
    while len(attached) < n_vertices:
        parent = attached[rng.randint(0, len(attached) - 1)]
        child = tree.create_under(parent, rng.choice(labels))
        populate(child)
        attached.append(child)
    return tree


def library_schema():
    """The library ``DTD^C`` shared by the incremental (E16) and corpus
    (E18) workloads: ``library (entry*, ref*)`` where each ``entry``
    carries a unary key ``isbn`` and a composite key ``(isbn, shelf)``,
    and each ``ref.to`` is a foreign key into ``entry.isbn``."""
    from repro.dtd.dtdc import DTDC

    s = DTDStructure("library")
    s.define_element("library", "(entry*, ref*)")
    s.define_element("entry", "(#PCDATA)?")
    s.define_element("ref", "EMPTY")
    s.define_attribute("entry", "isbn")
    s.define_attribute("entry", "shelf")
    s.define_attribute("ref", "to")
    s.check()
    sigma: list[Constraint] = [
        UnaryKey("entry", Field("isbn")),
        Key("entry", (Field("isbn"), Field("shelf"))),
        UnaryForeignKey("ref", Field("to"), "entry", Field("isbn")),
    ]
    return DTDC(s, sigma)


def incremental_session_workload(n_vertices: int = 10000,
                                 seed: "int | random.Random" = 0
                                 ) -> tuple[DataTree, list[Constraint],
                                            DTDStructure]:
    """The E16 workload: a *valid* n-vertex library document plus its Σ.

    Half the vertices are ``entry`` elements with unique ``isbn`` keys,
    half are ``ref`` elements whose ``to`` attribute targets an existing
    entry, so Σ (a unary key, a composite key and a foreign key) holds
    initially and a single update perturbs at most a handful of
    violations.  This is the production shape the incremental engine is
    for — steady mutating traffic on a mostly-valid document — as
    opposed to :func:`random_bulk_document`, whose small value pools
    violate Σ everywhere (there a revalidation is dominated by *report
    size*, which batch and incremental checking pay alike).

    Returns ``(tree, sigma, structure)``.
    """
    rng = _rng(seed)
    dtd = library_schema()
    s = dtd.structure
    sigma = list(dtd.constraints)
    n_entries = max(1, (n_vertices - 1) // 2)
    n_refs = max(1, n_vertices - 1 - n_entries)
    tree = DataTree("library")
    for i in range(n_entries):
        entry = tree.create_under(tree.root, "entry")
        entry.set_attribute("isbn", f"isbn-{i}")
        entry.set_attribute("shelf", f"shelf-{i % 97}")
    for _j in range(n_refs):
        ref = tree.create_under(tree.root, "ref")
        ref.set_attribute("to", f"isbn-{rng.randint(0, n_entries - 1)}")
    return tree, sigma, s


def random_corpus(n_docs: int = 100, doc_vertices: int = 60,
                  invalid_fraction: float = 0.2,
                  seed: "int | random.Random" = 0):
    """The E18 workload: one library ``DTD^C`` plus ``n_docs``
    independent documents, ``invalid_fraction`` of which carry exactly
    one seeded violation (a dangling ``ref.to`` or a duplicated
    ``entry.isbn``, drawn at random).

    Each document is a :func:`library_schema`-shaped library of about
    ``doc_vertices`` vertices (half entries, half refs) with
    document-local isbn values, so corpus documents are independent —
    exactly the shape that makes Definition 2.4 validation
    embarrassingly parallel.  All randomness flows from ``seed``.

    Returns ``(dtd, docs)`` where ``docs`` is a list of
    :class:`~repro.datamodel.tree.DataTree`.
    """
    if not 0.0 <= invalid_fraction <= 1.0:
        raise ValueError("invalid_fraction must be in [0, 1]")
    rng = _rng(seed)
    dtd = library_schema()
    n_invalid = round(n_docs * invalid_fraction)
    corrupt = set(rng.sample(range(n_docs), n_invalid)) if n_docs else set()
    docs: list[DataTree] = []
    for d in range(n_docs):
        n_entries = max(2, (doc_vertices - 1) // 2)
        n_refs = max(1, doc_vertices - 1 - n_entries)
        tree = DataTree("library")
        for i in range(n_entries):
            entry = tree.create_under(tree.root, "entry")
            entry.set_attribute("isbn", f"isbn-{d}-{i}")
            entry.set_attribute("shelf", f"shelf-{i % 7}")
        refs = [tree.create_under(tree.root, "ref")
                for _j in range(n_refs)]
        for ref in refs:
            ref.set_attribute(
                "to", f"isbn-{d}-{rng.randint(0, n_entries - 1)}")
        if d in corrupt:
            if rng.random() < 0.5:
                rng.choice(refs).set_attribute("to", f"isbn-{d}-dangling")
            else:
                victim = rng.choice(tree.ext("entry")[1:])
                victim.set_attribute("isbn", f"isbn-{d}-0")
                victim.set_attribute("shelf", "shelf-dup")
        docs.append(tree)
    return dtd, docs


def registry_schema():
    """An ``L_id`` DTD^C: ``registry (person*, mention*)`` where
    ``person.pid`` is a DTD ID and ``mention.who`` an IDREF, with
    Σ = { ``person.id →_id person``, ``mention.who ⊆ person.id`` }.

    Unlike :func:`library_schema` (all ``L``/``L_u``, shard-local),
    both constraints here ride the ID/IDREF mechanism, so in a sharded
    corpus run both classify as merge-class
    (:mod:`repro.shard.locality`)."""
    from repro.constraints.lang_lid import IDConstraint, IDForeignKey
    from repro.dtd.dtdc import DTDC

    s = DTDStructure("registry")
    s.define_element("registry", "(person*, mention*)")
    s.define_element("person", "EMPTY")
    s.define_element("mention", "EMPTY")
    s.define_attribute("person", "pid", kind="ID")
    s.define_attribute("mention", "who", kind="IDREF")
    s.check()
    sigma: list[Constraint] = [
        IDConstraint("person"),
        IDForeignKey("mention", Field("who"), "person"),
    ]
    return DTDC(s, sigma)


def federated_corpus(n_docs: int = 12, doc_vertices: int = 30,
                     cross_dup_fraction: float = 0.0,
                     cross_ref_fraction: float = 0.0,
                     dangling_fraction: float = 0.0,
                     seed: "int | random.Random" = 0):
    """The E24 workload: ``n_docs`` :func:`registry_schema` documents
    whose interesting behavior only exists *between* documents.

    Every document is valid in isolation except where a corruption
    lands; the three corruption knobs each target one corpus-level
    phenomenon of the ``L_id`` merge fold:

    - ``cross_dup_fraction`` — documents that re-declare person
      ``p-0-0``'s ID.  Each such document stays perfectly valid on its
      own (one local owner), so the clash is invisible to every
      per-document verdict and *must* surface in the merge phase.
    - ``cross_ref_fraction`` — documents with a mention of another
      document's person.  Locally dangling (a per-document violation,
      identically reported by serial and sharded runs) but resolved
      corpus-wide: the merge fold counts it instead of re-reporting it.
    - ``dangling_fraction`` — mentions of a ghost ID no document owns:
      a per-document violation *and* a corpus-level finding.

    Returns ``(dtd, docs)`` with ``docs`` a list of
    :class:`~repro.datamodel.tree.DataTree`; all randomness flows from
    ``seed``.
    """
    if n_docs < 2:
        raise ValueError("federated_corpus needs n_docs >= 2")
    rng = _rng(seed)
    dtd = registry_schema()

    def pick(fraction: float, lo: int = 1) -> set:
        n = round((n_docs - lo) * fraction)
        return set(rng.sample(range(lo, n_docs), n)) if n else set()

    cross_dup = pick(cross_dup_fraction)
    cross_ref = pick(cross_ref_fraction, lo=0)
    dangling = pick(dangling_fraction, lo=0)
    docs: list[DataTree] = []
    for d in range(n_docs):
        n_persons = max(2, (doc_vertices - 1) // 2)
        n_mentions = max(1, doc_vertices - 1 - n_persons)
        tree = DataTree("registry")
        for i in range(n_persons):
            person = tree.create_under(tree.root, "person")
            person.set_attribute("pid", f"p-{d}-{i}")
        if d in cross_dup:
            extra = tree.create_under(tree.root, "person")
            extra.set_attribute("pid", "p-0-0")
        mentions = [tree.create_under(tree.root, "mention")
                    for _j in range(n_mentions)]
        for mention in mentions:
            mention.set_attribute(
                "who", f"p-{d}-{rng.randint(0, n_persons - 1)}")
        if d in cross_ref:
            rng.choice(mentions).set_attribute(
                "who", f"p-{(d + 1) % n_docs}-0")
        if d in dangling:
            rng.choice(mentions).set_attribute("who", f"ghost-{d}")
        docs.append(tree)
    return dtd, docs


def random_update_ops(tree: DataTree, structure: DTDStructure,
                      seed: "int | random.Random" = 0, n_ops: int = 20,
                      value_pool: int = 10):
    """Yield ``n_ops`` random update operations against the *live* tree,
    in the portable tuple form of
    :meth:`repro.incremental.DocumentSession.apply`:

    ``("set-attr", v, name, values)``, ``("del-attr", v, name)``,
    ``("insert", parent, label, attrs)``, ``("delete", v)``,
    ``("text", v, new_text)``.

    This is a *generator*: each op is drawn from the tree's state at the
    moment it is yielded, so ops must be applied (through a session)
    before the next one is pulled — otherwise a later op may reference a
    vertex an earlier, unapplied delete would have removed.  Values are
    drawn from the same small per-attribute pools as
    :func:`random_document`, so updates both create and repair
    violations.
    """
    rng = _rng(seed)
    labels = sorted(structure.element_types)

    def attrs_for(label: str) -> dict[str, "str | set[str]"]:
        out: dict[str, "str | set[str]"] = {}
        for attr in sorted(structure.attributes(label)):
            if structure.is_set_valued(label, attr):
                out[attr] = {f"{attr}-{rng.randint(0, value_pool - 1)}"
                             for _i in range(rng.randint(0, 3))}
            else:
                out[attr] = f"{attr}-{rng.randint(0, value_pool - 1)}"
        return out

    for i in range(n_ops):
        vertices = tree.vertices()
        v = rng.choice(vertices)
        roll = rng.random()
        if roll < 0.45 and structure.attributes(v.label):
            attr = rng.choice(sorted(structure.attributes(v.label)))
            yield ("set-attr", v, attr, attrs_for(v.label)[attr])
        elif roll < 0.55 and v.attributes:
            yield ("del-attr", v, rng.choice(sorted(v.attributes)))
        elif roll < 0.8:
            label = rng.choice(labels)
            yield ("insert", v, label, attrs_for(label))
        elif roll < 0.9 and v is not tree.root:
            yield ("delete", v)
        else:
            yield ("text", v, f"text-upd-{i}")


# ---------------------------------------------------------------------------
# L_u constraint sets and implication instances
# ---------------------------------------------------------------------------


def random_lu_sigma(seed: "int | random.Random" = 0, n_types: int = 5,
                    n_attrs: int = 3, n_constraints: int = 8,
                    primary: bool = False,
                    with_inverses: bool = True) -> list[Constraint]:
    """A well-formed random ``L_u`` Σ.

    Keys come first; foreign keys and set-valued foreign keys target
    stated keys; inverses designate stated keys.  With ``primary=True``
    each type gets at most one key attribute and is referenced through
    it only (the §3.2 restriction); single-/set-valued usage is kept
    consistent so :class:`~repro.implication.lu.LuEngine` accepts Σ.
    """
    rng = _rng(seed)
    types = [f"t{i}" for i in range(n_types)]
    single = {(t, Field(f"a{j}")) for t in types for j in range(n_attrs)}
    setv = {(t, Field(f"s{j}")) for t in types for j in range(2)}
    keys: dict[str, list[Field]] = {t: [] for t in types}
    sigma: list[Constraint] = []
    for t in types:
        n_keys = 1 if primary else rng.randint(1, 2)
        fields = rng.sample(sorted(
            [f for (tt, f) in single if tt == t], key=str), n_keys)
        for f in fields:
            keys[t].append(f)
            sigma.append(UnaryKey(t, f))
    while len(sigma) < n_constraints:
        kind = rng.random()
        src = rng.choice(types)
        dst = rng.choice(types)
        if primary:
            dst_key = keys[dst][0]
        else:
            dst_key = rng.choice(keys[dst])
        if kind < 0.45:
            field = rng.choice(sorted(
                [f for (tt, f) in single if tt == src], key=str))
            sigma.append(UnaryForeignKey(src, field, dst, dst_key))
        elif kind < 0.8 or not with_inverses:
            field = rng.choice(sorted(
                [f for (tt, f) in setv if tt == src], key=str))
            sigma.append(SetValuedForeignKey(src, field, dst, dst_key))
        else:
            if src == dst:
                continue
            f1 = rng.choice(sorted(
                [f for (tt, f) in setv if tt == src], key=str))
            f2 = rng.choice(sorted(
                [f for (tt, f) in setv if tt == dst], key=str))
            sigma.append(Inverse(src, keys[src][0], f1,
                                 dst, keys[dst][0], f2))
    # Usage consistency: drop constraints that use a field both ways.
    return _drop_arity_conflicts(sigma)


def _drop_arity_conflicts(sigma: list[Constraint]) -> list[Constraint]:
    from repro.implication.lu import _Arities

    out: list[Constraint] = []
    arities = _Arities()
    for c in sigma:
        try:
            arities.scan([c])
        except Exception:
            continue
        out.append(c)
    return out


def random_lu_implication_instance(seed: "int | random.Random" = 0,
                                   **kw) -> tuple[list[Constraint],
                                                  Constraint]:
    """A (Σ, φ) pair; φ is sometimes derivable, sometimes not."""
    rng = _rng(seed)
    sigma = random_lu_sigma(rng, **kw)
    keys = [c for c in sigma if isinstance(c, UnaryKey)]
    fks = [c for c in sigma if isinstance(c, UnaryForeignKey)]
    roll = rng.random()
    if roll < 0.3 and fks:
        base = rng.choice(fks)
        phi: Constraint = UnaryForeignKey(base.element, base.field,
                                          base.target, base.target_field)
    elif roll < 0.6 and keys:
        base_key = rng.choice(keys)
        other = rng.choice(keys)
        phi = UnaryForeignKey(base_key.element, base_key.field,
                              other.element, other.field)
    elif fks:
        base = rng.choice(fks)
        phi = UnaryForeignKey(base.target, base.target_field,
                              base.element, base.field)
    else:
        base_key = rng.choice(keys)
        phi = UnaryKey(base_key.element, base_key.field)
    return sigma, phi


def scaled_lu_chain(n: int) -> tuple[list[Constraint], Constraint]:
    """The linear-scaling workload for E4/E5: a length-``n`` foreign-key
    chain ``t0.f ⊆ t1.k ⊆ t2.k ⊆ ... ⊆ tn.k``; the query asks for the
    end-to-end composition (derivable via n-1 UFK-trans steps)."""
    sigma: list[Constraint] = []
    k = Field("k")
    for i in range(1, n + 1):
        sigma.append(UnaryKey(f"t{i}", k))
    sigma.append(UnaryForeignKey("t0", Field("f"), "t1", k))
    for i in range(1, n):
        sigma.append(UnaryForeignKey(f"t{i}", k, f"t{i + 1}", k))
    phi = UnaryForeignKey("t0", Field("f"), f"t{n}", k)
    return sigma, phi


# ---------------------------------------------------------------------------
# Primary L instances (multi-attribute)
# ---------------------------------------------------------------------------


def random_primary_l_instance(seed: "int | random.Random" = 0,
                              n_types: int = 6, key_width: int = 3,
                              n_fks: int = 8
                              ) -> tuple[list[Constraint], Constraint]:
    """A primary-key-restricted ``L`` instance: every type has one
    ``key_width``-wide primary key; foreign keys target primary keys
    through random alignments; the query composes a random chain."""
    rng = _rng(seed)
    types = [f"r{i}" for i in range(n_types)]
    key_fields = {t: tuple(Field(f"k{j}") for j in range(key_width))
                  for t in types}
    sigma: list[Constraint] = [Key(t, key_fields[t]) for t in types]
    chain = [types[0]]
    for _i in range(n_fks):
        src = rng.choice(types)
        dst = rng.choice(types)
        perm = rng.sample(range(key_width), key_width)
        src_fields = tuple(Field(f"f{j}") for j in range(key_width)) \
            if rng.random() < 0.5 else key_fields[src]
        sigma.append(ForeignKey(
            src, src_fields, dst,
            tuple(key_fields[dst][p] for p in perm)))
        chain.append(dst)
    start = sigma[n_types]  # the first foreign key
    phi = ForeignKey(start.element, start.fields, start.target,
                     start.target_fields)
    return sigma, phi


def scaled_primary_chain(n: int, width: int = 3
                         ) -> tuple[list[Constraint], Constraint]:
    """A deterministic chain of ``n`` ``width``-ary foreign keys with a
    rotating alignment; the query is the end-to-end composition."""
    key_fields = tuple(Field(f"k{j}") for j in range(width))
    sigma: list[Constraint] = [Key(f"r{i}", key_fields)
                               for i in range(n + 1)]
    for i in range(n):
        rotated = key_fields[i % width:] + key_fields[:i % width]
        sigma.append(ForeignKey(f"r{i}", key_fields, f"r{i + 1}", rotated))
    total = sum(range(n)) % width
    final = key_fields[total:] + key_fields[:total]
    phi = ForeignKey("r0", key_fields, f"r{n}", final)
    return sigma, phi


# ---------------------------------------------------------------------------
# L_id and path-constraint scaling workloads
# ---------------------------------------------------------------------------


def scaled_lid_chain(n: int):
    """An ``L_id`` Σ of size Θ(n): n types with ID constraints, IDREF
    links ``t_i.r ⊆ t_{i+1}.id`` and one inverse per adjacent pair.
    Returns ``(Σ, φ)`` with φ a derivable set-valued foreign key
    (Prop 3.1's linear-time closure is exercised end to end)."""
    from repro.constraints.lang_lid import (
        IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
    )

    sigma = []
    for i in range(n + 1):
        sigma.append(IDConstraint(f"t{i}"))
    for i in range(n):
        sigma.append(IDForeignKey(f"t{i}", Field("r"), f"t{i + 1}"))
        sigma.append(IDInverse(f"t{i}", Field("fwd"),
                               f"t{i + 1}", Field("back")))
    phi = IDSetValuedForeignKey(f"t{n - 1}", Field("fwd"), f"t{n}")
    return sigma, phi


def deep_chain_dtdc(n: int):
    """A DTD^C with an n-deep chain of *unique* sub-elements
    ``e0 > e1 > ... > en``, each carrying a key attribute — the §4
    key-path workload.  Returns ``(DTD^C, path_text)`` where the path
    navigates the full chain (a key path of e0)."""
    from repro.constraints.lang_lu import UnaryKey
    from repro.dtd.dtdc import DTDC
    from repro.dtd.structure import DTDStructure

    s = DTDStructure("e0")
    constraints = []
    for i in range(n + 1):
        content = f"(e{i + 1})" if i < n else "(#PCDATA)*"
        s.define_element(f"e{i}", content)
        s.define_attribute(f"e{i}", "k")
        constraints.append(UnaryKey(f"e{i}", Field("k")))
    path_text = ".".join(f"e{i}" for i in range(1, n + 1)) + ".k"
    return DTDC(s, constraints), path_text


# ---------------------------------------------------------------------------
# Witness-driven valid documents (the synthesis-backed generators)


def random_valid_document(dtd, seed: "int | random.Random" = 0,
                          size_budget: int = 40, max_rounds: int = 4):
    """A random document that validates against the ``DTD^C`` with
    **zero** violations — structure and Σ alike.

    Where :func:`random_document` realizes the content models but is
    deliberately riddled with constraint violations, this generator
    rides the witness-synthesis machinery: a randomized structurally
    valid skeleton (random content-model words up to ``size_budget``
    extra vertices, at least one element per constrained type), then
    the value chase of :mod:`repro.synthesis.values` to satisfy Σ, then
    verification — retrying with grown extensions when the chase asks
    for them.  Returns ``None`` when the schema admits no verified
    document (UNSAT or undecided corners); for schemas that
    :func:`repro.synthesis.check_satisfiability` calls SAT this is the
    unbounded valid-corpus source the equivalence suites fuzz with.
    """
    from repro.dtd.consistency import vacuous_types
    from repro.dtd.validate import validate
    from repro.synthesis.satisfiability import synthesize_witness
    from repro.synthesis.skeleton import SkeletonBuilder
    from repro.synthesis.values import assign_values

    rng = _rng(seed)
    try:
        vac = frozenset(vacuous_types(dtd))
    except Exception:
        vac = frozenset()
    builder = SkeletonBuilder(dtd.structure, excluded=vac)
    mult: dict[str, int] = {}
    for c in dtd.constraints:
        target = getattr(c, "target", None)
        for tau in (c.element, target):
            if isinstance(tau, str) and builder.realizable(tau):
                mult[tau] = max(mult.get(tau, 0), rng.randint(1, 3))
    floor = {tau: 1 for tau in mult}
    for _ in range(max_rounds):
        # The random multiplicities may be structurally unachievable (a
        # type occurring exactly once under the root cannot be tripled);
        # fall back through minimal-word and minimal-count builds before
        # concluding anything.
        tree = (builder.build(mult, rng=rng, budget=size_budget)
                or builder.build(mult)
                or builder.build(floor, rng=rng, budget=size_budget)
                or builder.build(floor))
        if tree is None:
            break
        hints = assign_values(tree, dtd)
        if validate(tree, dtd).ok:
            return tree
        grown = False
        for tau, n in hints.items():
            if builder.realizable(tau) and n > mult.get(tau, 0):
                mult[tau] = n
                grown = True
        if not grown:
            break
    # Randomized sizes can push the value chase's demands past what the
    # content models admit even though a smaller model exists; fall back
    # to the deterministic minimal witness before giving up.
    tree, _exercised, _rounds = synthesize_witness(dtd,
                                                   max_rounds=max_rounds)
    return tree


def random_satisfiable_dtdc(seed: "int | random.Random" = 0,
                            n_types: int = 5, n_constraints: int = 6,
                            attempts: int = 60):
    """A random ``DTD^C`` the satisfiability analysis proves SAT.

    Samples :func:`random_structure` + :func:`random_check_sigma` pairs
    until :func:`repro.synthesis.check_satisfiability` returns a
    *verified* SAT verdict — a synthesized witness exists, so
    :func:`random_valid_document` never comes back empty-handed on the
    result (ill-formed Σ samples are skipped).  All randomness flows
    from ``seed``, so the schema is reproducible.
    """
    from repro.dtd.dtdc import DTDC
    from repro.errors import ConstraintError
    from repro.synthesis import check_satisfiability

    rng = _rng(seed)
    for _ in range(attempts):
        s = rng.randrange(2**31)
        structure = random_structure(s, n_types=n_types)
        sigma = random_check_sigma(structure, s,
                                   n_constraints=n_constraints)
        try:
            dtd = DTDC(structure, tuple(sigma))
        except ConstraintError:
            continue
        report = check_satisfiability(dtd)
        if report.satisfiable and report.witness is not None:
            return dtd
    raise RuntimeError(  # pragma: no cover — SAT samples are common
        f"no satisfiable schema in {attempts} attempts from seed {seed}")
