"""The book running example (§1, §2.4, Figure 2).

``book_dtdc()`` is the ``DTD^C`` ``D = (S, Σ)`` of §2.4 with its three
``L_u`` constraints; ``book_document()`` is the data tree of Figure 2;
``book_xml()`` is the XML surface syntax from the introduction.
"""

from __future__ import annotations

from repro.datamodel.builder import TreeBuilder
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.constraints.parser import parse_constraints

BOOK_DTD_TEXT = """
<!ELEMENT book    (entry, author*, section*, ref)>
<!ELEMENT entry   (title, publisher)>
<!ATTLIST entry   isbn CDATA #REQUIRED>
<!ELEMENT section (title, (#PCDATA | section)*)>
<!ATTLIST section sid ID #REQUIRED>
<!ELEMENT ref     EMPTY>
<!ATTLIST ref     to IDREFS #REQUIRED>
<!ELEMENT author    (#PCDATA)>
<!ELEMENT title     (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
"""

BOOK_CONSTRAINTS_TEXT = """
entry.isbn -> entry
section.sid -> section
ref.to subS entry.isbn
"""


def book_dtdc() -> DTDC:
    """The §2.4 book ``DTD^C`` (constraints in ``L_u``).

    Built programmatically — identically parseable from
    :data:`BOOK_DTD_TEXT` via :func:`repro.xmlio.parse_dtd`, which the
    integration tests assert.
    """
    s = DTDStructure("book")
    s.define_element("book", "(entry, author*, section*, ref)")
    s.define_element("entry", "(title, publisher)")
    s.define_element("section", "(title, (S + section)*)")
    s.define_element("ref", "EMPTY")
    s.define_element("author", "S*")
    s.define_element("title", "S*")
    s.define_element("publisher", "S*")
    s.define_attribute("entry", "isbn")
    s.define_attribute("section", "sid", kind="ID")
    s.define_attribute("ref", "to", set_valued=True, kind="IDREF")
    constraints = parse_constraints(BOOK_CONSTRAINTS_TEXT, s)
    return DTDC(s, constraints)


def book_document() -> DataTree:
    """The Figure 2 document: one book with nested sections and a
    bibliography reference back to its own entry."""
    b = TreeBuilder("book")
    with b.element("entry", isbn="1-55860-622-X"):
        b.leaf("title", "Data on the Web")
        b.leaf("publisher", "Morgan Kaufmann")
    b.leaf("author", "Serge Abiteboul")
    b.leaf("author", "Peter Buneman")
    b.leaf("author", "Dan Suciu")
    with b.element("section", sid="intro"):
        b.leaf("title", "Introduction")
        b.text("Data exchange on the Web ...")
        with b.element("section", sid="audience"):
            b.leaf("title", "Audience")
            b.text("Database researchers and practitioners.")
    with b.element("section", sid="syntax"):
        b.leaf("title", "A Syntax For Data")
        b.text("XML is a concrete syntax for annotated trees.")
    b.leaf("ref", to=["1-55860-622-X"])
    return b.tree


def book_xml() -> str:
    """The introduction's XML document, as text."""
    return """<book>
  <entry isbn="1-55860-622-X">
    <title>Data on the Web</title>
    <publisher>Morgan Kaufmann</publisher>
  </entry>
  <author>Serge Abiteboul</author>
  <author>Peter Buneman</author>
  <author>Dan Suciu</author>
  <section sid="intro">
    <title>Introduction</title>Data exchange on the Web ...<section sid="audience"><title>Audience</title>Database researchers and practitioners.</section>
  </section>
  <section sid="syntax">
    <title>A Syntax For Data</title>XML is a concrete syntax for annotated trees.
  </section>
  <ref to="1-55860-622-X"/>
</book>
"""


def scaled_book_document(n_sections: int = 50, depth: int = 3,
                         n_authors: int = 5) -> DataTree:
    """A large, *constraint-valid* book document for the validation
    benchmarks (E1/E13): ``n_sections`` top-level sections each nesting
    ``depth`` sub-sections, with unique sids and a reference list that
    points at the entry's isbn only."""
    b = TreeBuilder("book")
    isbn = "1-55860-622-X"
    with b.element("entry", isbn=isbn):
        b.leaf("title", "Data on the Web")
        b.leaf("publisher", "Morgan Kaufmann")
    for a in range(n_authors):
        b.leaf("author", f"Author {a}")
    counter = [0]

    def section(level: int) -> None:
        sid = f"s{counter[0]}"
        counter[0] += 1
        with b.element("section", sid=sid):
            b.leaf("title", f"Section {sid}")
            b.text(f"Content of {sid}.")
            if level > 0:
                section(level - 1)

    for _i in range(n_sections):
        section(depth)
    b.leaf("ref", to=[isbn])
    return b.tree
