"""Workloads: the paper's running examples plus seeded random generators.

- :mod:`repro.workloads.book`      — the book ``DTD^C`` (``L_u``) and
  the Figure 2 document;
- :mod:`repro.workloads.persondept` — the person/dept object database,
  its ``L_id`` export ``D_o`` and a populated store;
- :mod:`repro.workloads.publisher` — the publisher/editor relational
  schema and its ``L`` constraints;
- :mod:`repro.workloads.generators` — random DTD structures, random
  valid documents (content models realized by automaton walks), random
  constraint sets and implication-problem instances, all seeded for
  reproducibility.
"""

from repro.workloads.book import book_document, book_dtdc, book_xml
from repro.workloads.persondept import (
    person_dept_schema, person_dept_store, person_dept_export,
)
from repro.workloads.publisher import (
    publisher_constraints, publisher_database, publisher_instance,
)
from repro.workloads.school import school_document, school_dtdc
from repro.workloads.generators import (
    federated_corpus, incremental_session_workload, library_schema,
    random_bulk_document, random_check_sigma, random_corpus,
    random_document, registry_schema,
    random_lu_implication_instance, random_lu_sigma,
    random_primary_l_instance, random_satisfiable_dtdc,
    random_structure, random_update_ops, random_valid_document,
    scaled_lu_chain,
)

__all__ = [
    "book_document", "book_dtdc", "book_xml",
    "person_dept_schema", "person_dept_store", "person_dept_export",
    "publisher_constraints", "publisher_database", "publisher_instance",
    "school_document", "school_dtdc",
    "federated_corpus", "incremental_session_workload", "library_schema",
    "random_bulk_document", "random_check_sigma", "random_corpus",
    "random_document", "registry_schema",
    "random_lu_implication_instance", "random_lu_sigma",
    "random_primary_l_instance", "random_satisfiable_dtdc",
    "random_structure", "random_update_ops", "random_valid_document",
    "scaled_lu_chain",
]
