"""The publisher/editor relational example (§1, §2.4, language ``L``).

``(pname, country)`` is a key of ``publisher``, ``name`` is a key of
``editor``, and ``(pname, country)`` in ``editor`` is a foreign key
referencing ``publisher`` — the paper's motivation for multi-attribute
constraints over sub-elements.
"""

from __future__ import annotations

from repro.relational.keys import RelationalForeignKey, RelationalKey
from repro.relational.schema import Database, Instance, RelationSchema


def publisher_database() -> Database:
    """The publisher/editor database schema of §1."""
    return Database([
        RelationSchema("publisher", ("pname", "country", "address")),
        RelationSchema("editor", ("name", "pname", "country")),
    ])


def publisher_constraints() -> list:
    """Σ: the two keys and the composite foreign key."""
    return [
        RelationalKey("publisher", frozenset(("pname", "country"))),
        RelationalKey("editor", frozenset(("name",))),
        RelationalForeignKey("editor", ("pname", "country"),
                             "publisher", ("pname", "country")),
    ]


def publisher_instance(n_publishers: int = 3,
                       editors_per_publisher: int = 2) -> Instance:
    """A consistent instance (parameterized for benchmarks)."""
    instance = Instance(publisher_database())
    countries = ("US", "UK", "FR", "DE", "JP")
    for i in range(n_publishers):
        country = countries[i % len(countries)]
        instance.add_row("publisher", {
            "pname": f"Publisher {i}",
            "country": country,
            "address": f"{i} Print House Road",
        })
        for j in range(editors_per_publisher):
            instance.add_row("editor", {
                "name": f"Editor {i}-{j}",
                "pname": f"Publisher {i}",
                "country": country,
            })
    return instance
