"""The student/teacher/course example of §4.2 (Prop 4.3), as a workload.

Two basic ``L_id`` inverse constraints::

    student.taking   ⇌ course.taken_by
    teacher.teaching ⇌ course.taught_by

imply the composed path inverse
``student.taking.taught_by ⇌ teacher.teaching.taken_by``.
:func:`school_document` generates inverse-consistent documents of any
size (seeded), used by the §4 property tests and benchmarks.
"""

from __future__ import annotations

import random

from repro.constraints.parser import parse_constraints
from repro.datamodel.builder import TreeBuilder
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure


def school_dtdc() -> DTDC:
    """The school ``DTD^C`` with its two basic inverse constraints."""
    s = DTDStructure("school")
    s.define_element("school", "(student*, teacher*, course*)")
    for t in ("student", "teacher", "course"):
        s.define_element(t, "EMPTY")
        s.define_attribute(t, "oid", kind="ID")
    s.define_attribute("student", "taking", set_valued=True, kind="IDREF")
    s.define_attribute("teacher", "teaching", set_valued=True,
                       kind="IDREF")
    s.define_attribute("course", "taken_by", set_valued=True,
                       kind="IDREF")
    s.define_attribute("course", "taught_by", set_valued=True,
                       kind="IDREF")
    return DTDC(s, parse_constraints("""
        student.oid ->id student
        teacher.oid ->id teacher
        course.oid ->id course
        student.taking inv course.taken_by
        teacher.teaching inv course.taught_by
    """, s))


def school_document(n_students: int = 3, n_teachers: int = 2,
                    n_courses: int = 3, density: float = 0.4,
                    seed: "int | random.Random" = 0) -> DataTree:
    """A random *valid* school document: enrollment and teaching
    relations are generated as sets of pairs and written symmetrically,
    so every inverse constraint holds by construction."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    taking = {(s, c) for s in range(n_students)
              for c in range(n_courses) if rng.random() < density}
    teaching = {(t, c) for t in range(n_teachers)
                for c in range(n_courses) if rng.random() < density}
    b = TreeBuilder("school")
    for s in range(n_students):
        b.leaf("student", oid=f"s{s}",
               taking=[f"c{c}" for (ss, c) in taking if ss == s])
    for t in range(n_teachers):
        b.leaf("teacher", oid=f"t{t}",
               teaching=[f"c{c}" for (tt, c) in teaching if tt == t])
    for c in range(n_courses):
        b.leaf("course", oid=f"c{c}",
               taken_by=[f"s{s}" for (s, cc) in taking if cc == c],
               taught_by=[f"t{t}" for (t, cc) in teaching if cc == c])
    return b.tree
