"""The person/dept object-database example (§1, §2.4 ``D_o``)."""

from __future__ import annotations

from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.oodb.export import export_store
from repro.oodb.instance import ObjectStore
from repro.oodb.odl import OdlClass, OdlRelationship, OdlSchema


def person_dept_schema() -> OdlSchema:
    """The ODL schema of §1: Person (key name) with ``in_dept`` inverse
    to Dept.has_staff; Dept (key dname) with a ``manager``."""
    return OdlSchema([
        OdlClass(
            name="person",
            attributes=("name", "address"),
            keys=(frozenset(("name",)),),
            relationships=(
                OdlRelationship("in_dept", "dept", many=True,
                                inverse="has_staff"),
            ),
        ),
        OdlClass(
            name="dept",
            attributes=("dname",),
            keys=(frozenset(("dname",)),),
            relationships=(
                OdlRelationship("manager", "person"),
                OdlRelationship("has_staff", "person", many=True,
                                inverse="in_dept"),
            ),
        ),
    ])


def person_dept_store(n_depts: int = 2,
                      people_per_dept: int = 3) -> ObjectStore:
    """A consistent populated store (parameterized for benchmarks)."""
    store = ObjectStore(person_dept_schema())
    for d in range(n_depts):
        store.create("dept", f"d{d}", {"dname": f"Department {d}"})
    for d in range(n_depts):
        for p in range(people_per_dept):
            oid = f"p{d}_{p}"
            store.create("person", oid, {
                "name": f"Person {d}-{p}",
                "address": f"{p} Example Street, City {d}",
            })
            store.link_inverse(oid, "in_dept", f"d{d}")
    # Managers: the first person of each department.
    for d in range(n_depts):
        dept = store.get(f"d{d}")
        dept.references["manager"] = (f"p{d}_0",)
    return store


def person_dept_export(n_depts: int = 2, people_per_dept: int = 3
                       ) -> tuple[DTDC, DataTree]:
    """The ``D_o`` export of §2.4 plus a conforming document."""
    return export_store(person_dept_store(n_depts, people_per_dept))
