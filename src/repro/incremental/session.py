"""Incremental revalidation sessions over mutable documents.

A :class:`DocumentSession` wraps a :class:`~repro.datamodel.tree.DataTree`
together with a constraint set Σ and keeps the checked state *live* under
updates: every mutation made through the session API is recorded, and
:meth:`DocumentSession.revalidate` folds the accumulated delta into

- the tree-wide :class:`~repro.datamodel.indexes.AttributeIndex` (vertex
  extensions, value owners, document-wide ID owners), and
- the per-constraint residual state of the
  :mod:`repro.constraints.evaluators` objects (key-value multiplicity
  counts, foreign-key reference counts, inverse pairings),

in time proportional to the delta and its incident references — not to
the document or to Σ.  After any update sequence the reported violations
are exactly what a from-scratch
:func:`repro.constraints.checker.check` would produce; the property
tests replay random edit scripts to assert this equivalence at every
step, and experiment E16 (``benchmarks/bench_incremental.py``,
``repro-xic bench-incremental``) measures the resulting speedup.

Typical use::

    from repro import Validator, book_dtdc, book_document

    session = Validator(book_dtdc()).session(book_document())
    assert session.revalidate().ok
    ref = session.tree.ext("ref")[0]
    session.set_attribute(ref, "to", ["no-such-isbn"])
    assert not session.revalidate().ok          # O(|update|), not O(|doc|)

Mutations applied to the tree *behind the session's back* (calling the
raw ``Vertex`` API directly) are not tracked; either route all updates
through the session or call :meth:`DocumentSession.rebuild` afterwards.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

from repro.constraints.base import Constraint
from repro.constraints.evaluators import Delta, evaluator_for
from repro.constraints.violations import ViolationReport
from repro.datamodel.indexes import AttributeIndex
from repro.datamodel.tree import DataTree, Vertex
from repro.errors import DataModelError, ReproError
from repro.obs import NULL_OBS

if TYPE_CHECKING:
    from repro.dtd.dtdc import DTDC
    from repro.dtd.structure import DTDStructure

#: An update operation in portable tuple form, as produced by
#: :func:`repro.workloads.generators.random_update_ops` and consumed by
#: :meth:`DocumentSession.apply`.
UpdateOp = tuple


class DocumentSession:
    """A mutable document plus incrementally maintained constraint state.

    Parameters
    ----------
    tree:
        The document; the session takes over change tracking but not
        ownership — the tree object stays usable everywhere.
    constraints:
        Σ, the basic XML constraints to maintain.
    structure:
        The DTD structure, needed to resolve ``tau.id`` for ``L_id``
        constraints (and for :meth:`validate`).
    obs:
        Optional :class:`repro.obs.Observability` handle.  When enabled,
        construction opens a ``session.build`` span, every
        :meth:`revalidate` a ``session.revalidate`` span, and the
        session maintains ``session_updates_applied`` /
        ``session_flushes`` counters plus a ``session_delta_vertices``
        histogram of flushed delta sizes.
    """

    def __init__(self, tree: DataTree,
                 constraints: Iterable[Constraint] = (),
                 structure: "DTDStructure | None" = None,
                 obs=None):
        self.obs = obs = obs or NULL_OBS
        self._count = bool(obs)
        self._ops_counted = 0
        self._c_updates = obs.counter(
            "session_updates_applied",
            help="update operations recorded by sessions")
        self._c_flushes = obs.counter(
            "session_flushes",
            help="delta flushes (revalidations with pending work)")
        self._h_delta = obs.histogram(
            "session_delta_vertices",
            help="vertices per flushed delta",
            buckets=(1, 2, 4, 8, 16, 64, 256, 1024))
        self.tree = tree
        self.constraints = tuple(constraints)
        self.structure = structure
        self._id_map = (structure.id_attribute_map()
                        if structure is not None else {})
        with obs.span("session.build", constraints=len(self.constraints)):
            self.index = AttributeIndex(tree, id_attributes=self._id_map,
                                        obs=obs)
            self._evaluators = [
                evaluator_for(c, self.index, self._id_map, obs=obs)
                for c in self.constraints]
            for evaluator in self._evaluators:
                evaluator.full()
        self._added: dict[int, Vertex] = {}
        self._removed: dict[int, Vertex] = {}
        self._touched: dict[int, Vertex] = {}
        #: number of update operations recorded since creation
        self.updates_applied = 0
        #: number of delta flushes (revalidations that had work to do)
        self.flushes = 0

    @classmethod
    def for_document(cls, tree: DataTree, dtd: "DTDC",
                     obs=None) -> "DocumentSession":
        """A session maintaining ``dtd``'s Σ over ``tree``."""
        return cls(tree, dtd.constraints, dtd.structure, obs=obs)

    # -- update API -----------------------------------------------------------

    def set_attribute(self, vertex: Vertex, name: str,
                      values: "str | Iterable[str]") -> None:
        """Set ``att(vertex, name)`` (a bare string is a singleton set)."""
        self._require_attached(vertex)
        vertex.set_attribute(name, values)
        self._mark_touched(vertex)
        self.updates_applied += 1

    def remove_attribute(self, vertex: Vertex, name: str) -> None:
        """Undefine ``att(vertex, name)``; missing attributes are ignored."""
        self._require_attached(vertex)
        vertex.del_attribute(name)
        self._mark_touched(vertex)
        self.updates_applied += 1

    def insert_subtree(self, parent: Vertex, subtree: Vertex) -> Vertex:
        """Attach a detached vertex (with its whole subtree) under
        ``parent`` and return it.

        The subtree must belong to the session's tree (create it with
        ``session.tree.create`` or detach it earlier in this session).
        """
        self._require_attached(parent)
        parent.append(subtree)
        for v in subtree.subtree():
            self._mark_added(v)
        # The parent's §3.4 sub-element field values may have changed.
        self._mark_touched(parent)
        self.updates_applied += 1
        return subtree

    def insert_element(self, parent: Vertex, label: str,
                       attrs: Mapping[str, "str | Iterable[str]"]
                       | None = None,
                       text: str | None = None) -> Vertex:
        """Create a fresh element, populate it, attach it under
        ``parent`` and return it."""
        v = self.tree.create(label)
        for name, values in (attrs or {}).items():
            v.set_attribute(name, values)
        if text is not None:
            v.append(text)
        return self.insert_subtree(parent, v)

    def delete_subtree(self, vertex: Vertex) -> Vertex:
        """Detach ``vertex`` (with its whole subtree) and return it."""
        self._require_attached(vertex)
        if vertex.parent is None:
            raise DataModelError("cannot delete the document root")
        parent = vertex.parent
        vertex.detach()
        for v in vertex.subtree():
            self._mark_removed(v)
        self._mark_touched(parent)
        self.updates_applied += 1
        return vertex

    def replace_text(self, vertex: Vertex, text: str) -> None:
        """Replace the *direct* string children of ``vertex`` by ``text``
        (empty string: remove all text)."""
        self._require_attached(vertex)
        for child in list(vertex.children):
            if isinstance(child, str):
                vertex.remove_child(child)
        if text:
            vertex.append(text)
        # Text feeds the parent's sub-element field named vertex.label.
        if vertex.parent is not None:
            self._mark_touched(vertex.parent)
        self.updates_applied += 1

    def apply(self, op: UpdateOp) -> "Vertex | None":
        """Apply one portable update op (see
        :func:`repro.workloads.generators.random_update_ops`):

        ``("set-attr", v, name, values)``, ``("del-attr", v, name)``,
        ``("insert", parent, label, attrs)``, ``("delete", v)``,
        ``("text", v, new_text)``.
        """
        kind = op[0]
        if kind == "set-attr":
            self.set_attribute(op[1], op[2], op[3])
        elif kind == "del-attr":
            self.remove_attribute(op[1], op[2])
        elif kind == "insert":
            return self.insert_element(op[1], op[2], op[3])
        elif kind == "delete":
            return self.delete_subtree(op[1])
        elif kind == "text":
            self.replace_text(op[1], op[2])
        else:
            raise ReproError(f"unknown update op {kind!r}")
        return None

    # -- revalidation ---------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        """Vertices awaiting their delta flush (0 right after
        :meth:`revalidate`)."""
        return len(self._added) + len(self._removed) + len(self._touched)

    def revalidate(self) -> ViolationReport:
        """Fold pending updates into the maintained state and report the
        current violations of Σ.

        Cost: O(|pending delta| + |current violations|) — independent of
        document size.  With no pending updates this only re-emits the
        maintained violation state.
        """
        if not self._count:
            self._flush()
            report = ViolationReport()
            for evaluator in self._evaluators:
                evaluator.emit(report)
            return report
        new_ops = self.updates_applied - self._ops_counted
        if new_ops:
            self._c_updates.add(new_ops)
            self._ops_counted = self.updates_applied
        with self.obs.span("session.revalidate",
                           delta=self.pending_updates) as span:
            self._flush()
            report = ViolationReport()
            for evaluator in self._evaluators:
                evaluator.emit(report)
            span.set(violations=len(report))
        return report

    def validate(self) -> ViolationReport:
        """Full Definition 2.4 validity: a fresh structural pass (this
        part is O(|doc|)) merged with the maintained ``G ⊨ Σ`` state."""
        if self.structure is None:
            raise ReproError("validate() needs the session's structure; "
                             "construct with structure= or for_document()")
        from repro.dtd.validate import validate_structure

        report: ViolationReport = validate_structure(
            self.tree, self.structure,
            obs=self.obs if self._count else None)
        report.merge(self.revalidate())
        return report

    def rebuild(self) -> None:
        """Drop all maintained state and rebuild from the current tree.

        An escape hatch after out-of-band mutations; costs a full pass."""
        self._added.clear()
        self._removed.clear()
        self._touched.clear()
        with self.obs.span("session.rebuild"):
            self.index = AttributeIndex(self.tree,
                                        id_attributes=self._id_map,
                                        obs=self.obs)
            self._evaluators = [
                evaluator_for(c, self.index, self._id_map, obs=self.obs)
                for c in self.constraints]
            for evaluator in self._evaluators:
                evaluator.full()

    def _flush(self) -> None:
        if not (self._added or self._removed or self._touched):
            return
        delta = Delta(added=list(self._added.values()),
                      removed=list(self._removed.values()),
                      touched=list(self._touched.values()))
        if self._count:
            self._c_flushes.inc()
            self._h_delta.observe(len(delta.added) + len(delta.removed)
                                  + len(delta.touched))
        id_values: set[str] = set()
        for v in delta.removed:
            id_values |= self.index.unindex_vertex(v)
        for v in delta.added:
            id_values |= self.index.index_vertex(v)
        for v in delta.touched:
            id_values |= self.index.refresh_vertex(v)
        delta.id_values = id_values
        self.index.sync_epoch()
        for evaluator in self._evaluators:
            evaluator.apply_delta(delta)
        self._added.clear()
        self._removed.clear()
        self._touched.clear()
        self.flushes += 1

    # -- delta bookkeeping ----------------------------------------------------

    def _mark_touched(self, v: Vertex) -> None:
        if v.vid not in self._added:
            self._touched[v.vid] = v

    def _mark_added(self, v: Vertex) -> None:
        if self._removed.pop(v.vid, None) is not None:
            # Removed and re-attached within one batch: still indexed,
            # so a refresh suffices.
            self._touched[v.vid] = v
        else:
            self._added[v.vid] = v

    def _mark_removed(self, v: Vertex) -> None:
        if self._added.pop(v.vid, None) is not None:
            return  # added and removed within one batch: net nothing
        self._touched.pop(v.vid, None)
        self._removed[v.vid] = v

    def _require_attached(self, v: Vertex) -> None:
        if v.owner is not self.tree:
            raise DataModelError(
                f"vertex #{v.vid} belongs to a different tree")
        if v.path_from_root()[0] is not self.tree.root:
            raise DataModelError(
                f"vertex #{v.vid} ({v.label!r}) is not attached to the "
                "document")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<DocumentSession doc={self.tree.root.label!r} "
                f"|Sigma|={len(self.constraints)} "
                f"updates={self.updates_applied}>")
