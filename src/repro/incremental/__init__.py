"""Incremental constraint revalidation under document updates.

See :mod:`repro.incremental.session` for the :class:`DocumentSession`
API and :mod:`repro.constraints.evaluators` for the per-constraint
residual state it maintains.
"""

from repro.incremental.session import DocumentSession, UpdateOp

__all__ = ["DocumentSession", "UpdateOp"]
