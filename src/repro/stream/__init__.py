"""Streaming single-pass validation.

Compile ``DTD^C`` once (:func:`compile_plan`), then validate any number
of documents straight from the token stream in O(depth + |Σ| residual
state) memory::

    from repro.stream import StreamValidator, compile_plan

    plan = compile_plan(dtd)                 # once per schema
    report = StreamValidator(plan).validate_text(xml_text)

Reports are byte-identical (``to_json()``) to the batch path
``validate(parse_document(text, dtd.structure), dtd)``; see
:mod:`repro.stream.validator` for the ordering argument.  The friendly
entry point is ``repro.Validator(dtd).check_stream(path_or_text)``.
"""

from repro.stream.plan import LabelPlan, StreamPlan, compile_plan
from repro.stream.validator import StreamIndex, StreamValidator, StreamVertex

__all__ = [
    "LabelPlan",
    "StreamIndex",
    "StreamPlan",
    "StreamValidator",
    "StreamVertex",
    "compile_plan",
]
