"""Compile ``DTD^C = (S, Σ)`` into a per-element-label dispatch plan.

Batch validation (Definition 2.4) walks a materialized tree three times:
once to build the :class:`~repro.datamodel.indexes.AttributeIndex`, once
for the structural checks, and once per constraint in Σ.  The streaming
validator makes a single pass over the token stream instead, and this
module prepares everything that single pass needs to dispatch in O(1)
per event:

- per declared element type: the (lazily-determinized) content-model
  :class:`~repro.regexlang.automaton.Matcher`, the declared attribute
  set, and the set-valued attribute names — the structural half of
  Definition 2.4;
- per element label: the tuple of constraint indices whose evaluators
  want to see vertices of that label — the Σ half, expressed against
  the *existing* :class:`~repro.constraints.evaluators.ConstraintEvaluator`
  machinery so streamed closes run through exactly the same ``add()``
  path as an incremental insertion;
- the *relevant* label set (labels any evaluator or declared-ID
  bookkeeping cares about): only these vertices are retained past their
  close tag, which is what caps memory at O(depth + |Σ| residual state);
- which child labels act as §3.4 sub-element fields of which parents,
  so the validator knows whose text to capture.

A plan is compiled once per schema and is picklable: the matcher table
is dropped on ``__getstate__`` and rebuilt lazily from the schema in the
receiving process (the corpus coordinator compiles once and ships the
plan to its pool workers via ``initargs``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.constraints.evaluators import (
    ForeignKeyEvaluator,
    IDConstraintEvaluator,
    InverseEvaluator,
    KeyEvaluator,
    StaticViolationEvaluator,
    ValueForeignKeyEvaluator,
    evaluator_for,
)
from repro.regexlang.automaton import Matcher, matcher_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.constraints.base import Constraint, Field
    from repro.dtd.schema import DTDC


class LabelPlan:
    """Everything the streaming pass needs to know about one element type."""

    __slots__ = ("label", "declared_attrs", "set_valued", "evaluators",
                 "elem_fields")

    def __init__(self, label: str, declared_attrs: frozenset[str],
                 set_valued: frozenset[str], evaluators: tuple[int, ...],
                 elem_fields: frozenset[str]):
        self.label = label
        #: declared attribute names, in the exact ``structure.attributes``
        #: order the batch validator iterates for missing-attribute checks
        self.declared_attrs = declared_attrs
        self.set_valued = set_valued
        #: indices into ``plan.constraints`` interested in this label
        self.evaluators = evaluators
        #: child labels whose text is a §3.4 sub-element field of this type
        self.elem_fields = elem_fields


def _field_sites(ev) -> list[tuple[str, "Field"]]:
    """The (owner label, field) pairs an evaluator reads values through."""
    if isinstance(ev, KeyEvaluator):
        return [(ev.element, f) for f in ev.fields]
    if isinstance(ev, ForeignKeyEvaluator):
        return ([(ev.element, f) for f in ev.fields]
                + [(ev.target, f) for f in ev.target_fields])
    if isinstance(ev, ValueForeignKeyEvaluator):
        return [(ev.element, ev.field), (ev.target, ev.targets.field)]
    if isinstance(ev, InverseEvaluator):
        sites: list[tuple[str, "Field"]] = []
        for d in ev.directions:
            sites += [(d.a_label, d.key_a), (d.a_label, d.field_a),
                      (d.b_label, d.key_b), (d.b_label, d.field_b)]
        return sites
    return []  # IDConstraint reads attributes only; static never reads


class StreamPlan:
    """The compiled form of one ``DTD^C``, ready for single-pass folding."""

    def __init__(self, dtd: "DTDC"):
        self.dtd = dtd
        self.structure = dtd.structure
        self.constraints: tuple["Constraint", ...] = tuple(dtd.constraints)
        self.root: str = self.structure.root
        self.id_map: dict[str, str] = self.structure.id_attribute_map()

        # Probe evaluators once (they are cheap, stateless until fed) to
        # learn each constraint's label interests and field sites; the
        # validator builds fresh instances per document.
        probes = [evaluator_for(c, None, self.id_map)
                  for c in self.constraints]
        #: constraint indices whose evaluators must run a deferred
        #: end-of-document ``full()`` instead of per-close ``add()``
        #: (inverse pair ordering is not reproducible incrementally;
        #: static violations have no state at all)
        self.deferred: frozenset[int] = frozenset(
            i for i, ev in enumerate(probes)
            if isinstance(ev, (InverseEvaluator, StaticViolationEvaluator)))
        self.has_id_evaluators: bool = any(
            isinstance(ev, IDConstraintEvaluator) for ev in probes)

        #: labels whose vertices must survive their close tag: anything an
        #: evaluator dispatches on, plus every type with a declared ID
        #: attribute (document-wide clash bookkeeping of ``L_id``)
        self.relevant: frozenset[str] = frozenset(
            label for ev in probes for label in ev.labels) | frozenset(
            self.id_map)

        elem_fields: dict[str, set[str]] = {}
        for ev in probes:
            for owner, f in _field_sites(ev):
                if f.is_element:
                    elem_fields.setdefault(owner, set()).add(f.name)

        self.labels: dict[str, LabelPlan] = {}
        for label in self.structure.element_types:
            interested = tuple(i for i, ev in enumerate(probes)
                               if label in ev.labels and i not in
                               self.deferred)
            declared = self.structure.attributes(label)
            self.labels[label] = LabelPlan(
                label, declared,
                frozenset(a for a in declared
                          if self.structure.is_set_valued(label, a)),
                interested, frozenset(elem_fields.get(label, ())))

        #: child labels captured as text anywhere (union of elem_fields)
        self.text_fields: frozenset[str] = frozenset(
            name for names in elem_fields.values() for name in names)

        self._matchers: dict[str, Matcher] | None = None

    # -- content-model automata (lazy; rebuilt after unpickling) ---------

    @property
    def matchers(self) -> dict[str, Matcher]:
        if self._matchers is None:
            self._matchers = {
                label: matcher_for(self.structure.content(label))
                for label in self.structure.element_types}
        return self._matchers

    # -- pickling --------------------------------------------------------

    def __getstate__(self):
        # Matchers hold lazily-built DFA tables keyed into a per-process
        # module cache; ship the schema and rebuild on first use instead.
        state = self.__dict__.copy()
        state["_matchers"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


def compile_plan(dtd: "DTDC") -> StreamPlan:
    """Compile ``dtd`` into a :class:`StreamPlan` (once per schema)."""
    return StreamPlan(dtd)
