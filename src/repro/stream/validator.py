"""Single-pass streaming validation from the token stream.

:class:`StreamValidator` folds :class:`~repro.xmlio.tokenizer.Tokenizer`
events through a compiled :class:`~repro.stream.plan.StreamPlan` — no
:class:`~repro.datamodel.tree.DataTree`, no
:class:`~repro.datamodel.indexes.AttributeIndex` — and emits a
:class:`~repro.dtd.validate.ValidationReport` that is byte-identical
(``to_json()``) to ``validate(parse_document(text, S), dtd)``.

What makes byte-identity work:

- **vids** are assigned in start-tag order, which is exactly the
  pre-order rank :meth:`DataTree.create` hands out during a parse.
- **Structural violations** are collected with ``(vid, rank)`` sort keys
  (root check < element/content-model < attribute checks) and stably
  sorted at the end, reproducing the batch validator's pre-order sweep
  even though attribute checks fire at the start tag and content-model
  checks at the close tag.
- **Content models** are stepped one DFA transition per child event
  (``Matcher.step``); the state held at the first dead transition
  reproduces ``prefix_length`` / ``expected_after`` diagnostics without
  ever buffering the child word.
- **Constraints** reuse the untouched
  :class:`~repro.constraints.evaluators.ConstraintEvaluator` machinery.
  A closed element is fed through the same ``add()`` path as an
  incremental insertion, but in strict document (pre-)order: closed
  relevant vertices are buffered while any relevant element remains
  open and flushed sorted by vid, so every evaluator sees exactly the
  vertex sequence a batch ``full()`` pass would (dict insertion orders
  — and therefore emission orders — cannot drift).  Inverse evaluators,
  whose violated-pair order is a function of the whole extension, and
  static (schema-level) violations are deferred to one end-of-document
  ``full()`` over the retained vertices.

Peak memory is O(open-element depth + retained Σ-relevant vertices +
evaluator residual state): vertices whose label no constraint or
declared-ID attribute cares about are dropped at their close tag.
"""

from __future__ import annotations

import os
from operator import attrgetter, itemgetter

from repro.constraints.evaluators import IDConstraintEvaluator, evaluator_for
from repro.dtd.validate import ValidationReport
from repro.errors import XMLSyntaxError
from repro.obs import NULL_OBS
from repro.stream.plan import StreamPlan, compile_plan
from repro.xmlio.tokenizer import Tokenizer

_EMPTY: frozenset[str] = frozenset()

#: open-depth histogram buckets: documents deeper than 128 are exotic
_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _TextChild:
    """Stand-in for a text-carrying child vertex: just its ``text``."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text


class StreamVertex:
    """The retained residue of a Σ-relevant element after its close tag.

    Quacks like :class:`~repro.datamodel.tree.Vertex` for exactly the
    surface the constraint evaluators touch: ``vid``, ``label``,
    ``attr_or_empty``, ``children_labeled`` (sub-element fields only),
    and ``int(v)`` for violation reporting.
    """

    __slots__ = ("vid", "label", "_attributes", "_elem_children")

    def __init__(self, vid: int, label: str,
                 attributes: dict[str, frozenset[str]]):
        self.vid = vid
        self.label = label
        self._attributes = attributes
        self._elem_children: dict[str, list[_TextChild]] | None = None

    def attr_or_empty(self, name: str) -> frozenset[str]:
        return self._attributes.get(name, _EMPTY)

    def children_labeled(self, label: str) -> list[_TextChild]:
        if self._elem_children is None:
            return []
        return self._elem_children.get(label, [])

    def _add_elem_child(self, label: str, text: str) -> None:
        if self._elem_children is None:
            self._elem_children = {}
        self._elem_children.setdefault(label, []).append(_TextChild(text))

    def __int__(self) -> int:
        return self.vid

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<StreamVertex {self.vid} {self.label!r}>"


class StreamIndex:
    """The Σ-relevant shard of an :class:`AttributeIndex`, built as the
    stream flushes closed vertices in pre-order.

    Supports exactly the evaluator-facing surface: ``extension`` (in vid
    = document order, like the tree-wide index), ``id_owners`` /
    ``id_owner_list`` (insertion in pre-order, ditto), and
    ``index_vertex`` returning the declared-ID values gained.
    """

    __slots__ = ("id_attributes", "_ext", "_id_owners")

    def __init__(self, id_map: dict[str, str]):
        self.id_attributes = id_map
        self._ext: dict[str, dict[int, StreamVertex]] = {}
        self._id_owners: dict[str, dict[int, StreamVertex]] = {}

    def index_vertex(self, v: StreamVertex) -> set[str]:
        self._ext.setdefault(v.label, {})[v.vid] = v
        id_attr = self.id_attributes.get(v.label)
        if id_attr is None:
            return set()
        values = v.attr_or_empty(id_attr)
        for value in values:
            self._id_owners.setdefault(value, {})[v.vid] = v
        return set(values)

    def extension(self, label: str) -> list[StreamVertex]:
        return list(self._ext.get(label, {}).values())

    @property
    def id_owners(self) -> dict[str, dict[int, StreamVertex]]:
        return self._id_owners

    def id_owner_list(self, value: str) -> list[StreamVertex]:
        return list(self._id_owners.get(value, {}).values())


class _Frame:
    """One open element on the stack."""

    __slots__ = ("label", "vid", "lp", "matcher", "cm_state", "cm_viable",
                 "cm_dead_state", "sv", "wants", "texts")

    def __init__(self, label, vid, lp, matcher, sv, wants, texts):
        self.label = label
        self.vid = vid
        self.lp = lp                    # LabelPlan, or None if undeclared
        self.matcher = matcher
        self.cm_state = 0 if matcher is not None else None
        self.cm_viable = 0              # children consumed while viable
        self.cm_dead_state = -1         # state at the first dead step
        self.sv = sv                    # StreamVertex, or None if dropped
        self.wants = wants              # child labels wanted as §3.4 fields
        self.texts = texts              # captured text chunks, or None


class StreamValidator:
    """Validate documents against one compiled plan, one pass each."""

    def __init__(self, plan_or_dtd, obs=None):
        self.plan: StreamPlan = (
            plan_or_dtd if isinstance(plan_or_dtd, StreamPlan)
            else compile_plan(plan_or_dtd))
        self.obs = obs or NULL_OBS

    def validate(self, source: "str | os.PathLike") -> ValidationReport:
        """Validate a path (:class:`os.PathLike`) or a string that is
        either XML text (starts with ``<``) or a filesystem path."""
        if isinstance(source, os.PathLike):
            return self.validate_path(os.fspath(source))
        if source.lstrip().startswith("<"):
            return self.validate_text(source)
        return self.validate_path(source)

    def validate_path(self, path: str) -> ValidationReport:
        with open(path, "rb") as fh:
            return self.validate_text(fh.read().decode("utf-8"))

    def validate_text(self, text: str,
                      keep_whitespace: bool = False) -> ValidationReport:
        """One streaming pass; raises
        :class:`~repro.errors.XMLSyntaxError` on malformed input, with
        the same messages as :func:`~repro.xmlio.parser.parse_document`.
        """
        obs = self.obs
        if not obs.enabled:
            return _Run(self.plan, NULL_OBS).run(text, keep_whitespace)
        with obs.span("stream.validate", chars=len(text)) as span:
            run = _Run(self.plan, obs)
            report = run.run(text, keep_whitespace)
            span.set(events=run.n_events, elements=run.next_vid,
                     violations=len(report))
        return report


class _Run:
    """Mutable state of one streaming validation pass."""

    def __init__(self, plan: StreamPlan, obs):
        self.plan = plan
        self.structure = plan.structure
        self.labels = plan.labels
        self.matchers = plan.matchers
        self.relevant = plan.relevant
        self.obs = obs
        self.next_vid = 0
        self.n_events = 0
        self.root_seen = False
        self.stack: list[_Frame] = []
        self.pending_text: list[tuple[str, int]] = []
        #: ((vid, rank), code, message, vids): rank -1 root check,
        #: 0 element/content-model, 1 attribute checks — the batch sweep
        #: order, recovered by one stable sort at the end
        self.structural: list[tuple] = []
        self.index = StreamIndex(plan.id_map)
        self.evaluators = [evaluator_for(c, self.index, plan.id_map,
                                         obs=obs if obs.enabled else None)
                           for c in plan.constraints]
        self.dispatch = {
            label: tuple(self.evaluators[i] for i in lp.evaluators)
            for label, lp in plan.labels.items() if lp.evaluators}
        self.id_listeners = tuple(
            ev for i, ev in enumerate(self.evaluators)
            if isinstance(ev, IDConstraintEvaluator)
            and i not in plan.deferred)
        self.open_relevant = 0
        self.region: list[StreamVertex] = []

    # -- the pass --------------------------------------------------------

    def run(self, text: str, keep_whitespace: bool) -> ValidationReport:
        track = self.obs.enabled
        depth_hist = self.obs.histogram(
            "stream_open_depth",
            help="open-element stack depth at each start tag",
            buckets=_DEPTH_BUCKETS) if track else None
        stack = self.stack
        pending = self.pending_text
        n_events = 0
        for token in Tokenizer(text).tokens():
            n_events += 1
            kind = token.kind
            if kind == "text":
                pending.append((token.value, token.line))
                continue
            if kind in ("comment", "pi", "doctype"):
                continue
            if pending:
                self._flush_text(keep_whitespace)
            if kind == "start":
                stack.append(self._open(token))
                if track:
                    depth_hist.observe(len(stack))
            elif kind == "empty":
                self._close(self._open(token))
            else:  # "end"
                if not stack:
                    raise XMLSyntaxError(
                        f"unexpected end tag </{token.value}>",
                        line=token.line)
                top = stack.pop()
                if top.label != token.value:
                    raise XMLSyntaxError(
                        f"end tag </{token.value}> does not match open "
                        f"element <{top.label}>", line=token.line)
                self._close(top)
        if pending:
            self._flush_text(keep_whitespace)
        self.n_events = n_events
        if not self.root_seen:
            raise XMLSyntaxError("document has no root element")
        if stack:
            raise XMLSyntaxError(
                f"unclosed element <{stack[-1].label}> at end of input")
        return self._finish()

    def _flush_text(self, keep_whitespace: bool) -> None:
        stack = self.stack
        for chunk, line in self.pending_text:
            if not stack:
                if chunk.strip():
                    raise XMLSyntaxError(
                        "character data outside the root element", line=line)
                continue
            if keep_whitespace or chunk.strip():
                top = stack[-1]
                self._step(top, "S")
                if top.texts is not None:
                    top.texts.append(chunk)
        self.pending_text.clear()

    def _open(self, token) -> _Frame:
        label = token.value
        stack = self.stack
        if not self.root_seen:
            self.root_seen = True
            if label != self.structure.root:
                self.structural.append((
                    (0, -1), "root",
                    f"root is {label!r}, expected {self.structure.root!r}",
                    (0,)))
        elif not stack:
            raise XMLSyntaxError(f"second root element {label!r}",
                                 line=token.line)
        vid = self.next_vid
        self.next_vid = vid + 1
        parent = stack[-1] if stack else None
        if parent is not None:
            self._step(parent, label)

        lp = self.labels.get(label)
        structural = self.structural
        attrs: dict[str, frozenset[str]] = {}
        if lp is None:
            for name, raw in token.attributes:
                attrs[name] = frozenset((raw,))
            structural.append(((vid, 0), "element",
                               f"undeclared element type {label!r}", (vid,)))
        else:
            set_valued = lp.set_valued
            for name, raw in token.attributes:
                attrs[name] = (frozenset(raw.split()) if name in set_valued
                               else frozenset((raw,)))
            declared = lp.declared_attrs
            for name, values in attrs.items():
                if name not in declared:
                    structural.append((
                        (vid, 1), "attribute",
                        f"undeclared attribute {label}.{name}", (vid,)))
                elif name not in set_valued and len(values) != 1:
                    structural.append((
                        (vid, 1), "attribute",
                        f"single-valued attribute {label}.{name} holds "
                        f"{len(values)} values", (vid,)))
            for name in declared:
                if name not in attrs:
                    structural.append((
                        (vid, 1), "attribute",
                        f"missing attribute {label}.{name}", (vid,)))

        sv = None
        wants = _EMPTY
        if label in self.relevant:
            sv = StreamVertex(vid, label, attrs)
            self.open_relevant += 1
            if lp is not None:
                wants = lp.elem_fields
        texts = (
            [] if parent is not None and parent.wants
            and label in parent.wants else None)
        return _Frame(label, vid,
                      lp, self.matchers[label] if lp is not None else None,
                      sv, wants, texts)

    def _step(self, frame: _Frame, symbol: str) -> None:
        state = frame.cm_state
        if state is None:
            return
        nxt = frame.matcher.step(state, symbol)
        if nxt is None:
            frame.cm_dead_state = state
            frame.cm_state = None
        else:
            frame.cm_state = nxt
            frame.cm_viable += 1

    def _close(self, frame: _Frame) -> None:
        if frame.lp is not None:
            state = frame.cm_state
            if state is None or not frame.matcher.is_accepting_state(state):
                viable = frame.cm_viable
                expected = sorted(frame.matcher.expected_from(
                    frame.cm_dead_state if state is None else state))
                self.structural.append((
                    (frame.vid, 0), "content-model",
                    f"children of {frame.label!r} do not match its content "
                    f"model (stuck after {viable} child(ren); expected one "
                    f"of {expected})", (frame.vid,)))
        if frame.texts is not None:
            parent = self.stack[-1]
            if parent.sv is not None:
                parent.sv._add_elem_child(frame.label, "".join(frame.texts))
        if frame.sv is not None:
            self.region.append(frame.sv)
            self.open_relevant -= 1
            if not self.open_relevant:
                self._flush_region()

    def _flush_region(self) -> None:
        """Feed the buffered closed vertices to the evaluators in vid
        (= document pre-) order.

        The buffer drains only when no Σ-relevant element is open, so
        every vertex opened later has a larger vid than anything flushed
        here — the concatenation of flushes is globally vid-sorted, and
        each evaluator sees the same vertex sequence as a batch
        ``full()`` over the complete extension.
        """
        region = self.region
        if len(region) > 1:
            region.sort(key=attrgetter("vid"))
        index = self.index
        dispatch = self.dispatch
        id_listeners = self.id_listeners
        for v in region:
            gained = index.index_vertex(v)
            interested = dispatch.get(v.label)
            if interested is not None:
                for ev in interested:
                    ev.add(v)
            if gained and id_listeners:
                for ev in id_listeners:
                    ev.id_values_changed(gained)
        region.clear()

    def _finish(self) -> ValidationReport:
        obs = self.obs
        report = ValidationReport()
        self.structural.sort(key=itemgetter(0))
        for _key, code, message, vids in self.structural:
            report.add(code, message, vertices=vids)
        deferred = self.plan.deferred
        for i, ev in enumerate(self.evaluators):
            if obs.enabled:
                with obs.span("stream.emit",
                              constraint=str(ev.constraint)):
                    if i in deferred:
                        ev.full()
                    ev.emit(report)
            else:
                if i in deferred:
                    ev.full()
                ev.emit(report)
        if obs.enabled:
            obs.counter("stream_events",
                        help="tokenizer events folded by the streaming "
                        "validator").add(self.n_events)
            obs.counter("stream_elements",
                        help="element vertices seen by the streaming "
                        "validator").add(self.next_vid)
            for label, members in self.index._ext.items():
                obs.counter("stream_dispatch_vertices", {"label": label},
                            help="closed vertices dispatched to "
                            "constraint evaluators, per label"
                            ).add(len(members))
                with obs.span("stream.dispatch", label=label,
                              vertices=len(members)):
                    pass
        return report
