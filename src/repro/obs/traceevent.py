"""Chrome trace-event export: span trees as Perfetto-loadable JSON.

:func:`trace_events` converts a span forest (live
:class:`~repro.obs.trace.Span` objects or the dicts their
``to_dict()`` exports) into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev both load: one
complete event (``"ph": "X"``) per span, timestamps and durations in
microseconds, grouped into tracks by ``pid``/``tid``.

Spans that crossed a process boundary carry only durations — the
worker's ``perf_counter`` clock is not comparable with the
coordinator's — so the exporter *synthesizes* a consistent timeline:
roots are laid end to end, and each span's children are packed
sequentially from their parent's start.  Relative widths are faithful;
absolute offsets are presentation only (and say so in ``otherData``).

:func:`validate_trace_events` is the in-repo schema check the CI trace
round-trip uses; it returns a list of problems (empty = valid).
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["trace_events", "validate_trace_events"]

_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def _as_dict(span: object) -> dict:
    to_dict = getattr(span, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(span, dict):
        return span
    raise TypeError(f"expected Span or span dict, got {type(span)!r}")


def _span_track(d: dict, default_pid: int) -> "tuple[int, int]":
    """(pid, tid) for a span dict: worker spans record their os pid in
    attributes, everything else lands on the default track."""
    attrs = d.get("attributes") or {}
    try:
        pid = int(attrs.get("pid", default_pid))
    except (TypeError, ValueError):
        pid = default_pid
    return pid, 0


def _emit(d: dict, ts_us: float, default_pid: int,
          trace_id: Optional[str], events: list) -> float:
    """Append this span and its children; returns the span's width."""
    duration = d.get("duration_s")
    dur_us = max(float(duration) * 1e6, 0.0) \
        if duration is not None else 0.0
    pid, tid = _span_track(d, default_pid)
    args = dict(d.get("attributes") or {})
    if d.get("trace_id"):
        args["trace_id"] = d["trace_id"]
        args["span_id"] = d.get("span_id")
    event = {
        "name": d.get("name", "?"),
        "cat": "repro",
        "ph": "X",
        "ts": round(ts_us, 3),
        "dur": round(dur_us, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    }
    events.append(event)
    cursor = ts_us
    child_total = 0.0
    for child in d.get("children", ()):
        width = _emit(child, cursor, pid, trace_id, events)
        cursor += width
        child_total += width
    # A parent whose recorded duration lost to clock noise still must
    # enclose its children on the synthesized timeline.
    if child_total > dur_us:
        event["dur"] = round(child_total, 3)
        dur_us = child_total
    return dur_us


def trace_events(spans: Iterable[object], *,
                 trace_id: Optional[str] = None,
                 process_name: str = "repro-xic") -> dict:
    """Export a span forest as a Trace Event Format payload.

    ``trace_id``, when given, filters the forest to roots belonging to
    that trace (id-free roots are kept only when no filter is given)
    and is recorded in ``otherData`` for correlation.  When omitted and
    every root agrees on one trace id, that id is reported.
    """
    dicts = [_as_dict(s) for s in spans]
    if trace_id is not None:
        dicts = [d for d in dicts if d.get("trace_id") == trace_id]
    else:
        ids = {d.get("trace_id") for d in dicts}
        if len(ids) == 1:
            trace_id = ids.pop()
    events: list = []
    cursor = 0.0
    for d in dicts:
        cursor += _emit(d, cursor, 0, trace_id, events)
    pids = sorted({e["pid"] for e in events})
    meta = [{"name": "process_name", "ph": "M", "ts": 0, "pid": pid,
             "tid": 0,
             "args": {"name": process_name if pid == 0
                      else f"{process_name} worker {pid}"}}
            for pid in pids]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "clock": "synthetic",
            "note": "timeline synthesized from span durations; "
                    "absolute offsets are presentation only",
        },
    }


def validate_trace_events(payload: object) -> "list[str]":
    """Schema-check a trace-event payload; returns problems (empty =
    loadable).  Covers exactly what Perfetto needs: a ``traceEvents``
    array of events with name/ph/ts/pid/tid, complete events carrying a
    non-negative ``dur``."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents must be an array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"{where} is missing {key!r}")
        if not isinstance(event.get("name", ""), str):
            problems.append(f"{where}.name is not a string")
        ph = event.get("ph")
        if ph is not None and ph not in ("X", "B", "E", "M", "i", "C"):
            problems.append(f"{where}.ph {ph!r} is not a known phase")
        for key in ("ts", "dur"):
            value = event.get(key)
            if value is not None and (
                    not isinstance(value, (int, float)) or value < 0):
                problems.append(f"{where}.{key} must be a non-negative "
                                f"number, got {value!r}")
        if ph == "X" and "dur" not in event:
            problems.append(f"{where} is a complete event without dur")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                problems.append(f"{where}.{key} must be an integer")
    return problems
