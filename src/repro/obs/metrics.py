"""Named counters, gauges, and histograms.

A :class:`MetricsRegistry` hands out instruments keyed by
``(name, labels)``; asking twice for the same pair returns the same
object, so instrumented code can fetch its counters once and hold them.
Names follow the Prometheus grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``) so
every instrument is exportable in all three formats without renaming.

The disabled counterparts (:data:`NULL_INSTRUMENT`,
:class:`NullMetricsRegistry`) accept every operation and record
nothing.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_INSTRUMENT",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullInstrument",
    "NullMetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds.  Chosen for durations in
#: seconds (10us .. 10s) but serviceable for small counts too.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

LabelItems = Tuple[Tuple[str, str], ...]


class _Instrument:
    __slots__ = ("name", "labels", "help")

    kind = "abstract"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    def label_dict(self) -> dict:
        return dict(self.labels)


class Counter(_Instrument):
    """Monotonically non-decreasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        super().__init__(name, labels, help)
        self.value: Union[int, float] = 0

    def inc(self) -> None:
        self.value += 1

    def add(self, n: Union[int, float]) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += n


class Gauge(_Instrument):
    """A value that can go up and down."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems, help: str = ""):
        super().__init__(name, labels, help)
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, n: Union[int, float]) -> None:
        self.value += n


class Histogram(_Instrument):
    """Cumulative-bucket histogram plus count/sum/min/max.

    Each bucket (including the implicit ``+Inf`` overflow) can remember
    one *exemplar* — the most recent ``(value, trace_id)`` observed into
    it — so a latency spike on ``/metrics`` links straight to the trace
    that caused it.  Exemplars cost nothing unless a ``trace_id`` is
    passed to :meth:`observe`.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total",
                 "min", "max", "exemplars")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, labels, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: one exemplar slot per bucket plus the +Inf overflow;
        #: each is None or {"value": float, "trace_id": str}
        self.exemplars: "list[Optional[dict]]" = \
            [None] * (len(self.buckets) + 1)

    def observe(self, value: Union[int, float],
                trace_id: Optional[str] = None) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        canonical = len(self.buckets)  # +Inf overflow by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                if i < canonical:
                    canonical = i
        if trace_id is not None:
            self.exemplars[canonical] = {"value": float(value),
                                         "trace_id": trace_id}

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0..1) from the cumulative buckets
        by linear interpolation within the winning bucket — the same
        estimate ``histogram_quantile`` makes.  None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in zip(self.buckets, self.bucket_counts):
            if cum >= rank:
                if cum == prev_cum:  # pragma: no cover - defensive
                    return bound
                frac = (rank - prev_cum) / (cum - prev_cum)
                estimate = prev_bound + (bound - prev_bound) * frac
                # interpolation cannot beat the largest observation
                if self.max is not None and estimate > self.max:
                    return self.max
                # ... nor undershoot the smallest: the first bucket
                # interpolates up from 0.0, not from the data floor
                # (rank == 0 deliberately stays at the bucket's lower
                # edge so quantile(0.0) keeps its historical value)
                if rank > 0 and self.min is not None \
                        and estimate < self.min:
                    return self.min
                return estimate
            prev_bound, prev_cum = bound, cum
        # rank falls in the +Inf overflow: the best finite answer is
        # the largest observation.
        return self.max


AnyInstrument = Union[Counter, Gauge, Histogram]


def _label_key(labels: Optional[dict]) -> LabelItems:
    if not labels:
        return ()
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for k, _ in items:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return items


class MetricsRegistry:
    """Registry of instruments keyed by ``(name, labels)``.

    A metric *name* is bound to one kind (counter/gauge/histogram) on
    first use; re-registering it with another kind is an error, while
    re-registering with the same kind returns the existing instrument
    for those labels.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[Tuple[str, LabelItems], AnyInstrument] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def _get(self, cls: type, name: str, labels: Optional[dict],
             help: str, **kwargs: object) -> AnyInstrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        bound = self._kinds.get(name)
        if bound is not None and bound != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {bound}, "
                f"not {cls.kind}")
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1], help or self._help.get(name, ""),
                       **kwargs)
            self._instruments[key] = inst
            self._kinds[name] = cls.kind
            if help:
                self._help.setdefault(name, help)
        return inst

    def counter(self, name: str, labels: Optional[dict] = None,
                help: str = "") -> Counter:
        return self._get(Counter, name, labels, help)  # type: ignore

    def gauge(self, name: str, labels: Optional[dict] = None,
              help: str = "") -> Gauge:
        return self._get(Gauge, name, labels, help)  # type: ignore

    def histogram(self, name: str, labels: Optional[dict] = None,
                  help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        return self._get(Histogram, name, labels, help,  # type: ignore
                         buckets=buckets)

    def collect(self) -> list[AnyInstrument]:
        """All instruments, sorted by (name, labels)."""
        return [self._instruments[k]
                for k in sorted(self._instruments)]

    def value(self, name: str, labels: Optional[dict] = None,
              ) -> Union[int, float]:
        """Current value of a counter/gauge; KeyError if never touched."""
        inst = self._instruments[(name, _label_key(labels))]
        if isinstance(inst, Histogram):
            raise TypeError(f"{name!r} is a histogram; read .count/.total")
        return inst.value

    def values(self, name: str) -> dict:
        """``{labels-dict-as-tuple: value}`` across all label sets."""
        return {key[1]: inst.value
                for key, inst in sorted(self._instruments.items())
                if key[0] == name and not isinstance(inst, Histogram)}

    def total(self, name: str) -> Union[int, float]:
        """Sum of a counter/gauge across all label sets (0 if absent)."""
        return sum(inst.value
                   for (n, _), inst in self._instruments.items()
                   if n == name and not isinstance(inst, Histogram))

    def to_dicts(self) -> list[dict]:
        out = []
        for inst in self.collect():
            entry: dict = {
                "name": inst.name,
                "kind": inst.kind,
                "labels": inst.label_dict(),
                "help": inst.help,
            }
            if isinstance(inst, Histogram):
                entry.update(
                    count=inst.count, sum=inst.total,
                    min=inst.min, max=inst.max,
                    buckets=[{"le": b, "count": c}
                             for b, c in zip(inst.buckets,
                                             inst.bucket_counts)],
                )
                if any(e is not None for e in inst.exemplars):
                    entry["exemplars"] = [
                        dict(e) if e is not None else None
                        for e in inst.exemplars]
            else:
                entry["value"] = inst.value
            out.append(entry)
        return out

    @classmethod
    def from_dicts(cls, entries: Iterable[dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dicts` output.

        This is the cross-process half of :meth:`merge`: a worker
        exports its registry as JSON-safe dicts, the coordinator
        rebuilds and merges them.
        """
        registry = cls()
        for entry in entries:
            kind = entry["kind"]
            name, labels = entry["name"], entry["labels"]
            help = entry.get("help", "")
            if kind == "histogram":
                bounds = tuple(b["le"] for b in entry["buckets"])
                hist = registry.histogram(name, labels, help,
                                          buckets=bounds)
                hist.count = entry["count"]
                hist.total = entry["sum"]
                hist.min = entry["min"]
                hist.max = entry["max"]
                hist.bucket_counts = [b["count"] for b in entry["buckets"]]
                exemplars = entry.get("exemplars")
                if exemplars:
                    hist.exemplars = [dict(e) if e is not None else None
                                      for e in exemplars]
            elif kind == "gauge":
                registry.gauge(name, labels, help).set(entry["value"])
            elif kind == "counter":
                registry.counter(name, labels, help).add(entry["value"])
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")
        return registry

    #: Legal ``gauges=`` reducers for :meth:`merge`.
    GAUGE_REDUCERS = ("max", "min", "sum")

    def merge(self, other: "MetricsRegistry",
              gauges: str = "max") -> "MetricsRegistry":
        """Fold another registry's instruments into this one.

        Counters add their values; histograms require identical bucket
        bounds and add counts, sums and bucket tallies (min/max
        combine, exemplars prefer the incoming side — newest wins).

        Gauges merge through an explicit, order-independent *reducer*:
        ``"max"`` (the default — the corpus-wide high-water mark, and
        deterministic no matter which worker reports first), ``"min"``,
        or ``"sum"`` (when worker-local sizes mean to be added).  A
        gauge this registry has never set simply takes the incoming
        value.  Returns ``self`` so merges chain.
        """
        if gauges not in self.GAUGE_REDUCERS:
            raise ValueError(
                f"unknown gauge reducer {gauges!r} "
                f"(known: {', '.join(self.GAUGE_REDUCERS)})")
        for inst in other.collect():
            if isinstance(inst, Histogram):
                mine = self.histogram(inst.name, inst.label_dict(),
                                      inst.help, buckets=inst.buckets)
                if mine.buckets != inst.buckets:
                    raise ValueError(
                        f"histogram {inst.name!r} bucket bounds differ; "
                        "cannot merge")
                mine.count += inst.count
                mine.total += inst.total
                if inst.min is not None:
                    mine.min = inst.min if mine.min is None \
                        else min(mine.min, inst.min)
                if inst.max is not None:
                    mine.max = inst.max if mine.max is None \
                        else max(mine.max, inst.max)
                for i, c in enumerate(inst.bucket_counts):
                    mine.bucket_counts[i] += c
                for i, exemplar in enumerate(inst.exemplars):
                    if exemplar is not None:
                        mine.exemplars[i] = dict(exemplar)
            elif isinstance(inst, Gauge):
                key = (inst.name, inst.labels)
                fresh = key not in self._instruments
                mine_gauge = self.gauge(inst.name, inst.label_dict(),
                                        inst.help)
                if fresh:
                    mine_gauge.set(inst.value)
                elif gauges == "sum":
                    mine_gauge.add(inst.value)
                elif gauges == "min":
                    mine_gauge.set(min(mine_gauge.value, inst.value))
                else:
                    mine_gauge.set(max(mine_gauge.value, inst.value))
            else:
                self.counter(inst.name, inst.label_dict(),
                             inst.help).add(inst.value)
        return self

    def clear(self) -> None:
        self._instruments.clear()
        self._kinds.clear()
        self._help.clear()

    def __iter__(self) -> Iterable[AnyInstrument]:  # pragma: no cover
        return iter(self.collect())


class NullInstrument:
    """Inert counter/gauge/histogram; all operations are no-ops."""

    __slots__ = ()

    name = ""
    labels: LabelItems = ()
    help = ""
    kind = "null"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None
    exemplars: tuple = ()

    def inc(self) -> None:
        return None

    def add(self, n: Union[int, float]) -> None:
        return None

    def set(self, value: Union[int, float]) -> None:
        return None

    def observe(self, value: Union[int, float],
                trace_id: Optional[str] = None) -> None:
        return None

    def quantile(self, q: float) -> None:
        return None

    def label_dict(self) -> dict:
        return {}

    def __bool__(self) -> bool:
        return False


NULL_INSTRUMENT = NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: hands out :data:`NULL_INSTRUMENT`."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str, labels: Optional[dict] = None,
                help: str = "") -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, labels: Optional[dict] = None,
              help: str = "") -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, labels: Optional[dict] = None,
                  help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> NullInstrument:
        return NULL_INSTRUMENT

    def collect(self) -> list:
        return []

    def total(self, name: str) -> int:
        return 0

    def values(self, name: str) -> dict:
        return {}

    def to_dicts(self) -> list:
        return []

    def merge(self, other: object,
              gauges: str = "max") -> "NullMetricsRegistry":
        return self

    def clear(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_METRICS = NullMetricsRegistry()
