"""Observability: tracing, metrics, and profiling hooks.

Zero-dependency measurement substrate for the validation, implication,
and incremental engines.  One handle bundles a :class:`Tracer` (nested
wall-clock spans) and a :class:`MetricsRegistry` (named counters /
gauges / histograms)::

    from repro import Observability, Validator

    obs = Observability()
    Validator(dtd, obs=obs).validate(doc)
    print(obs.render())          # span tree + counter table
    obs.to_json()                # machine-readable
    obs.to_prometheus()          # text exposition format

Instrumented library code takes an optional ``obs=`` parameter and
defaults to :data:`NULL_OBS`, a falsy module-level no-op handle whose
spans and instruments do nothing — the disabled path costs nothing
measurable.  The idiom at every entry point is::

    def f(..., obs=None):
        obs = obs or NULL_OBS

Counter names are Prometheus-safe; per-constraint evaluator counters
carry a ``constraint`` label, per-engine implication counters an
``engine`` (and where meaningful ``rule``) label.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from .context import (
    TraceContext,
    activate,
    current_context,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from .events import (
    LEVELS,
    NULL_EVENTS,
    EventLog,
    NullEventLog,
)
from .export import (
    obs_to_dict,
    obs_to_json,
    render_metrics,
    render_report,
    render_spans,
    to_prometheus,
)
from .promlint import lint_exposition
from .traceevent import trace_events, validate_trace_events
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    NullMetricsRegistry,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "LEVELS",
    "NULL_EVENTS",
    "NULL_INSTRUMENT",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullEventLog",
    "NullInstrument",
    "NullMetricsRegistry",
    "NullSpan",
    "NullTracer",
    "Observability",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "current_context",
    "lint_exposition",
    "new_span_id",
    "new_trace_id",
    "obs_to_dict",
    "obs_to_json",
    "parse_traceparent",
    "render_metrics",
    "render_report",
    "render_spans",
    "to_prometheus",
    "trace_events",
    "validate_trace_events",
]


class Observability:
    """A tracer + metrics registry, threaded through the engines.

    Truthiness signals enablement: the shared :data:`NULL_OBS` is falsy,
    an enabled handle is truthy, so ``obs = obs or NULL_OBS`` both
    defaults and normalizes.
    """

    __slots__ = ("tracer", "metrics", "events", "enabled")

    def __init__(self,
                 tracer: Optional[Union[Tracer, NullTracer]] = None,
                 metrics: Optional[Union[MetricsRegistry,
                                         NullMetricsRegistry]] = None,
                 events: Optional[Union[EventLog, NullEventLog]] = None):
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        # Events opt in explicitly: the default handle stays spans +
        # metrics only, so to_dict()/absorb() shapes are unchanged.
        self.events = NULL_EVENTS if events is None else events
        self.enabled = bool(self.tracer.enabled or self.metrics.enabled)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(tracer=NULL_TRACER, metrics=NULL_METRICS)

    def __bool__(self) -> bool:
        return self.enabled

    # -- delegation --------------------------------------------------
    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def counter(self, name: str, labels: Optional[dict] = None,
                help: str = ""):
        return self.metrics.counter(name, labels, help)

    def gauge(self, name: str, labels: Optional[dict] = None,
              help: str = ""):
        return self.metrics.gauge(name, labels, help)

    def histogram(self, name: str, labels: Optional[dict] = None,
                  help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        return self.metrics.histogram(name, labels, help, buckets)

    def event(self, code: str, message: str = "", level: str = "info",
              **attrs: Any):
        """Emit a structured event (no-op without an attached log)."""
        return self.events.emit(level, code, message, **attrs)

    # -- multi-worker merge ------------------------------------------
    def absorb(self, payload: dict) -> None:
        """Merge a worker's exported ``{"metrics": ..., "spans": ...}``
        payload (JSON-safe dicts, as produced by
        ``metrics.to_dicts()`` / ``tracer.to_dicts()``) into this
        handle.  No-op on a disabled handle."""
        if not self.enabled:
            return
        metrics = payload.get("metrics") or []
        if metrics and self.metrics.enabled:
            self.metrics.merge(MetricsRegistry.from_dicts(metrics))
        spans = payload.get("spans") or []
        if spans and self.tracer.enabled:
            self.tracer.adopt(spans)
        events = payload.get("events") or []
        if events and self.events.enabled:
            self.events.absorb(events)

    # -- export ------------------------------------------------------
    def render(self) -> str:
        """Human-readable span tree + metrics table."""
        return render_report(self)

    def to_dict(self) -> dict:
        return obs_to_dict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return obs_to_json(self, indent)

    def to_prometheus(self) -> str:
        return to_prometheus(self.metrics)

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.clear()


#: Module-level disabled handle.  Falsy; shared; never records.
NULL_OBS = Observability.disabled()
