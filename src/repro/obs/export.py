"""Exporters: human text, JSON, and Prometheus text exposition.

All three read the same :class:`~repro.obs.Observability` handle; none
import anything beyond the standard library.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Union

from .metrics import Histogram, MetricsRegistry
from .trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from . import Observability

__all__ = [
    "obs_to_dict",
    "obs_to_json",
    "render_metrics",
    "render_report",
    "render_spans",
    "to_prometheus",
]


def _fmt_duration(seconds: Union[float, None]) -> str:
    if seconds is None:
        return "open"
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def _fmt_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attributes.items())
    return f"  {{{inner}}}"


def _span_lines(span: Span, depth: int, lines: list) -> None:
    indent = "  " * depth
    lines.append(f"{_fmt_duration(span.duration)}  {indent}"
                 f"{span.name}{_fmt_attrs(span.attributes)}")
    for child in span.children:
        _span_lines(child, depth + 1, lines)


def render_spans(tracer: Tracer) -> str:
    """The span forest as an indented tree, durations left-aligned."""
    lines: list = []
    for root in tracer.roots:
        _span_lines(root, 0, lines)
    return "\n".join(lines)


def _fmt_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_metrics(registry: MetricsRegistry) -> str:
    """Counters/gauges as an aligned table; histograms as summaries."""
    rows = []
    for inst in registry.collect():
        labels = ",".join(f"{k}={v}" for k, v in inst.labels)
        name = f"{inst.name}{{{labels}}}" if labels else inst.name
        if isinstance(inst, Histogram):
            mean = f"{inst.mean:.6g}" if inst.count else "-"
            rows.append((name, f"count={inst.count} sum="
                         f"{_fmt_value(inst.total)} mean={mean}"))
        else:
            rows.append((name, _fmt_value(inst.value)))
    if not rows:
        return ""
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def render_report(obs: "Observability") -> str:
    """Span tree + counter table, the `repro-xic profile` output."""
    parts = []
    spans = render_spans(obs.tracer)
    if spans:
        parts.append("== spans ==\n" + spans)
    metrics = render_metrics(obs.metrics)
    if metrics:
        parts.append("== metrics ==\n" + metrics)
    return "\n\n".join(parts)


def obs_to_dict(obs: "Observability") -> dict:
    return {"spans": obs.tracer.to_dicts(),
            "metrics": obs.metrics.to_dicts()}


def obs_to_json(obs: "Observability", indent: Union[int, None] = 2) -> str:
    # sort_keys: merged multi-worker reports must be stable and diffable
    # regardless of the order workers reported in.
    return json.dumps(obs_to_dict(obs), indent=indent, sort_keys=True)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    # HELP text escapes backslash and newline only (quotes stay raw),
    # per the text exposition format.
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(items: Iterable) -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in items]
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value: Union[int, float, None]) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _exemplar_suffix(exemplar: "dict | None") -> str:
    """OpenMetrics-style exemplar: `` # {trace_id="..."} value``."""
    if not exemplar or not exemplar.get("trace_id"):
        return ""
    labels = _prom_labels((("trace_id", str(exemplar["trace_id"])),))
    return f" # {labels} {_prom_number(exemplar['value'])}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Histogram bucket samples carry OpenMetrics-style exemplars when the
    instrument recorded any (``observe(v, trace_id=...)``): the bucket
    line gains `` # {trace_id="..."} value`` linking the bucket to one
    recent trace.  Scrapers that predate exemplars ignore everything
    after ``#``.
    """
    lines: list = []
    seen: set = set()
    for inst in registry.collect():
        if inst.name not in seen:
            seen.add(inst.name)
            if inst.help:
                lines.append(f"# HELP {inst.name} "
                             f"{_escape_help(inst.help)}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, Histogram):
            cumulative = 0
            below = dict(zip(inst.buckets, inst.bucket_counts))
            for i, bound in enumerate(inst.buckets):
                cumulative = below[bound]
                items = inst.labels + (("le", _prom_number(bound)),)
                lines.append(f"{inst.name}_bucket{_prom_labels(items)} "
                             f"{cumulative}"
                             f"{_exemplar_suffix(inst.exemplars[i])}")
            items = inst.labels + (("le", "+Inf"),)
            lines.append(f"{inst.name}_bucket{_prom_labels(items)} "
                         f"{inst.count}"
                         f"{_exemplar_suffix(inst.exemplars[-1])}")
            lines.append(f"{inst.name}_sum{_prom_labels(inst.labels)} "
                         f"{_prom_number(inst.total)}")
            lines.append(f"{inst.name}_count{_prom_labels(inst.labels)} "
                         f"{inst.count}")
        else:
            lines.append(f"{inst.name}{_prom_labels(inst.labels)} "
                         f"{_prom_number(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
