"""Request-scoped trace context.

A :class:`TraceContext` identifies one logical request: a 128-bit
``trace_id`` shared by every span the request touches, the ``span_id``
of the enclosing span (the parent for whatever is opened next), and the
sampling decision.  The active context travels three ways:

- **in-process** via :mod:`contextvars` — :func:`activate` installs a
  context for a ``with`` block, and :class:`~repro.obs.trace.Tracer`
  stamps every root span it opens from :func:`current_context`;
- **across the multiprocessing boundary** as a *traceparent* string in
  the corpus pool's ``init_worker`` initargs, so worker spans carry the
  originating request's trace_id and re-parent on merge;
- **across HTTP/JSONL** as a ``traceparent`` header/field in the
  W3C Trace Context wire format::

      00-<32 hex trace_id>-<16 hex span_id>-<01|00>

  (version, trace-id, parent-id, flags; flag bit 0 is "sampled").

Identifiers are random (``os.urandom``), never derived from content, so
two validations of the same document still get distinct traces.
"""

from __future__ import annotations

import contextvars
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

__all__ = [
    "TraceContext",
    "activate",
    "current_context",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: The all-zero ids are invalid per the W3C spec.
_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


def new_trace_id() -> str:
    """A fresh random 128-bit trace id as 32 lowercase hex digits."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh random 64-bit span id as 16 lowercase hex digits."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: ``(trace_id, span_id, sampled)``.

    ``span_id`` names the *enclosing* span — the span a child opened
    under this context should record as its parent.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def new(cls, sampled: bool = True) -> "TraceContext":
        """A root context with fresh random identifiers."""
        return cls(new_trace_id(), new_span_id(), sampled)

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """The context one nesting level down: same trace, new parent."""
        return replace(self, span_id=span_id or new_span_id())

    def with_sampled(self, sampled: bool) -> "TraceContext":
        return replace(self, sampled=sampled)

    def to_traceparent(self) -> str:
        """Serialize to the W3C ``traceparent`` wire format."""
        return f"00-{self.trace_id}-{self.span_id}-" \
               f"{'01' if self.sampled else '00'}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_traceparent()


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` when absent/malformed.

    Tolerant by design — telemetry must never fail a request — so any
    value that does not match the version-00 grammar (or carries the
    invalid all-zero ids) is simply ignored.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id, flags = match.groups()
    if trace_id == _ZERO_TRACE or span_id == _ZERO_SPAN:
        return None
    try:
        sampled = bool(int(flags, 16) & 0x01)
    except ValueError:  # pragma: no cover - regex already guarantees hex
        return None
    return TraceContext(trace_id, span_id, sampled)


_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = \
    contextvars.ContextVar("repro_trace_context", default=None)


def current_context() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` outside a request."""
    return _CURRENT.get()


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[
        Optional[TraceContext]]:
    """Install ``ctx`` as the current context for the ``with`` block.

    ``activate(None)`` is a no-op context manager, so callers can write
    ``with activate(maybe_ctx):`` without branching.
    """
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
