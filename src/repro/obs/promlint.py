"""In-repo linter for the Prometheus text exposition format.

:func:`lint_exposition` parses a full ``/metrics`` scrape and returns a
list of problems (empty = clean).  It enforces what a real scraper
cares about, per the text format (version 0.0.4) plus the
OpenMetrics-style exemplar suffix this repo emits:

- metric and label names match the Prometheus grammar;
- label values use only the three legal escapes (``\\\\``, ``\\"``,
  ``\\n``) and every brace/quote is balanced;
- sample values parse as floats (``NaN``/``+Inf``/``-Inf`` included);
- ``# TYPE`` precedes the samples of its family and is declared once;
- every histogram family emits a ``+Inf`` bucket, ``_sum`` and
  ``_count`` per label set, with cumulative (non-decreasing) buckets
  and ``_count`` equal to the ``+Inf`` bucket;
- exemplars (``... # {trace_id="..."} value``) only appear on bucket
  samples and themselves parse.

Used by ``tests/test_metrics_exposition.py`` against a live server and
by the CI telemetry round-trip.
"""

from __future__ import annotations

import math
import re

__all__ = ["lint_exposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_number(text: str) -> "float | None":
    try:
        return float(text)
    except ValueError:
        return None


def _split_labels(body: str, where: str, problems: "list[str]"
                  ) -> "dict[str, str] | None":
    """Parse the inside of ``{...}``; None on malformed syntax."""
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            problems.append(f"{where}: label without '=' in {body!r}")
            return None
        name = body[i:eq].strip().lstrip(",").strip()
        if not _LABEL_NAME_RE.match(name):
            problems.append(f"{where}: invalid label name {name!r}")
            return None
        i = eq + 1
        if i >= n or body[i] != '"':
            problems.append(f"{where}: label value for {name!r} is "
                            "not quoted")
            return None
        i += 1
        value_chars: list[str] = []
        while i < n:
            ch = body[i]
            if ch == "\\":
                if i + 1 >= n or body[i + 1] not in ('\\', '"', 'n'):
                    problems.append(
                        f"{where}: illegal escape in label {name!r}")
                    return None
                value_chars.append(
                    "\n" if body[i + 1] == "n" else body[i + 1])
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                problems.append(f"{where}: raw newline in label "
                                f"{name!r}")
                return None
            else:
                value_chars.append(ch)
                i += 1
        else:
            problems.append(f"{where}: unterminated label value for "
                            f"{name!r}")
            return None
        labels[name] = "".join(value_chars)
        while i < n and body[i] in ", ":
            i += 1
    return labels


def _parse_sample(line: str, where: str, problems: "list[str]"
                  ) -> "tuple[str, dict, float] | None":
    """Parse ``name{labels} value [# {...} value]``; None on error."""
    exemplar = None
    if " # " in line:
        line, _, exemplar = line.partition(" # ")
        line = line.rstrip()
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            problems.append(f"{where}: unbalanced braces")
            return None
        name = line[:brace]
        labels = _split_labels(line[brace + 1:close], where, problems)
        if labels is None:
            return None
        rest = line[close + 1:].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            problems.append(f"{where}: sample without a value")
            return None
        name, rest = parts[0], parts[1].strip()
        labels = {}
    if not _NAME_RE.match(name):
        problems.append(f"{where}: invalid metric name {name!r}")
        return None
    value_text = rest.split()[0] if rest else ""
    value = _parse_number(value_text)
    if value is None:
        problems.append(f"{where}: unparseable value {value_text!r}")
        return None
    if exemplar is not None:
        if not name.endswith("_bucket"):
            problems.append(f"{where}: exemplar on non-bucket sample "
                            f"{name!r}")
        ex = exemplar.strip()
        if not ex.startswith("{"):
            problems.append(f"{where}: malformed exemplar {ex!r}")
        else:
            close = ex.rfind("}")
            if close < 0:
                problems.append(f"{where}: unterminated exemplar")
            else:
                ex_labels = _split_labels(ex[1:close], where, problems)
                ex_value = _parse_number(ex[close + 1:].strip() or "")
                if ex_labels is None or ex_value is None:
                    problems.append(
                        f"{where}: unparseable exemplar {ex!r}")
    return name, labels, value


def _family(name: str, types: "dict[str, str]") -> "str | None":
    """The declared family a sample belongs to (histogram samples use
    suffixed names)."""
    if name in types:
        return name
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[:-len(suffix)] in types:
            return name[:-len(suffix)]
    return None


def lint_exposition(text: str) -> "list[str]":
    """Lint a full text-format scrape; returns problems (empty=clean)."""
    problems: list[str] = []
    types: dict[str, str] = {}
    # histogram family -> label-set-key -> {"buckets": [(le, v)],
    #                                       "sum": v, "count": v}
    histograms: dict[str, dict] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    problems.append(f"{where}: malformed TYPE comment")
                    continue
                name, kind = parts[2], parts[3].strip()
                if not _NAME_RE.match(name):
                    problems.append(
                        f"{where}: invalid name in TYPE {name!r}")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    problems.append(
                        f"{where}: unknown TYPE kind {kind!r}")
                if name in types:
                    problems.append(
                        f"{where}: duplicate TYPE for {name!r}")
                types.setdefault(name, kind)
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    problems.append(f"{where}: malformed HELP comment")
                elif len(parts) == 4 and not re.fullmatch(
                        r"(?:[^\\]|\\[\\n])*", parts[3]):
                    # tokenize escape pairs, so "\\ " is one legal
                    # escaped backslash, not an illegal "\ "
                    problems.append(
                        f"{where}: illegal escape in HELP text")
            # other comments are legal and ignored
            continue
        parsed = _parse_sample(line.strip(), where, problems)
        if parsed is None:
            continue
        name, labels, value = parsed
        family = _family(name, types)
        if family is None:
            problems.append(f"{where}: sample {name!r} has no "
                            "preceding TYPE declaration")
            continue
        if types[family] == "histogram":
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            entry = histograms.setdefault(family, {}).setdefault(
                key, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(f"{where}: bucket sample without "
                                    "an 'le' label")
                else:
                    entry["buckets"].append((labels["le"], value))
            elif name.endswith("_sum"):
                entry["sum"] = value
            elif name.endswith("_count"):
                entry["count"] = value
            else:
                problems.append(f"{where}: histogram family "
                                f"{family!r} has a bare sample {name!r}")

    for family, series in histograms.items():
        for key, entry in series.items():
            label_note = f"{family}{{{dict(key)}}}" if key else family
            bucket_bounds = [le for le, _ in entry["buckets"]]
            if "+Inf" not in bucket_bounds:
                problems.append(f"{label_note}: histogram is missing "
                                "the +Inf bucket")
            if entry["sum"] is None:
                problems.append(f"{label_note}: histogram is missing "
                                "_sum")
            if entry["count"] is None:
                problems.append(f"{label_note}: histogram is missing "
                                "_count")
            counts = [v for _, v in entry["buckets"]]
            if any(b > a for a, b in zip(counts[1:], counts)):
                problems.append(f"{label_note}: bucket counts are not "
                                "cumulative")
            if entry["buckets"] and entry["count"] is not None:
                inf = [v for le, v in entry["buckets"] if le == "+Inf"]
                if inf and not math.isclose(inf[0], entry["count"]):
                    problems.append(
                        f"{label_note}: +Inf bucket ({inf[0]}) != "
                        f"_count ({entry['count']})")
    return problems
