"""Structured event log: leveled, coded, trace-correlated.

An :class:`EventLog` records discrete happenings — schema reloads,
cache hits, admission rejects, slow requests — as JSON-safe dicts::

    {"ts": 1699.123456, "level": "info", "code": "cache-hit",
     "message": "...", "trace_id": "4bf9...", "attrs": {...}}

Events are ring-buffered (bounded memory in a long-lived server) and
optionally appended to a durable JSONL file (``--log-file``).  The
``trace_id`` is picked up automatically from the active
:class:`~repro.obs.context.TraceContext`, so every event emitted while
a request is in flight correlates with that request's spans.

The disabled counterpart :data:`NULL_EVENTS` accepts every emit and
records nothing, following the ``NULL_OBS`` idiom.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO, Optional

from .context import current_context

__all__ = ["EventLog", "LEVELS", "NULL_EVENTS", "NullEventLog"]

#: Level names in increasing severity; ``emit`` drops anything below
#: the log's configured threshold.
LEVELS: "dict[str, int]" = {"debug": 10, "info": 20, "warn": 30,
                            "error": 40}


class EventLog:
    """Bounded in-memory event ring with optional durable JSONL append.

    Parameters
    ----------
    capacity:
        Ring size; the oldest event is dropped (and counted in
        :attr:`dropped`) once full.  The durable file, when configured,
        keeps everything.
    path:
        Append events as JSONL to this file (opened lazily, flushed per
        event so ``tail -f`` works on a live server).
    level:
        Minimum level to record (default ``"debug"`` records all).
    """

    enabled = True

    def __init__(self, capacity: int = 2048,
                 path: "str | None" = None,
                 level: str = "debug"):
        if level not in LEVELS:
            raise ValueError(f"unknown event level {level!r} "
                             f"(known: {', '.join(sorted(LEVELS))})")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.level = level
        self.path = path
        self.emitted = 0
        self.dropped = 0
        self._min = LEVELS[level]
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None

    # -- recording ---------------------------------------------------

    def emit(self, level: str, code: str, message: str = "",
             **attrs: object) -> Optional[dict]:
        """Record one event; returns the event dict (or ``None`` when
        filtered by level).  ``trace_id`` comes from the active
        :class:`TraceContext`."""
        if LEVELS.get(level, LEVELS["info"]) < self._min:
            return None
        ctx = current_context()
        event = {
            "ts": round(time.time(), 6),
            "level": level,
            "code": code,
            "message": message,
            "trace_id": ctx.trace_id if ctx is not None else None,
            "attrs": dict(attrs),
        }
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.emitted += 1
            if self.path is not None:
                if self._fh is None:
                    self._fh = open(self.path, "a", encoding="utf-8")
                self._fh.write(json.dumps(event, sort_keys=True) + "\n")
                self._fh.flush()
        return event

    def debug(self, code: str, message: str = "",
              **attrs: object) -> Optional[dict]:
        return self.emit("debug", code, message, **attrs)

    def info(self, code: str, message: str = "",
             **attrs: object) -> Optional[dict]:
        return self.emit("info", code, message, **attrs)

    def warn(self, code: str, message: str = "",
             **attrs: object) -> Optional[dict]:
        return self.emit("warn", code, message, **attrs)

    def error(self, code: str, message: str = "",
              **attrs: object) -> Optional[dict]:
        return self.emit("error", code, message, **attrs)

    def absorb(self, events: "list[dict]") -> None:
        """Fold already-formed event dicts (a worker's export) in."""
        with self._lock:
            for event in events:
                if len(self._ring) == self.capacity:
                    self.dropped += 1
                self._ring.append(dict(event))
                self.emitted += 1
                if self.path is not None:
                    if self._fh is None:
                        self._fh = open(self.path, "a", encoding="utf-8")
                    self._fh.write(json.dumps(event, sort_keys=True)
                                   + "\n")
                    self._fh.flush()

    # -- reading -----------------------------------------------------

    def tail(self, n: int = 20) -> "list[dict]":
        """The most recent ``n`` events, oldest first."""
        with self._lock:
            items = list(self._ring)
        return items[-n:] if n >= 0 else items

    def to_dicts(self) -> "list[dict]":
        with self._lock:
            return [dict(e) for e in self._ring]

    def counts(self) -> dict:
        """Per-level event counts over the retained ring."""
        out = {name: 0 for name in LEVELS}
        with self._lock:
            for event in self._ring:
                level = event.get("level", "info")
                out[level] = out.get(level, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return True

    # -- lifecycle ---------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventLog {len(self._ring)}/{self.capacity} "
                f"level={self.level} path={self.path!r}>")


class NullEventLog:
    """Disabled event log: accepts every emit, records nothing."""

    __slots__ = ()

    enabled = False
    capacity = 0
    level = "error"
    path = None
    emitted = 0
    dropped = 0

    def emit(self, level: str, code: str, message: str = "",
             **attrs: object) -> None:
        return None

    def debug(self, code: str, message: str = "",
              **attrs: object) -> None:
        return None

    def info(self, code: str, message: str = "",
             **attrs: object) -> None:
        return None

    def warn(self, code: str, message: str = "",
             **attrs: object) -> None:
        return None

    def error(self, code: str, message: str = "",
              **attrs: object) -> None:
        return None

    def absorb(self, events: "list[dict]") -> None:
        return None

    def tail(self, n: int = 20) -> list:
        return []

    def to_dicts(self) -> list:
        return []

    def counts(self) -> dict:
        return {}

    def clear(self) -> None:
        return None

    def close(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return False


NULL_EVENTS = NullEventLog()
