"""Nested wall-clock spans.

A :class:`Span` times one region of work and remembers its name, its
attributes, and its children; a :class:`Tracer` maintains the current
span stack so that spans opened while another span is active nest under
it.  Spans are context managers::

    tracer = Tracer()
    with tracer.span("validate", vertices=doc.size()):
        with tracer.span("validate.structure"):
            ...

and functions can be wrapped wholesale::

    @tracer.traced("index.build")
    def build(): ...

The disabled counterpart — :data:`NULL_TRACER` handing out the shared
:data:`NULL_SPAN` — does nothing and allocates nothing, so library code
can thread a tracer unconditionally.  Time is measured with
``time.perf_counter`` and reported in seconds.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Iterable, Iterator, Optional

from .context import TraceContext, current_context, new_span_id

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
]


class Span:
    """One timed region: name, wall time, attributes, children.

    When a :class:`~repro.obs.context.TraceContext` is active (or the
    parent span carries one), the span also records its identity —
    ``trace_id`` / ``span_id`` / ``parent_span_id`` — so traces survive
    export, the multiprocessing boundary, and re-parenting on merge.
    Spans opened outside any request context stay id-free and their
    exported dicts are unchanged.
    """

    __slots__ = ("name", "attributes", "parent", "children",
                 "start", "end", "_tracer",
                 "trace_id", "span_id", "parent_span_id")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Optional[dict] = None):
        self.name = name
        self.attributes: dict = dict(attributes) if attributes else {}
        self.parent: Optional[Span] = None
        self.children: list[Span] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self._tracer = tracer
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        """Wall time in seconds, or None while the span is open."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach or update attributes on the span."""
        self.attributes.update(attributes)
        return self

    def context(self) -> Optional[TraceContext]:
        """The :class:`TraceContext` naming *this* span as the parent
        (what a child process/request should inherit), or ``None`` for
        an id-free span."""
        if self.trace_id is None or self.span_id is None:
            return None
        return TraceContext(self.trace_id, self.span_id, True)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        self._tracer._pop(self)

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }
        # Identity fields ride along only when the span belongs to a
        # trace, so id-free exports stay byte-identical to older ones.
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            out["parent_span_id"] = self.parent_span_id
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.duration * 1e3:.3f}ms" if self.duration is not None \
            else "open"
        return f"Span({self.name!r}, {dur}, children={len(self.children)})"


class Tracer:
    """Builds a forest of nested :class:`Span`s via a span stack."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: span_id -> Span, for re-parenting adopted worker spans
        self._by_id: dict[str, Span] = {}

    def span(self, name: str, **attributes: Any) -> Span:
        """Create a span; nesting is decided when it is *entered*."""
        return Span(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def traced(self, name: Optional[str] = None,
               **attributes: Any) -> Callable:
        """Decorator: run the function inside a span named after it."""
        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    def clear(self) -> None:
        self.roots = []
        self._stack = []
        self._by_id = {}

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    def adopt(self, span_dicts: Iterable[dict]) -> None:
        """Attach spans exported by another tracer's :meth:`to_dicts`.

        A rebuilt span that names a ``parent_span_id`` this tracer has
        seen re-parents under that exact span — this is how worker-
        process spans land under the originating request's span instead
        of a flat merge.  Spans without a resolvable parent nest under
        the currently open span (or become roots).  Start/end are
        synthesized from the recorded duration, so only durations — not
        absolute times — survive the crossing.
        """
        for d in span_dicts:
            span = self._span_from_dict(d)
            parent: Optional[Span] = None
            parent_id = d.get("parent_span_id")
            if parent_id is not None:
                parent = self._by_id.get(parent_id)
            if parent is None:
                parent = self.current
            if parent is not None:
                span.parent = parent
                parent.children.append(span)
            else:
                self.roots.append(span)

    def _span_from_dict(self, d: dict) -> Span:
        span = Span(self, d["name"], d.get("attributes"))
        duration = d.get("duration_s")
        if duration is not None:
            span.start, span.end = 0.0, duration
        span.trace_id = d.get("trace_id")
        span.span_id = d.get("span_id")
        span.parent_span_id = d.get("parent_span_id")
        if span.span_id is not None:
            self._by_id.setdefault(span.span_id, span)
        for child_dict in d.get("children", ()):
            child = self._span_from_dict(child_dict)
            child.parent = span
            span.children.append(child)
        return span

    # -- internal ----------------------------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            parent = self._stack[-1]
            span.parent = parent
            parent.children.append(span)
            if parent.trace_id is not None:
                span.trace_id = parent.trace_id
                span.parent_span_id = parent.span_id
        else:
            # A new root picks up the ambient request context, if any.
            ctx = current_context()
            if ctx is not None and ctx.sampled:
                span.trace_id = ctx.trace_id
                span.parent_span_id = ctx.span_id
            self.roots.append(span)
        if span.trace_id is not None and span.span_id is None:
            span.span_id = new_span_id()
            self._by_id[span.span_id] = span
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits rather than corrupt the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)


class NullSpan:
    """Shared inert span: every operation is a no-op."""

    __slots__ = ()

    name = ""
    attributes: dict = {}
    parent = None
    children: tuple = ()
    start = None
    end = None
    duration = None
    trace_id = None
    span_id = None
    parent_span_id = None

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def context(self) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracer: hands out :data:`NULL_SPAN`, records nothing."""

    __slots__ = ()

    enabled = False
    roots: tuple = ()
    current = None

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return NULL_SPAN

    def traced(self, name: Optional[str] = None,
               **attributes: Any) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn
        return decorate

    def clear(self) -> None:
        return None

    def to_dicts(self) -> list:
        return []

    def adopt(self, span_dicts: Iterable[dict]) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_TRACER = NullTracer()
