"""Nested wall-clock spans.

A :class:`Span` times one region of work and remembers its name, its
attributes, and its children; a :class:`Tracer` maintains the current
span stack so that spans opened while another span is active nest under
it.  Spans are context managers::

    tracer = Tracer()
    with tracer.span("validate", vertices=doc.size()):
        with tracer.span("validate.structure"):
            ...

and functions can be wrapped wholesale::

    @tracer.traced("index.build")
    def build(): ...

The disabled counterpart — :data:`NULL_TRACER` handing out the shared
:data:`NULL_SPAN` — does nothing and allocates nothing, so library code
can thread a tracer unconditionally.  Time is measured with
``time.perf_counter`` and reported in seconds.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
]


class Span:
    """One timed region: name, wall time, attributes, children."""

    __slots__ = ("name", "attributes", "parent", "children",
                 "start", "end", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Optional[dict] = None):
        self.name = name
        self.attributes: dict = dict(attributes) if attributes else {}
        self.parent: Optional[Span] = None
        self.children: list[Span] = []
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self._tracer = tracer

    @property
    def duration(self) -> Optional[float]:
        """Wall time in seconds, or None while the span is open."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach or update attributes on the span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        self._tracer._pop(self)

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = f"{self.duration * 1e3:.3f}ms" if self.duration is not None \
            else "open"
        return f"Span({self.name!r}, {dur}, children={len(self.children)})"


class Tracer:
    """Builds a forest of nested :class:`Span`s via a span stack."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """Create a span; nesting is decided when it is *entered*."""
        return Span(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def traced(self, name: Optional[str] = None,
               **attributes: Any) -> Callable:
        """Decorator: run the function inside a span named after it."""
        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    def clear(self) -> None:
        self.roots = []
        self._stack = []

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    def adopt(self, span_dicts: Iterable[dict]) -> None:
        """Attach spans exported by another tracer's :meth:`to_dicts`.

        The rebuilt spans nest under the currently open span (or become
        roots).  Start/end are synthesized from the recorded duration,
        so only durations — not absolute times — survive the crossing;
        that is exactly what merging per-worker traces needs.
        """
        for d in span_dicts:
            span = self._span_from_dict(d)
            parent = self.current
            if parent is not None:
                span.parent = parent
                parent.children.append(span)
            else:
                self.roots.append(span)

    def _span_from_dict(self, d: dict) -> Span:
        span = Span(self, d["name"], d.get("attributes"))
        duration = d.get("duration_s")
        if duration is not None:
            span.start, span.end = 0.0, duration
        for child_dict in d.get("children", ()):
            child = self._span_from_dict(child_dict)
            child.parent = span
            span.children.append(child)
        return span

    # -- internal ----------------------------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            span.parent = self._stack[-1]
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits rather than corrupt the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)


class NullSpan:
    """Shared inert span: every operation is a no-op."""

    __slots__ = ()

    name = ""
    attributes: dict = {}
    parent = None
    children: tuple = ()
    start = None
    end = None
    duration = None

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracer: hands out :data:`NULL_SPAN`, records nothing."""

    __slots__ = ()

    enabled = False
    roots: tuple = ()
    current = None

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return NULL_SPAN

    def traced(self, name: Optional[str] = None,
               **attributes: Any) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn
        return decorate

    def clear(self) -> None:
        return None

    def to_dicts(self) -> list:
        return []

    def adopt(self, span_dicts: Iterable[dict]) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_TRACER = NullTracer()
