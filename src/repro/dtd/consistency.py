"""Consistency of a ``DTD^C``: does it admit any valid document?

The paper treats implication assuming models exist; the interaction
between structural requirements ("every book has exactly one entry")
and constraints that force extensions to be empty is the degenerate
corner documented in :mod:`repro.implication.lid` — and the question
the authors' follow-up work (Fan & Libkin, PODS 2001) made central.
This module implements the tractable part:

- :func:`required_types` — element types with at least one mandatory
  occurrence in every valid document (min-occurrence analysis of the
  content models, propagated from the root);
- :func:`vacuous_types` — element types whose extension is empty in
  every model of Σ (from the ``L_id`` multi-target degeneracy, closed
  under "a required child of an empty type is pointless" … the reverse
  direction: a type whose *mandatory* attribute can never be satisfied
  is itself empty, and emptiness propagates up through mandatory
  containment);
- :func:`consistency_report` — the conflict set: types that are both
  required and vacuous.  A non-empty conflict set means **no valid
  document exists**, so every implication statement about the schema is
  vacuously true — the report is the guard rail around the §3 engines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.constraints.base import Language
from repro.constraints.wellformed import language_of
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.implication.lid import LidEngine
from repro.regexlang.properties import occurrence_bounds, symbols_of


def required_types(structure: DTDStructure) -> set[str]:
    """Types with ≥1 occurrence in *every* valid document.

    A type is required when it lies on a chain of mandatory containment
    from the root: the root is required, and a child type with a
    positive minimum occurrence count in a required parent's content
    model is required.
    """
    required = {structure.root}
    queue = deque((structure.root,))
    while queue:
        t = queue.popleft()
        content = structure.content(t)
        for child in symbols_of(content):
            if child == "S" or child in required:
                continue
            lo, _hi = occurrence_bounds(content, child)
            if lo >= 1:
                required.add(child)
                queue.append(child)
    return required


def vacuous_types(dtd: DTDC) -> set[str]:
    """Types whose extension must be empty in every model of Σ.

    Seeds: the ``L_id`` multi-target degeneracy (one single-valued
    IDREF attribute with foreign keys into two different types — the
    target ID sets are disjoint, so no source element can exist).
    Closure: if a type's content model *requires* a child of a vacuous
    type, the parent is vacuous too (its mandatory child cannot exist).
    """
    try:
        language = language_of(dtd.constraints) if dtd.constraints \
            else Language.LID
    except Exception:
        return set()
    if not language & Language.LID:
        return set()
    empty = set(LidEngine(dtd.constraints).vacuous_types())
    structure = dtd.structure
    changed = True
    while changed:
        changed = False
        for t in structure.element_types:
            if t in empty:
                continue
            content = structure.content(t)
            for child in symbols_of(content):
                if child in empty and \
                        occurrence_bounds(content, child)[0] >= 1:
                    empty.add(t)
                    changed = True
                    break
    return empty


@dataclass
class ConsistencyReport:
    """The outcome of a consistency check."""

    required: set[str] = field(default_factory=set)
    vacuous: set[str] = field(default_factory=set)

    @property
    def conflicts(self) -> set[str]:
        """Types that must occur but cannot: the inconsistency witnesses."""
        return self.required & self.vacuous

    @property
    def consistent(self) -> bool:
        """Whether valid documents can exist (no conflict detected).

        ``True`` is a *no conflict found* verdict from the tractable
        analysis, not a completeness guarantee — full ``DTD^C``
        satisfiability is beyond this paper (see Fan & Libkin 2001).
        """
        return not self.conflicts

    def __bool__(self) -> bool:
        return self.consistent

    def __str__(self) -> str:
        if self.consistent:
            return ("consistent (no required type is constraint-forced "
                    "to be empty)")
        inner = ", ".join(sorted(self.conflicts))
        return (f"INCONSISTENT: type(s) {{{inner}}} are required by the "
                "content models but have necessarily empty extensions "
                "under Sigma — no valid document exists")


def consistency_report(dtd: DTDC) -> ConsistencyReport:
    """Check the ``DTD^C`` for the detectable inconsistency pattern."""
    return ConsistencyReport(required=required_types(dtd.structure),
                             vacuous=vacuous_types(dtd))
