"""Document validity (Definition 2.4).

A data tree ``G`` is valid with respect to ``D = (S, Σ)`` iff

1. the root's label is the root element type ``r``,
2. every vertex's label is a declared element type and its child-label
   word belongs to the language of its content model,
3. ``att(v, l)`` is defined exactly for the declared attributes of the
   vertex's type, and single-valued attributes hold singleton sets,
4. ``G ⊨ Σ``.

:func:`validate` returns a :class:`ValidationReport` combining the
structural and constraint findings; :func:`validate_strict` raises
:class:`~repro.errors.ValidationError` on any problem.
"""

from __future__ import annotations

from repro.constraints.checker import check as check_constraints
from repro.constraints.violations import ViolationReport
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import ValidationError
from repro.obs import NULL_OBS
from repro.regexlang.automaton import matcher_for


class ValidationReport(ViolationReport):
    """A :class:`ViolationReport` with structural/constraint breakdown."""

    @property
    def structural(self) -> list:
        """Violations of points 1-3 of Definition 2.4."""
        return [v for v in self.violations
                if v.code in ("root", "element", "content-model",
                              "attribute")]

    @property
    def constraint(self) -> list:
        """Violations of ``G ⊨ Σ``."""
        return [v for v in self.violations if v not in self.structural]


def validate_structure(tree: DataTree, structure: DTDStructure,
                       obs=None) -> ValidationReport:
    """Check points 1-3 of Definition 2.4 (no constraints)."""
    obs = obs or NULL_OBS
    report = ValidationReport()
    with obs.span("validate.structure") as span:
        _validate_structure(tree, structure, report)
        span.set(violations=len(report))
        if obs.enabled:
            obs.counter(
                "validate_vertices_checked",
                help="vertices examined by the structural pass",
            ).add(tree.size())
            obs.counter(
                "validate_structural_violations",
                help="Definition 2.4 point 1-3 violations emitted",
            ).add(len(report))
    return report


def _validate_structure(tree: DataTree, structure: DTDStructure,
                        report: ValidationReport) -> None:
    if tree.root.label != structure.root:
        report.add("root",
                   f"root is {tree.root.label!r}, expected "
                   f"{structure.root!r}", vertices=(tree.root,))
    for v in tree.root.subtree():
        if not structure.has_element(v.label):
            report.add("element",
                       f"undeclared element type {v.label!r}",
                       vertices=(v,))
            continue
        word = v.child_labels
        matcher = matcher_for(structure.content(v.label))
        if not matcher.matches(word):
            viable = matcher.prefix_length(word)
            expected = sorted(matcher.expected_after(word[:viable]))
            report.add(
                "content-model",
                f"children of {v.label!r} do not match its content model"
                f" (stuck after {viable} child(ren); expected one of "
                f"{expected})", vertices=(v,))
        declared = structure.attributes(v.label)
        for attr_name, values in v.attributes.items():
            if attr_name not in declared:
                report.add("attribute",
                           f"undeclared attribute {v.label}.{attr_name}",
                           vertices=(v,))
            elif not structure.is_set_valued(v.label, attr_name) and \
                    len(values) != 1:
                report.add(
                    "attribute",
                    f"single-valued attribute {v.label}.{attr_name} holds "
                    f"{len(values)} values", vertices=(v,))
        for attr_name in declared:
            if not v.has_attribute(attr_name):
                report.add("attribute",
                           f"missing attribute {v.label}.{attr_name}",
                           vertices=(v,))


def validate(tree: DataTree, dtd: DTDC, obs=None) -> ValidationReport:
    """Full Definition 2.4 validity: structure plus ``G ⊨ Σ``.

    ``obs`` is an optional :class:`repro.obs.Observability` handle; when
    enabled, the call produces a ``validate`` span with
    ``validate.structure`` and ``check`` children plus the evaluator
    counters.

    .. deprecated::
        Prefer the unified facade:
        ``repro.Validator(dtd).validate(tree)``.  This function remains
        as a thin shim and is not going away, but new code should use
        the facade so document/schema argument order is consistent
        across the package.
    """
    obs = obs or NULL_OBS
    with obs.span("validate") as span:
        report = validate_structure(tree, dtd.structure, obs=obs)
        report.merge(check_constraints(tree, dtd.constraints,
                                       dtd.structure, obs=obs))
        if obs.enabled:
            span.set(vertices=tree.size(), violations=len(report))
    return report


def validate_strict(tree: DataTree, dtd: DTDC, obs=None) -> None:
    """Like :func:`validate` but raises on any violation.

    .. deprecated::
        Prefer ``repro.Validator(dtd).validate_strict(tree)``.
    """
    report = validate(tree, dtd, obs=obs)
    if not report.ok:
        raise ValidationError(report)


def lint_structure(structure: DTDStructure) -> list[str]:
    """Schema-quality warnings that are not Definition 2.4 violations.

    Backward-compatible wrapper over the ``XIC101``
    (non-1-unambiguous content model) rule of :mod:`repro.analysis`,
    which now owns schema linting; use
    :func:`repro.analysis.analyze_structure` directly for the full
    structural rule family with codes and severities.
    """
    from repro.analysis import analyze_structure

    return [d.message for d in analyze_structure(structure)
            if d.code == "XIC101"]
