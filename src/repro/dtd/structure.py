"""DTD structures: ``S = (E, P, R, kind, r)`` (Definition 2.2).

- ``E``    — finite set of element types;
- ``P``    — element type definitions: ``P(tau)`` is a content-model
  regular expression over ``E ∪ {S}``;
- ``R``    — attribute type definitions: ``R(tau, l)`` is ``S``
  (single-valued) or ``S*`` (set-valued);
- ``kind`` — partial function marking attributes ``ID`` or ``IDREF``
  (``IDREFS`` is represented as kind ``IDREF`` on a set-valued
  attribute, exactly as in the paper's person/dept example);
- ``r``    — the root element type.

The class enforces the side conditions of Definition 2.2 eagerly:
``kind`` is only defined where ``R`` is, each element type has at most
one ID attribute, and ID attributes are single-valued.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.errors import SchemaError
from repro.regexlang.ast import ATOMIC, EPSILON, Regex
from repro.regexlang.parse import parse_regex
from repro.regexlang.properties import symbols_of, unique_subelements


class AttributeKind(enum.Enum):
    """The ``kind`` annotation of an attribute (when defined)."""

    ID = "ID"
    IDREF = "IDREF"


class DTDStructure:
    """The structural specification of a DTD.

    Build one programmatically::

        s = DTDStructure(root="book")
        s.define_element("book", "(entry, author*, section*, ref)")
        s.define_element("entry", "(title, publisher)")
        s.define_attribute("entry", "isbn")
        s.define_attribute("ref", "to", set_valued=True)

    or parse one from DTD text with
    :func:`repro.xmlio.dtdparse.parse_dtd`.
    """

    def __init__(self, root: str):
        if not root:
            raise SchemaError("a DTD structure needs a root element type")
        self.root = root
        self._content: dict[str, Regex] = {}
        self._attributes: dict[str, dict[str, bool]] = {}  # tau -> l -> set_valued
        self._kind: dict[tuple[str, str], AttributeKind] = {}
        self._unique_cache: dict[str, frozenset[str]] = {}

    # -- declaration API -------------------------------------------------------

    def define_element(self, name: str, content: "str | Regex" = "EMPTY"
                       ) -> None:
        """Declare element type ``name`` with the given content model.

        ``content`` may be a regex AST or textual content model (both the
        paper's and DTD syntax are accepted); string-only elements are
        declared with content ``"#PCDATA"`` / ``"S*"``-style models.
        Redeclaration replaces the previous content model.
        """
        if not name:
            raise SchemaError("element type name must be non-empty")
        regex = parse_regex(content) if isinstance(content, str) else content
        self._content[name] = regex
        self._attributes.setdefault(name, {})
        self._unique_cache.pop(name, None)

    def define_attribute(self, element: str, attribute: str,
                         set_valued: bool = False,
                         kind: AttributeKind | str | None = None) -> None:
        """Declare ``R(element, attribute)`` (and optionally its kind).

        ``set_valued=True`` means ``R = S*``; ``kind`` may be an
        :class:`AttributeKind`, the strings ``"ID"`` / ``"IDREF"``, or
        ``None``.  Definition 2.2's side conditions are enforced here.
        """
        if element not in self._content:
            raise SchemaError(
                f"cannot declare attribute on undeclared element {element!r}")
        if not attribute:
            raise SchemaError("attribute name must be non-empty")
        if isinstance(kind, str):
            kind = AttributeKind(kind)
        if kind is AttributeKind.ID:
            if set_valued:
                raise SchemaError(
                    f"ID attribute {element}.{attribute} must be "
                    "single-valued")
            existing = self.id_attribute(element)
            if existing is not None and existing != attribute:
                raise SchemaError(
                    f"element {element!r} already has ID attribute "
                    f"{existing!r}; at most one ID attribute is allowed")
        self._attributes[element][attribute] = set_valued
        if kind is None:
            self._kind.pop((element, attribute), None)
        else:
            self._kind[(element, attribute)] = kind

    # -- the formal accessors -----------------------------------------------------

    @property
    def element_types(self) -> frozenset[str]:
        """``E``: the declared element types."""
        return frozenset(self._content)

    def content(self, element: str) -> Regex:
        """``P(element)``: the content model."""
        try:
            return self._content[element]
        except KeyError:
            raise SchemaError(f"undeclared element type {element!r}") from None

    def has_element(self, element: str) -> bool:
        """Whether ``element`` is in ``E``."""
        return element in self._content

    def attributes(self, element: str) -> frozenset[str]:
        """``Att(element)``: the declared attribute names."""
        return frozenset(self._attributes.get(element, ()))

    def has_attribute(self, element: str, attribute: str) -> bool:
        """Whether ``R(element, attribute)`` is defined."""
        return attribute in self._attributes.get(element, ())

    def is_set_valued(self, element: str, attribute: str) -> bool:
        """Whether ``R(element, attribute) = S*``."""
        try:
            return self._attributes[element][attribute]
        except KeyError:
            raise SchemaError(
                f"undeclared attribute {element}.{attribute}") from None

    def kind(self, element: str, attribute: str) -> AttributeKind | None:
        """``kind(element, attribute)``, or ``None`` when undefined."""
        return self._kind.get((element, attribute))

    def id_attribute(self, element: str) -> str | None:
        """The unique attribute ``l`` with ``kind(element, l) = ID``."""
        for (tau, attr), kind in self._kind.items():
            if tau == element and kind is AttributeKind.ID:
                return attr
        return None

    def idref_attributes(self, element: str) -> list[str]:
        """All attributes of ``element`` with kind IDREF, sorted."""
        return sorted(attr for (tau, attr), kind in self._kind.items()
                      if tau == element and kind is AttributeKind.IDREF)

    def id_attribute_map(self) -> dict[str, str]:
        """Map element type -> its ID attribute, for types that have one."""
        out: dict[str, str] = {}
        for (tau, attr), kind in self._kind.items():
            if kind is AttributeKind.ID:
                out[tau] = attr
        return out

    # -- derived structure ----------------------------------------------------------

    def subelements(self, element: str) -> frozenset[str]:
        """The element types occurring in ``P(element)`` (excluding ``S``)."""
        return frozenset(symbols_of(self.content(element))) - {ATOMIC}

    def allows_text(self, element: str) -> bool:
        """Whether ``S`` occurs in ``P(element)``."""
        return ATOMIC in symbols_of(self.content(element))

    def unique_subelements(self, element: str) -> frozenset[str]:
        """The unique sub-elements of ``element`` (§3.4), cached.

        ``S`` counts when it occurs exactly once in every word; element
        types are returned by name.
        """
        cached = self._unique_cache.get(element)
        if cached is None:
            cached = frozenset(unique_subelements(self.content(element)))
            self._unique_cache[element] = cached
        return cached

    def check(self) -> None:
        """Verify global coherence: every element type mentioned in a
        content model is declared, and the root is declared."""
        if self.root not in self._content:
            raise SchemaError(f"root element type {self.root!r} undeclared")
        for tau in self._content:
            for symbol in self.subelements(tau):
                if symbol not in self._content:
                    raise SchemaError(
                        f"content model of {tau!r} mentions undeclared "
                        f"element type {symbol!r}")

    # -- presentation ------------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable multi-line description (used by the CLI)."""
        lines = [f"root: {self.root}"]
        for tau in sorted(self._content):
            lines.append(f"P({tau}) = {self._content[tau]}")
            for attr in sorted(self._attributes.get(tau, ())):
                sv = "S*" if self._attributes[tau][attr] else "S"
                kind = self._kind.get((tau, attr))
                suffix = f" [{kind.value}]" if kind else ""
                lines.append(f"R({tau}, {attr}) = {sv}{suffix}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<DTDStructure root={self.root!r} "
                f"|E|={len(self._content)}>")


def empty_content() -> Regex:
    """The EMPTY content model (epsilon)."""
    return EPSILON


def structure_from_elements(root: str,
                            elements: Iterable[tuple[str, str]],
                            attributes: Iterable[tuple] = ()) -> DTDStructure:
    """Bulk constructor used by tests and generators.

    ``elements`` yields ``(name, content_model_text)`` pairs;
    ``attributes`` yields ``(element, attribute)``,
    ``(element, attribute, set_valued)`` or
    ``(element, attribute, set_valued, kind)`` tuples.
    """
    s = DTDStructure(root)
    for name, content in elements:
        s.define_element(name, content)
    for spec in attributes:
        s.define_attribute(*spec)
    s.check()
    return s
