"""DTD structures and DTDs with constraints (Definitions 2.2-2.4).

- :class:`DTDStructure` is the structural half ``S = (E, P, R, kind, r)``:
  element types, content models, attribute types (single- or set-valued)
  and the ``kind`` partial function marking ID / IDREF attributes.
- :class:`DTDC` pairs a structure with a set Σ of basic XML constraints
  (Definition 2.3).
- :func:`validate` / :class:`ValidationReport` implement the validity
  notion of Definition 2.4: structural conformance plus ``G ⊨ Σ``.
"""

from repro.dtd.structure import AttributeKind, DTDStructure
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import ValidationReport, validate

__all__ = ["AttributeKind", "DTDStructure", "DTDC", "ValidationReport",
           "validate"]
