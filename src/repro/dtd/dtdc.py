"""DTDs with constraints: ``DTD^C = (S, Σ)`` (Definition 2.3)."""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.base import Constraint, Language
from repro.constraints.parser import parse_constraints
from repro.constraints.wellformed import language_of, require_well_formed
from repro.dtd.structure import DTDStructure


class DTDC:
    """A DTD structure together with its set Σ of basic XML constraints.

    The constructor verifies (unless ``check=False``) that Σ is
    well-formed with respect to the structure and that all constraints
    fit in a single language of the paper.
    """

    def __init__(self, structure: DTDStructure,
                 constraints: Iterable[Constraint] = (),
                 check: bool = True):
        self.structure = structure
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        if check:
            structure.check()
            require_well_formed(self.constraints, structure)

    @property
    def language(self) -> Language:
        """The language(s) that contain every constraint of Σ."""
        if not self.constraints:
            return Language.L | Language.LU | Language.LID
        return language_of(self.constraints)

    def with_constraints(self, extra: Iterable[Constraint]) -> "DTDC":
        """A new ``DTD^C`` with additional constraints (re-checked)."""
        return DTDC(self.structure, self.constraints + tuple(extra))

    def add_constraint_text(self, text: str) -> "DTDC":
        """A new ``DTD^C`` with constraints parsed from ``text``."""
        return self.with_constraints(
            parse_constraints(text, self.structure))

    def constraints_of_type(self, *types) -> list[Constraint]:
        """The constraints that are instances of the given classes."""
        return [c for c in self.constraints if isinstance(c, types)]

    def describe(self) -> str:
        """Human-readable dump: structure then Σ."""
        lines = [self.structure.describe()]
        if self.constraints:
            lines.append("constraints:")
            lines.extend(f"  {c}" for c in self.constraints)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<DTDC root={self.structure.root!r} "
                f"|Sigma|={len(self.constraints)}>")
