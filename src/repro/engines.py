"""The validation-engine registry: one seam for every backend.

Every full-validity path through the package — ``Validator.check``, the
CLI's ``--engine``, the server's ``engine`` request field, corpus
workers — selects its backend by name through this module instead of
ad-hoc boolean flags:

``batch``
    Materialize a :class:`~repro.datamodel.tree.DataTree` and run the
    Definition 2.4 reference validator.  The only engine that accepts
    an already-parsed tree.
``stream``
    The single-pass streaming interpreter — O(depth + Σ-relevant state)
    memory, any schema.
``codegen``
    Schema-specialized generated Python (see :mod:`repro.codegen`);
    fastest, but restricted to ASCII names and bounded content-model
    DFAs.
``auto``
    ``codegen`` when the schema supports it, else ``stream``.

Third-party backends plug in without touching the CLI or server::

    import repro.engines

    class MyEngine:
        name = "disjunctive"
        def __init__(self, handle, obs=None):
            self.handle = handle
        def validate(self, source):   # path or XML text
            ...
            return report             # a ValidationReport

    repro.engines.register("disjunctive", MyEngine)

A factory is any ``factory(handle, obs=None)`` callable returning an
object with ``validate(source) -> ValidationReport``; once registered,
``Validator.check(doc, engine="disjunctive")``,
``repro-xic validate --engine disjunctive`` and the server's
``{"engine": "disjunctive"}`` all reach it.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import ReproError

__all__ = ["create", "names", "register", "unregister"]

_FACTORIES: dict[str, Callable] = {}
_BUILTIN = frozenset(("auto", "batch", "stream", "codegen"))
_LOCK = threading.Lock()


class _BatchEngine:
    """Parse (when needed) then run the Definition 2.4 validator."""

    name = "batch"

    def __init__(self, handle, obs=None):
        self.handle = handle
        self.obs = obs

    def validate(self, source):
        import os

        from repro.datamodel.tree import DataTree
        from repro.dtd.validate import validate
        from repro.xmlio.parser import parse_document

        dtd = self.handle.dtd
        if isinstance(source, DataTree):
            return validate(source, dtd, obs=self.obs)
        if isinstance(source, os.PathLike):
            text = _read_text(os.fspath(source))
        elif source.lstrip().startswith("<"):
            text = source
        else:
            text = _read_text(source)
        tree = parse_document(text, dtd.structure, obs=self.obs)
        return validate(tree, dtd, obs=self.obs)


def _read_text(path: str) -> str:
    with open(path, "rb") as fh:
        return fh.read().decode("utf-8")


def _reject_tree(source, engine: str):
    from repro.datamodel.tree import DataTree

    if isinstance(source, DataTree):
        raise TypeError(
            f"the {engine!r} engine validates a path or XML text, not a "
            "parsed DataTree (use engine='batch', or validator.validate)")


class _StreamEngine:
    """The single-pass streaming interpreter."""

    name = "stream"

    def __init__(self, handle, obs=None):
        from repro.stream.validator import StreamValidator

        self.handle = handle
        self._validator = StreamValidator(handle.plan, obs=obs)

    def validate(self, source):
        _reject_tree(source, "stream")
        return self._validator.validate(source)


class _CodegenEngine:
    """Schema-specialized generated code (see :mod:`repro.codegen`)."""

    name = "codegen"

    def __init__(self, handle, obs=None):
        from repro.codegen import CodegenValidator

        self.handle = handle
        self._validator = CodegenValidator(handle, obs=obs)

    def validate(self, source):
        _reject_tree(source, "codegen")
        return self._validator.validate(source)


def _auto_factory(handle, obs=None):
    if handle.supports_codegen():
        return _CodegenEngine(handle, obs=obs)
    return _StreamEngine(handle, obs=obs)


_FACTORIES["batch"] = _BatchEngine
_FACTORIES["stream"] = _StreamEngine
_FACTORIES["codegen"] = _CodegenEngine
_FACTORIES["auto"] = _auto_factory


def names() -> list[str]:
    """Registered engine names, sorted (always includes the built-ins
    ``auto``, ``batch``, ``codegen``, ``stream``)."""
    with _LOCK:
        return sorted(_FACTORIES)


def register(name: str, factory: Callable, *, replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    ``factory(handle, obs=None)`` must return an object exposing
    ``validate(source) -> ValidationReport``.  Built-in names cannot be
    replaced; re-registering another name requires ``replace=True``.
    """
    if not name or not name.replace("-", "_").isidentifier():
        raise ReproError(
            f"invalid engine name {name!r} (identifier-style names only)")
    with _LOCK:
        if name in _BUILTIN:
            raise ReproError(f"cannot replace built-in engine {name!r}")
        if name in _FACTORIES and not replace:
            raise ReproError(
                f"engine {name!r} is already registered "
                "(pass replace=True to swap it)")
        _FACTORIES[name] = factory


def unregister(name: str) -> None:
    """Remove a third-party engine; built-ins cannot be removed."""
    with _LOCK:
        if name in _BUILTIN:
            raise ReproError(f"cannot unregister built-in engine {name!r}")
        if _FACTORIES.pop(name, None) is None:
            raise ReproError(f"no engine named {name!r} is registered")


def create(name: str, schema, obs=None):
    """An engine instance for ``schema`` (a ``DTDC`` or
    :class:`~repro.server.registry.SchemaHandle`)."""
    from repro.server.registry import as_handle

    with _LOCK:
        factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(names())
        raise ReproError(f"unknown engine {name!r} (known: {known})")
    return factory(as_handle(schema), obs=obs)
