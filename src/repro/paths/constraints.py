"""Path constraints and their satisfaction on documents (§4.2).

- :class:`PathFunctional`  ``tau.rho -> tau.varrho``:
  ``∀x,y ∈ ext(tau): nodes(x.rho) = nodes(y.rho) →
  nodes(x.varrho) = nodes(y.varrho)``.
- :class:`PathInclusion`   ``tau1.rho1 ⊆ tau2.rho2``:
  ``ext(tau1.rho1) ⊆ ext(tau2.rho2)``.
- :class:`PathInverse`     ``tau1.rho1 ⇌ tau2.rho2``: mutual
  back-reference between the two navigations.

Satisfaction checking (:func:`path_constraint_holds`) is the executable
specification the §4 implication deciders are validated against: the
property tests assert that whatever the deciders call implied indeed
holds on every generated valid document.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.dtdc import DTDC
from repro.paths.evaluate import PathEvaluator, node_key
from repro.paths.path import Path, parse_path


def _as_path(p: "Path | str") -> Path:
    return parse_path(p) if isinstance(p, str) else p


@dataclass(frozen=True)
class PathFunctional:
    """``element.rho -> element.varrho``."""

    element: str
    rho: Path
    varrho: Path

    def __post_init__(self):
        object.__setattr__(self, "rho", _as_path(self.rho))
        object.__setattr__(self, "varrho", _as_path(self.varrho))

    def __str__(self) -> str:
        return f"{self.element}.{self.rho} -> {self.element}.{self.varrho}"


@dataclass(frozen=True)
class PathInclusion:
    """``element.rho ⊆ target.varrho``."""

    element: str
    rho: Path
    target: str
    varrho: Path

    def __post_init__(self):
        object.__setattr__(self, "rho", _as_path(self.rho))
        object.__setattr__(self, "varrho", _as_path(self.varrho))

    def __str__(self) -> str:
        return f"{self.element}.{self.rho} sub {self.target}.{self.varrho}"


@dataclass(frozen=True)
class PathInverse:
    """``element.rho ⇌ target.varrho``."""

    element: str
    rho: Path
    target: str
    varrho: Path

    def __post_init__(self):
        object.__setattr__(self, "rho", _as_path(self.rho))
        object.__setattr__(self, "varrho", _as_path(self.varrho))

    def flipped(self) -> "PathInverse":
        """The same constraint written from the other side (symmetric)."""
        return PathInverse(self.target, self.varrho, self.element, self.rho)

    def __str__(self) -> str:
        return f"{self.element}.{self.rho} inv {self.target}.{self.varrho}"


PathConstraint = "PathFunctional | PathInclusion | PathInverse"


def path_constraint_holds(dtd: DTDC, tree: DataTree,
                          constraint) -> bool:
    """Evaluate the defining formula of a path constraint on a document."""
    ev = PathEvaluator(dtd, tree)
    if isinstance(constraint, PathFunctional):
        ext = ev.index.extension(constraint.element)
        images: dict[frozenset, frozenset] = {}
        for x in ext:
            key = frozenset(map(node_key, ev.nodes_of(x, constraint.rho)))
            value = frozenset(map(node_key,
                                  ev.nodes_of(x, constraint.varrho)))
            if key in images and images[key] != value:
                return False
            images.setdefault(key, value)
        return True
    if isinstance(constraint, PathInclusion):
        left = {node_key(v)
                for v in ev.ext_of(constraint.element, constraint.rho)}
        right = {node_key(v)
                 for v in ev.ext_of(constraint.target, constraint.varrho)}
        return left <= right
    if isinstance(constraint, PathInverse):
        return _inverse_direction(ev, constraint.element, constraint.rho,
                                  constraint.target, constraint.varrho) and \
            _inverse_direction(ev, constraint.target, constraint.varrho,
                               constraint.element, constraint.rho)
    raise TypeError(f"not a path constraint: {constraint!r}")


def _inverse_direction(ev: PathEvaluator, element: str, rho: Path,
                       other: str, varrho: Path) -> bool:
    """``∀x ∈ ext(element) ∀y ∈ ext(other):
    y ∈ nodes(x.rho) → x ∈ nodes(y.varrho)``."""
    others = set(map(id, ev.index.extension(other)))
    for x in ev.index.extension(element):
        for y in ev.nodes_of(x, rho):
            if not isinstance(y, Vertex) or id(y) not in others:
                continue
            back = ev.nodes_of(y, varrho)
            if not any(z is x for z in back if isinstance(z, Vertex)):
                return False
    return True
