"""Evaluation of paths over data trees: ``nodes(x.rho)`` and
``ext(tau.rho)`` (§4.1).

An element step collects the matching children of every current vertex.
An attribute step either yields the attribute's *string values* (when
its type is atomic) or **dereferences**: it yields the vertices of the
target type whose ID matches the attribute's value(s), exactly as the
paper treats ``book.ref.to.author`` — the ``to`` attribute hops from the
``ref`` element to the referenced ``entry`` elements.

Results are therefore mixed sets of vertices and strings; callers that
need identity-based comparison (path functional constraints) compare
vertices by object identity and strings by value, which
:func:`node_key` encodes.
"""

from __future__ import annotations

from repro.datamodel.indexes import AttributeIndex
from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.dtdc import DTDC
from repro.paths.path import Path, PathTyper
from repro.regexlang.ast import ATOMIC


class PathEvaluator:
    """Evaluate resolved paths over one document (indexes cached)."""

    def __init__(self, dtd: DTDC, tree: DataTree):
        self.dtd = dtd
        self.tree = tree
        self.typer = PathTyper(dtd)
        self.index = AttributeIndex(
            tree, id_attributes=dtd.structure.id_attribute_map())

    def nodes_of(self, x: Vertex, path: Path) -> "set[Vertex | str]":
        """``nodes(x . path)``."""
        current: set[Vertex | str] = {x}
        current_type = x.label
        for step in path.steps:
            resolved, next_type = self.typer.resolve_step(current_type, step)
            nxt: set[Vertex | str] = set()
            if resolved.kind == "element":
                for y in current:
                    if isinstance(y, Vertex):
                        if resolved.name == ATOMIC:
                            nxt.update(c for c in y.children
                                       if isinstance(c, str))
                        else:
                            nxt.update(y.children_labeled(resolved.name))
            else:  # attribute step
                if next_type == ATOMIC:
                    for y in current:
                        if isinstance(y, Vertex):
                            nxt.update(y.attr_or_empty(resolved.name))
                else:
                    id_attr = self.dtd.structure.id_attribute(next_type)
                    for y in current:
                        if not isinstance(y, Vertex):
                            continue
                        for value in y.attr_or_empty(resolved.name):
                            nxt.update(
                                self.index.vertices_with_value(
                                    next_type, id_attr, value))
            current = nxt
            current_type = next_type
        return current

    def ext_of(self, element: str, path: Path) -> "set[Vertex | str]":
        """``ext(element . path)``: union over all ``element`` vertices."""
        out: set[Vertex | str] = set()
        for x in self.index.extension(element):
            out |= self.nodes_of(x, path)
        return out


def nodes_of(dtd: DTDC, tree: DataTree, x: Vertex,
             path: Path) -> "set[Vertex | str]":
    """One-shot ``nodes(x.path)``."""
    return PathEvaluator(dtd, tree).nodes_of(x, path)


def ext_of_path(dtd: DTDC, tree: DataTree, element: str,
                path: Path) -> "set[Vertex | str]":
    """One-shot ``ext(element.path)``."""
    return PathEvaluator(dtd, tree).ext_of(element, path)


def node_key(item: "Vertex | str"):
    """A hashable identity key: vertices by identity, strings by value."""
    return ("v", id(item)) if isinstance(item, Vertex) else ("s", item)
