"""Implication of path constraints by ``L_id`` constraints (§4.2).

Three deciders, each following the paper's characterization:

- **Proposition 4.1** (path functional constraints):
  ``Σ ⊨ tau.rho -> tau.varrho`` iff ``rho`` is a *key path* of ``tau``
  — built from unique sub-elements (§3.4) and key/ID attributes — with
  the trivially-sound extra case ``rho = varrho`` (reflexivity), which
  the paper's iff elides.  Cost ``O(|φ| (|Σ| + |P|))``.
- **Proposition 4.2** (path inclusion constraints):
  ``Σ ⊨ tau1.rho1 ⊆ tau2.rho2`` iff ``rho1`` decomposes as
  ``varrho . rho2`` with ``type(tau1.varrho) = tau2``.  Same cost.
- **Proposition 4.3** (path inverse constraints): implied exactly when
  the paths compose out of stated basic inverses via the rule
  ``tau1.l1 ⇌ tau2.l2 , tau2.l2' ⇌ tau3.l3 ⊢ tau1.l1.l2' ⇌ tau3.l3.l2``
  (each forward step's partner appears reversed on the other side).
  Cost ``O(|Σ| |φ|)``.

All three answers coincide for implication and finite implication, as
the underlying ``L_id`` reasoning does (Prop 3.1).
"""

from __future__ import annotations

from repro.constraints.base import Field
from repro.constraints.lang_lid import IDConstraint, IDInverse
from repro.constraints.lang_lu import UnaryKey
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import AttributeKind
from repro.errors import PathSyntaxError
from repro.implication.result import ImplicationResult
from repro.paths.constraints import (
    PathFunctional, PathInclusion, PathInverse,
)
from repro.paths.path import Path, PathTyper


class PathImplicationEngine:
    """Decides implication of path constraints by a ``DTD^C``'s Σ."""

    def __init__(self, dtd: DTDC):
        self.dtd = dtd
        self.typer = PathTyper(dtd)
        self.lid = self.typer.engine

    # -- Proposition 4.1 ----------------------------------------------------------

    def is_key_path(self, element: str, path: Path) -> bool:
        """Whether ``path`` is a key path of ``element`` (§4.2)."""
        current = element
        for step in path.steps:
            resolved, next_type = self.typer.resolve_step(current, step)
            if resolved.kind == "element":
                if resolved.name not in \
                        self.dtd.structure.unique_subelements(current):
                    return False
            else:
                if not self._is_key_attribute(current, resolved.name):
                    return False
            current = next_type
        return True

    def _is_key_attribute(self, element: str, attribute: str) -> bool:
        """Key step test: ``Σ ⊨ element.attribute -> element`` or the
        attribute has kind ID and ``Σ ⊨ element.id ->id element``."""
        if self.lid.implies(UnaryKey(element, Field(attribute))):
            return True
        from repro.implication.lid import LidEngine
        if isinstance(self.lid, LidEngine) and \
                self.dtd.structure.kind(element, attribute) is \
                AttributeKind.ID and \
                self.lid.implies(IDConstraint(element)):
            return True
        return False

    def implies_functional(self, phi: PathFunctional) -> ImplicationResult:
        """Prop 4.1: ``Σ ⊨ tau.rho -> tau.varrho``."""
        rho = self.typer.resolve(phi.element, phi.rho)
        varrho = self.typer.resolve(phi.element, phi.varrho)
        if rho == varrho:
            return ImplicationResult(
                True, reason="rho = varrho (reflexivity)")
        if self.is_key_path(phi.element, rho):
            return ImplicationResult(
                True, reason=f"{rho} is a key path of {phi.element!r}: "
                "it determines the element, hence every path from it")
        return ImplicationResult(
            False, reason=f"{rho} is not a key path of {phi.element!r}")

    # -- Proposition 4.2 ----------------------------------------------------------

    def implies_inclusion(self, phi: PathInclusion) -> ImplicationResult:
        """Prop 4.2: ``Σ ⊨ tau1.rho1 ⊆ tau2.rho2``."""
        rho1 = self.typer.resolve(phi.element, phi.rho)
        try:
            rho2 = self.typer.resolve(phi.target, phi.varrho)
        except PathSyntaxError as exc:
            return ImplicationResult(False, reason=str(exc))
        n1, n2 = len(rho1), len(rho2)
        if n2 > n1:
            return ImplicationResult(
                False, reason="rho2 is longer than rho1; no prefix "
                "decomposition exists")
        split = n1 - n2
        if rho1.steps[split:] != rho2.steps:
            return ImplicationResult(
                False, reason=f"{rho2} is not a suffix of {rho1}")
        prefix = rho1.prefix(split)
        prefix_type = self.typer.type_of(phi.element, prefix)
        if prefix_type != phi.target:
            return ImplicationResult(
                False, reason=f"type({phi.element}.{prefix}) = "
                f"{prefix_type!r}, not {phi.target!r}")
        return ImplicationResult(
            True, reason=f"rho1 = {prefix} . {rho2} and "
            f"type({phi.element}.{prefix}) = {phi.target!r}")

    # -- Proposition 4.3 ----------------------------------------------------------

    def _inverse_partner(self, element: str, attribute: str
                         ) -> tuple[str, str] | None:
        """The (target type, partner attribute) of a stated basic
        inverse on ``element.attribute``, if any.

        L_u inverses carry designated keys rather than IDs and do not
        participate in §4's reference-path semantics, so only ``L_id``
        inverses are considered.
        """
        for c in getattr(self.lid, "closure", ()):
            if not isinstance(c, IDInverse):
                continue
            if c.element == element and c.field.name == attribute:
                return c.target, c.target_field.name
            if c.target == element and c.target_field.name == attribute:
                return c.element, c.field.name
        return None

    def implies_inverse(self, phi: PathInverse) -> ImplicationResult:
        """Prop 4.3: ``Σ ⊨ tau1.rho1 ⇌ tau2.rho2``."""
        for candidate in (phi, phi.flipped()):
            result = self._implies_inverse_oriented(candidate)
            if result:
                return result
        return ImplicationResult(
            False, reason="the paths do not compose out of stated basic "
            "inverse constraints")

    def _implies_inverse_oriented(self, phi: PathInverse
                                  ) -> ImplicationResult:
        try:
            rho1 = self.typer.resolve(phi.element, phi.rho)
            self.typer.resolve(phi.target, phi.varrho)
        except PathSyntaxError as exc:
            return ImplicationResult(False, reason=str(exc))
        if not rho1 and not phi.varrho:
            return ImplicationResult(
                True, reason="both paths are empty (trivially inverse)")
        if len(rho1) != len(phi.varrho):
            return ImplicationResult(
                False, reason="inverse paths must have equal length")
        partners: list[str] = []
        current = phi.element
        for step in rho1.steps:
            if step.kind != "attribute":
                return ImplicationResult(
                    False, reason="inverse paths are chains of reference "
                    "attributes; element steps cannot be inverted")
            partner = self._inverse_partner(current, step.name)
            if partner is None:
                return ImplicationResult(
                    False, reason=f"no stated inverse covers "
                    f"{current}.{step.name}")
            current, back = partner
            partners.append(back)
        if current != phi.target:
            return ImplicationResult(
                False, reason=f"the chain ends at {current!r}, "
                f"not {phi.target!r}")
        expected = tuple(reversed(partners))
        actual = tuple(s.name for s in phi.varrho.steps)
        if expected != actual:
            return ImplicationResult(
                False, reason=f"expected return path "
                f"{'.'.join(expected)}, got {'.'.join(actual)}")
        return ImplicationResult(
            True, reason="the paths compose from stated inverses via the "
            "inverse composition rule")

    # -- dispatch --------------------------------------------------------------------

    def implies(self, phi) -> ImplicationResult:
        """Decide implication of any path constraint (both flavours)."""
        if isinstance(phi, PathFunctional):
            return self.implies_functional(phi)
        if isinstance(phi, PathInclusion):
            return self.implies_inclusion(phi)
        if isinstance(phi, PathInverse):
            return self.implies_inverse(phi)
        raise TypeError(f"not a path constraint: {phi!r}")

    def finitely_implies(self, phi) -> ImplicationResult:
        """Finite implication — coincides with :meth:`implies` (§4)."""
        return self.implies(phi)


def is_key_path(dtd: DTDC, element: str, path: Path) -> bool:
    """One-shot key-path test (Prop 4.1's engine)."""
    return PathImplicationEngine(dtd).is_key_path(element, path)
