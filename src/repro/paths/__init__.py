"""Navigation paths and path constraints (§4).

- :mod:`repro.paths.path`        — paths, the ``type(tau.rho)`` typing
  judgment of §4.1 (attribute steps dereference through ``L_id``
  foreign keys into IDs);
- :mod:`repro.paths.evaluate`    — ``nodes(x.rho)`` and ``ext(tau.rho)``
  evaluation over data trees;
- :mod:`repro.paths.constraints` — path functional / inclusion / inverse
  constraints and their satisfaction on documents;
- :mod:`repro.paths.implication` — the three deciders: Prop 4.1 (key
  paths), Prop 4.2 (prefix decomposition), Prop 4.3 (inverse
  composition).
"""

from repro.paths.path import Path, PathStep, parse_path, type_of
from repro.paths.evaluate import ext_of_path, nodes_of
from repro.paths.constraints import (
    PathFunctional, PathInclusion, PathInverse, path_constraint_holds,
)
from repro.paths.implication import (
    PathImplicationEngine, is_key_path,
)
from repro.paths.path_by_path import PathByPathProver

__all__ = [
    "Path", "PathStep", "parse_path", "type_of",
    "ext_of_path", "nodes_of",
    "PathFunctional", "PathInclusion", "PathInverse",
    "path_constraint_holds",
    "PathImplicationEngine", "is_key_path", "PathByPathProver",
]
