"""Paths and the ``type(tau.rho)`` typing judgment (§4.1).

A path is a dot-separated sequence of names, each resolving to either an
*attribute* step or a *sub-element* step of the type reached so far.
Typing (Definition of §4.1):

- ``type(tau . ε) = tau``;
- an attribute step ``l`` on a type ``tau1`` has type ``tau2`` when the
  ``L_id`` constraints imply ``tau1.l ⊆ tau2.id`` or
  ``tau1.l ⊆_S tau2.id`` (the reference *dereferences*), and the atomic
  type ``S`` otherwise;
- an element step ``tau2`` is allowed when ``tau2`` occurs in the
  content model of ``tau1``.

Name resolution prefers the attribute when a name is both an attribute
and a sub-element of the current type (paths in the paper never need the
ambiguous case); a step can be forced with ``@name`` (attribute) or
``<name>`` (sub-element) in the textual syntax.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.base import Field, Language
from repro.constraints.lang_lid import IDForeignKey, IDSetValuedForeignKey
from repro.constraints.lang_lu import SetValuedForeignKey, UnaryForeignKey
from repro.constraints.wellformed import language_of
from repro.dtd.dtdc import DTDC
from repro.errors import PathSyntaxError
from repro.implication.lid import LidEngine
from repro.implication.lu import LuEngine
from repro.regexlang.ast import ATOMIC


@dataclass(frozen=True)
class PathStep:
    """One step: a name plus (optionally pre-resolved) step kind.

    ``kind`` is ``"auto"`` (resolve against the DTD), ``"attribute"`` or
    ``"element"``.
    """

    name: str
    kind: str = "auto"

    def __str__(self) -> str:
        if self.kind == "attribute":
            return f"@{self.name}"
        if self.kind == "element":
            return f"<{self.name}>"
        return self.name


@dataclass(frozen=True)
class Path:
    """A (possibly empty) sequence of steps."""

    steps: tuple[PathStep, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "steps", tuple(self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)

    def prefix(self, n: int) -> "Path":
        """The first ``n`` steps."""
        return Path(self.steps[:n])

    def suffix(self, n: int) -> "Path":
        """The path starting at step index ``n``."""
        return Path(self.steps[n:])

    def concat(self, other: "Path") -> "Path":
        """This path followed by ``other``."""
        return Path(self.steps + other.steps)

    def reversed_names(self) -> tuple[str, ...]:
        """The step names in reverse order (inverse-composition helper)."""
        return tuple(s.name for s in reversed(self.steps))

    def __str__(self) -> str:
        return ".".join(str(s) for s in self.steps) if self.steps else "ε"


def parse_path(text: str) -> Path:
    """Parse ``entry.isbn`` / ``book.<section>.@sid`` / ``ε`` syntax."""
    text = text.strip()
    if text in ("", "ε", "epsilon"):
        return Path(())
    steps: list[PathStep] = []
    for raw in text.split("."):
        raw = raw.strip()
        if not raw:
            raise PathSyntaxError(f"empty step in path {text!r}")
        if raw.startswith("@"):
            steps.append(PathStep(raw[1:], "attribute"))
        elif raw.startswith("<") and raw.endswith(">"):
            steps.append(PathStep(raw[1:-1], "element"))
        else:
            steps.append(PathStep(raw))
    return Path(tuple(steps))


class PathTyper:
    """Caches the Σ closure and answers typing queries.

    §4 presents paths over ``L_id`` constraints; the paper's own §4.1
    example (``book.ref.to.author``) dereferences through the *L_u*
    constraint ``ref.to ⊆_S entry.isbn``, so the typer accepts either
    language: an attribute step dereferences to ``tau2`` when Σ implies
    an inclusion from it into an identifying attribute of ``tau2``
    (``tau2.id`` for L_id, a key of ``tau2`` for L_u).
    """

    def __init__(self, dtd: DTDC):
        self.dtd = dtd
        language = language_of(dtd.constraints) if dtd.constraints \
            else Language.LID
        if language & Language.LID:
            self.engine = LidEngine(dtd.constraints)
        else:
            self.engine = LuEngine(dtd.constraints)

    def deref_target(self, element: str, attribute: str) -> str | None:
        """The type ``tau2`` the attribute references (via
        ``Σ ⊨ element.attribute ⊆ tau2.id`` or its L_u key analogue),
        or ``None`` when the attribute is atomic-typed."""
        field = Field(attribute)
        structure = self.dtd.structure
        if isinstance(self.engine, LidEngine):
            for tau2 in sorted(structure.element_types):
                if self.engine.implies(
                        IDForeignKey(element, field, tau2)) or \
                        self.engine.implies(
                            IDSetValuedForeignKey(element, field, tau2)):
                    return tau2
            return None
        for c in self.dtd.constraints:
            if isinstance(c, (UnaryForeignKey, SetValuedForeignKey)) and \
                    c.element == element and c.field == field:
                return c.target
        return None

    def resolve_step(self, current: str, step: PathStep
                     ) -> tuple[PathStep, str]:
        """Resolve one step from ``current``; returns the concretized
        step and the type it leads to (``ATOMIC`` for ``S``)."""
        s = self.dtd.structure
        if current == ATOMIC:
            raise PathSyntaxError(
                f"cannot navigate past atomic content with step {step}")
        is_attr = s.has_attribute(current, step.name)
        is_elem = step.name in s.subelements(current) or \
            (step.name == ATOMIC and s.allows_text(current))
        if step.kind == "attribute" or (step.kind == "auto" and is_attr):
            if not is_attr:
                raise PathSyntaxError(
                    f"{current!r} has no attribute {step.name!r}")
            target = self.deref_target(current, step.name)
            return (PathStep(step.name, "attribute"),
                    target if target is not None else ATOMIC)
        if step.kind == "element" or (step.kind == "auto" and is_elem):
            if not is_elem:
                raise PathSyntaxError(
                    f"{step.name!r} is not a sub-element of {current!r}")
            return PathStep(step.name, "element"), step.name
        raise PathSyntaxError(
            f"{step.name!r} is neither an attribute nor a sub-element "
            f"of {current!r}")

    def type_of(self, element: str, path: Path) -> str:
        """``type(element . path)``; ``"S"`` for atomic results."""
        current = element
        for step in path.steps:
            _resolved, current = self.resolve_step(current, step)
        return current

    def resolve(self, element: str, path: Path) -> Path:
        """The path with every step's kind made concrete."""
        current = element
        out: list[PathStep] = []
        for step in path.steps:
            resolved, current = self.resolve_step(current, step)
            out.append(resolved)
        return Path(tuple(out))


def type_of(dtd: DTDC, element: str, path: "Path | str") -> str:
    """Convenience wrapper: ``type(element . path)`` for one query."""
    if isinstance(path, str):
        path = parse_path(path)
    return PathTyper(dtd).type_of(element, path)
