"""Implication of path constraints *by path constraints* (§5, open).

The paper leaves "implication of path constraints by path constraints"
unsettled (it remains hard in general: path-inclusion implication alone
is related to the semistructured path-constraint problems of
Buneman–Fan–Weinstein, decidable only in fragments).  This module
implements a **sound, explicitly incomplete** prover for the rules that
are valid in every data tree, so downstream users get the safe half:

- reflexivity        ``tau.rho ⊆ tau.rho``
- suffixing          ``tau1.rho1 ⊆ tau2.rho2  ⊢  tau1.rho1.varrho ⊆ tau2.rho2.varrho``
- transitivity       of path inclusions
- prefix-of-functional: a key path functionally determines every
  extension of itself — from ``tau.rho -> tau.ε`` (rho determines the
  element) infer ``tau.rho -> tau.varrho`` for every varrho
- functional right-weakening: ``tau.rho -> tau.varrho`` plus
  ``varrho' = varrho.extension`` does **not** follow in general (the
  image sets differ per element), so it is *not* included — see the
  test exhibiting the counterexample.

``prove`` returns an :class:`~repro.implication.result.ImplicationResult`
whose ``False`` only means "no derivation found with the sound rules";
callers needing refutations can search documents with the generators.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.implication.result import Derivation, ImplicationResult, given
from repro.paths.constraints import (
    PathFunctional, PathInclusion, PathInverse,
)
from repro.paths.path import Path

#: An inclusion endpoint: (element type, step-name tuple).
_Node = tuple[str, tuple[str, ...]]


def _names(path: Path) -> tuple[str, ...]:
    return tuple(s.name for s in path.steps)


class PathByPathProver:
    """Sound, incomplete prover over a set of *path* constraints."""

    def __init__(self, sigma: Iterable):
        self.inclusions: list[PathInclusion] = []
        self.functionals: list[PathFunctional] = []
        self.inverses: list[PathInverse] = []
        for c in sigma:
            if isinstance(c, PathInclusion):
                self.inclusions.append(c)
            elif isinstance(c, PathFunctional):
                self.functionals.append(c)
            elif isinstance(c, PathInverse):
                self.inverses.append(c)
            else:
                raise TypeError(f"not a path constraint: {c!r}")

    # -- inclusions ------------------------------------------------------------

    def _inclusion_successors(self, node: _Node):
        """One suffix-closed application of each stated inclusion."""
        element, names = node
        for c in self.inclusions:
            c_src = _names(c.rho)
            if c.element == element and names[:len(c_src)] == c_src:
                rest = names[len(c_src):]
                yield ((c.target, _names(c.varrho) + rest), c)

    def prove_inclusion(self, phi: PathInclusion) -> ImplicationResult:
        """BFS over suffix-extended stated inclusions (sound)."""
        start: _Node = (phi.element, _names(phi.rho))
        goal: _Node = (phi.target, _names(phi.varrho))
        if start == goal:
            return ImplicationResult(
                True, derivation=Derivation(str(phi), "reflexivity"))
        seen = {start}
        parents: dict[_Node, tuple[_Node, PathInclusion]] = {}
        queue: deque[_Node] = deque((start,))
        while queue:
            node = queue.popleft()
            for succ, used in self._inclusion_successors(node):
                if succ in seen:
                    continue
                seen.add(succ)
                parents[succ] = (node, used)
                if succ == goal:
                    chain: list[Derivation] = []
                    cur = succ
                    while cur != start:
                        prev, c = parents[cur]
                        chain.append(given(c))
                        cur = prev
                    chain.reverse()
                    rule = "suffix+trans" if len(chain) > 1 else "suffix"
                    return ImplicationResult(
                        True, derivation=Derivation(str(phi), rule,
                                                    tuple(chain)))
                queue.append(succ)
        return ImplicationResult(
            False, reason="no derivation with the sound rules "
            "(reflexivity, suffixing, transitivity); the general "
            "problem is open per §5")

    # -- functionals -----------------------------------------------------------

    def prove_functional(self, phi: PathFunctional) -> ImplicationResult:
        """Sound cases: reflexivity, and element-determination — a
        stated ``tau.rho -> tau.ε`` determines every target path."""
        if _names(phi.rho) == _names(phi.varrho):
            return ImplicationResult(
                True, derivation=Derivation(str(phi), "reflexivity"))
        for c in self.functionals:
            if c.element != phi.element or \
                    _names(c.rho) != _names(phi.rho):
                continue
            if not _names(c.varrho):  # rho determines the element itself
                return ImplicationResult(
                    True, derivation=Derivation(
                        str(phi), "element-determination", (given(c),)))
            if _names(c.varrho) == _names(phi.varrho):
                return ImplicationResult(True, derivation=given(c))
        return ImplicationResult(
            False, reason="no derivation with the sound rules; the "
            "general problem is open per §5")

    # -- inverses ----------------------------------------------------------------

    def prove_inverse(self, phi: PathInverse) -> ImplicationResult:
        """Sound cases: a stated inverse (either orientation), and the
        composition rule of Prop 4.3 applied over *stated path*
        inverses of length one."""
        for c in self.inverses:
            for candidate in (c, c.flipped()):
                if candidate.element == phi.element and \
                        candidate.target == phi.target and \
                        _names(candidate.rho) == _names(phi.rho) and \
                        _names(candidate.varrho) == _names(phi.varrho):
                    return ImplicationResult(True, derivation=given(c))
        composed = self._compose_inverses(phi)
        if composed is not None:
            return composed
        return ImplicationResult(
            False, reason="no derivation with the sound rules; the "
            "general problem is open per §5")

    def _compose_inverses(self, phi: PathInverse
                          ) -> ImplicationResult | None:
        rho = _names(phi.rho)
        varrho = _names(phi.varrho)
        if len(rho) != len(varrho) or not rho:
            return None
        partners: list[PathInverse] = []
        current = phi.element
        for i, step in enumerate(rho):
            found = None
            for c in self.inverses:
                for cand in (c, c.flipped()):
                    if cand.element == current and \
                            _names(cand.rho) == (step,) and \
                            len(cand.varrho) == 1:
                        back = varrho[len(rho) - 1 - i]
                        if _names(cand.varrho) == (back,):
                            found = (cand.target, c)
                            break
                if found:
                    break
            if not found:
                return None
            current, used = found
            partners.append(used)
        if current != phi.target:
            return None
        return ImplicationResult(
            True, derivation=Derivation(
                str(phi), "inverse-composition",
                tuple(given(c) for c in partners)))

    # -- dispatch -------------------------------------------------------------------

    def prove(self, phi) -> ImplicationResult:
        """Sound proof search; ``False`` means *no proof found*."""
        if isinstance(phi, PathInclusion):
            return self.prove_inclusion(phi)
        if isinstance(phi, PathFunctional):
            return self.prove_functional(phi)
        if isinstance(phi, PathInverse):
            return self.prove_inverse(phi)
        raise TypeError(f"not a path constraint: {phi!r}")
