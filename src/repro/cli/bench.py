"""Measurement core of ``repro-xic bench-incremental`` (experiment E16).

Kept separate from the argparse layer so the same measurement runs from
the CLI (text or ``--json`` output) and from ``benchmarks/make_report.py``
without importing command-line plumbing.
"""

from __future__ import annotations

import random
import time


def bench_incremental(nodes: int = 10000, updates: int = 100,
                      seed: int = 0) -> dict:
    """Time ``session.revalidate()`` after single updates against a
    from-scratch ``check()`` on the same tree.

    Returns a JSON-serializable dict: workload parameters
    (``nodes``/``updates``/``seed``), the realized document size
    (``vertices``) and constraint count (``sigma``), mean
    microseconds per operation for both strategies
    (``incremental_us``/``full_us``, the latter averaged over
    ``full_runs``), and their ratio (``speedup``).
    """
    from repro.constraints.checker import check
    from repro.incremental import DocumentSession
    from repro.workloads.generators import incremental_session_workload

    rng = random.Random(seed)
    tree, sigma, structure = incremental_session_workload(nodes, seed)
    session = DocumentSession(tree, sigma, structure)
    session.revalidate()
    refs = session.index.extension("ref")
    entries = session.index.extension("entry")
    inc_total = 0.0
    for i in range(updates):
        # Alternate breaking and repairing a foreign key / a key.
        if i % 2 == 0:
            session.set_attribute(rng.choice(refs), "to", f"bogus-{i}")
        else:
            session.set_attribute(rng.choice(entries), "isbn",
                                  f"isbn-{rng.randint(0, len(entries))}")
        t0 = time.perf_counter()
        session.revalidate()
        inc_total += time.perf_counter() - t0
    full_total = 0.0
    full_runs = max(1, min(5, updates))
    for _i in range(full_runs):
        t0 = time.perf_counter()
        check(tree, sigma, structure)
        full_total += time.perf_counter() - t0
    inc_us = 1e6 * inc_total / max(1, updates)
    full_us = 1e6 * full_total / full_runs
    return {
        "nodes": nodes,
        "updates": updates,
        "seed": seed,
        "vertices": tree.size(),
        "sigma": len(sigma),
        "incremental_us": inc_us,
        "full_us": full_us,
        "full_runs": full_runs,
        "speedup": full_us / inc_us if inc_us else float("inf"),
    }
