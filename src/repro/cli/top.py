"""``repro-xic top`` — a live, curses-free view of a running daemon.

Polls ``GET /v1/stats`` (and nothing else — the server aggregates its
own metrics, so ``top`` stays a thin renderer) and repaints a compact
panel: request rate, latency quantiles per operation, cache hit ratio,
per-schema traffic, the slow-request tail with trace_ids, and event-log
occupancy.  Plain ANSI clear-screen instead of curses, so it works in
any terminal, under ``watch``, and in CI transcripts alike.

The renderer is a pure function of the stats payload
(:func:`render_top`), which is what the tests exercise; the polling
loop (:func:`run_top`) only fetches, renders, and sleeps.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Callable, Optional

__all__ = ["fetch_json", "render_top", "run_top"]

#: ANSI "clear screen + home" (what ``clear`` prints, minus terminfo).
CLEAR = "\x1b[2J\x1b[H"


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    """GET ``url`` and parse the JSON body (http/https only)."""
    if not url.startswith(("http://", "https://")):
        raise ValueError(f"unsupported stats url {url!r}")
    with urllib.request.urlopen(url, timeout=timeout) as resp:  # noqa: S310
        return json.loads(resp.read().decode("utf-8"))


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}" if value < 100 else f"{value:.0f}"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def render_top(stats: dict, now: Optional[float] = None) -> str:
    """The panel text for one stats payload (no trailing newline)."""
    lines: "list[str]" = []
    req = stats.get("requests", {})
    cache = stats.get("cache", {})
    lines.append(
        f"repro-xic top  up {_fmt_uptime(stats.get('uptime_s', 0))}  "
        f"rps {stats.get('rps', 0.0):.1f}  "
        f"requests {req.get('total', 0)} "
        f"({req.get('errors', 0)} err)")
    ratio = cache.get("hit_ratio")
    lines.append(
        f"cache {'on' if cache.get('enabled') else 'off'}  "
        f"validated {cache.get('validated', 0)}  "
        f"hits {cache.get('hits', 0)}"
        + (f"  hit-ratio {ratio:.1%}" if ratio is not None else ""))

    latency = stats.get("latency", {})
    by_op = latency.get("by_op", {})
    lines.append("")
    lines.append(f"{'op':<14}{'count':>8}{'mean':>9}{'p50':>9}"
                 f"{'p90':>9}{'p99':>9}{'max':>9}  (ms)")
    rows = list(by_op.items())
    overall = latency.get("overall")
    if overall and overall.get("count"):
        rows.append(("TOTAL", overall))
    for op, row in rows:
        lines.append(
            f"{op:<14}{row.get('count', 0):>8}"
            f"{_fmt_ms(row.get('mean_ms')):>9}"
            f"{_fmt_ms(row.get('p50_ms')):>9}"
            f"{_fmt_ms(row.get('p90_ms')):>9}"
            f"{_fmt_ms(row.get('p99_ms')):>9}"
            f"{_fmt_ms(row.get('max_ms')):>9}")
    if not rows:
        lines.append("  (no requests yet)")

    schemas = stats.get("schemas", {})
    counts = schemas.get("requests", {})
    loaded = schemas.get("loaded", [])
    lines.append("")
    lines.append(f"schemas loaded: {', '.join(loaded) or '(none)'}")
    for name in sorted(counts):
        lines.append(f"  {name:<20}{int(counts[name]):>8} validate(s)")

    slow = stats.get("slow", {})
    recent = slow.get("recent", [])
    lines.append("")
    lines.append(f"slow requests (>= {slow.get('threshold_ms', 0):g} ms): "
                 f"{slow.get('total', 0)} total")
    for rec in recent[-5:]:
        trace = rec.get("trace_id") or "-"
        lines.append(
            f"  {rec.get('op', '?'):<14}{rec.get('ms', 0):>9.1f} ms  "
            f"schema={rec.get('schema') or '-'}  trace={trace}")

    traces = stats.get("traces", {})
    events = stats.get("events", {})
    lines.append("")
    lines.append(
        f"traces {traces.get('stored', 0)}/{traces.get('capacity', 0)} "
        f"stored (sample {traces.get('sample_rate', 0.0):g})   "
        f"events {events.get('emitted', 0)} emitted, "
        f"{events.get('buffered', 0)} buffered, "
        f"{events.get('dropped', 0)} dropped")
    return "\n".join(lines)


def run_top(url: str, interval: float = 2.0,
            count: Optional[int] = None, clear: bool = True,
            as_json: bool = False,
            out: Callable[[str], None] = print,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll ``url`` (a ``/v1/stats`` endpoint) every ``interval``
    seconds, ``count`` times (forever when ``None``), rendering each
    payload — as the panel, or raw JSON with ``as_json``.  Returns 0;
    network errors propagate as ``OSError`` for the CLI's exit-2
    mapping."""
    n = 0
    while count is None or n < count:
        if n:
            sleep(interval)
        stats = fetch_json(url)
        if as_json:
            out(json.dumps(stats, sort_keys=True))
        else:
            out((CLEAR if clear else "") + render_top(stats))
        n += 1
    return 0
