"""Diagnostic logging for the ``repro-xic`` CLI.

All human-facing diagnostics (errors, schema lint chatter from
``describe``, verbose progress notes) flow through the stdlib
``repro`` logger instead of bare ``print(..., file=sys.stderr)``
calls, so:

- library code never prints — it returns reports and raises errors;
  only the CLI decides what the user sees;
- ``-v``/``--verbose`` and ``-q``/``--quiet`` act in one place;
- stdout stays reserved for the command's parseable output.

The handler resolves ``sys.stderr`` at *emit* time (not at configure
time), so output redirection and pytest's ``capsys`` both observe the
messages.
"""

from __future__ import annotations

import logging
import sys

#: The package logger every CLI diagnostic goes through.
LOG = logging.getLogger("repro")


class _CurrentStderrHandler(logging.Handler):
    """A handler writing to whatever ``sys.stderr`` is *now*.

    ``logging.StreamHandler(sys.stderr)`` captures the stream object at
    construction; tools that swap ``sys.stderr`` afterwards (pytest's
    ``capsys``, ``contextlib.redirect_stderr``) would then miss the
    messages.  Looking the stream up per record keeps them visible.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - mirrors logging's policy
            self.handleError(record)


def configure_logging(verbosity: int = 0) -> None:
    """(Re)configure the ``repro`` logger for one CLI invocation.

    ``verbosity``: ``-1`` (``-q``) shows errors only, ``0`` (default)
    adds warnings — e.g. the lint diagnostics ``describe`` routes to
    stderr — ``1`` (``-v``) adds progress notes, ``2+`` (``-vv``)
    enables debug output.

    Handlers are *replaced*, not appended: ``main()`` may run many
    times in one process (tests, embedding) and must not multiply
    output.
    """
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    handler = _CurrentStderrHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    LOG.handlers.clear()
    LOG.addHandler(handler)
    LOG.setLevel(level)
    LOG.propagate = False
