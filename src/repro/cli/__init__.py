"""Command-line interface: ``repro-xic`` / ``python -m repro``."""

from repro.cli.main import main

__all__ = ["main"]
