"""The ``repro-xic`` command-line tool.

Subcommands::

    repro-xic validate  DOC.xml SCHEMA.dtdc          # Definition 2.4
    repro-xic check-corpus SCHEMA.dtdc DOCS...       # parallel corpus run
    repro-xic describe  SCHEMA.dtdc                  # dump S and Sigma
    repro-xic lint      SCHEMA.dtdc                  # static analysis
    repro-xic imply     SCHEMA.dtdc "CONSTRAINT"     # basic implication
    repro-xic imply     --finite SCHEMA.dtdc "..."   # finite implication
    repro-xic path-type SCHEMA.dtdc TAU PATH         # type(tau.path), §4.1
    repro-xic path-imply SCHEMA.dtdc "t.p -> t.q"    # Props 4.1/4.2/4.3
    repro-xic bench-incremental                      # E16 speedup demo
    repro-xic profile --dtdc S.dtdc --doc D.xml      # span tree + counters
    repro-xic serve --port 8080 --schema book=B.dtdc # long-lived daemon
    repro-xic serve --stdio --schema book=B.dtdc     # JSONL over stdio

Every subcommand loads its schema through one per-process
:class:`~repro.server.registry.SchemaRegistry`, so the parse, the
fingerprint, and the compiled stream plan are built at most once per
schema per invocation and shared by every call site.  ``serve`` keeps
that registry alive across requests — see :mod:`repro.server`.

Every subcommand follows one exit-code contract (``validate`` and
``lint`` alike): 0 success / holds / implied / clean, 1 violation / not
implied / lint findings, 2 usage or input error.

Every subcommand also takes the same ``--format {text,json}`` flag
(from a shared parent parser, so the spelling cannot drift): ``text``
is the human-readable default, ``json`` emits one machine-readable
object on stdout with sorted keys.  ``check-corpus`` additionally
takes ``--jobs N`` (worker processes) and ``--cache DIR`` (persistent
result cache).  ``validate``, ``check-corpus`` and ``serve`` all take
``--engine {batch,stream,codegen,auto}`` selecting the validation
backend (see :mod:`repro.engines`); output is byte-identical across the
built-in engines.  ``--stream`` (and serve's ``--mode``) remain as
deprecated aliases, to be removed in repro 2.0.

``lint`` runs the :mod:`repro.analysis` rule set over the schema:
``--format json`` for machine-readable output, ``--select`` /
``--ignore`` to filter rules by code prefix (e.g. ``--select XIC3``).
``describe`` prints the schema dump on stdout and routes its
diagnostics to stderr, so stdout stays parseable.

Observability: the global ``--trace`` / ``--metrics {text,json,prom}``
flags run any subcommand under an enabled
:class:`~repro.obs.Observability` handle and print the collected spans
and/or metrics to **stderr** afterwards (stdout stays the command's
own output).  ``profile`` is the dedicated front-end: it exercises the
parse → validate → implication → session pipeline on one
document/schema pair and prints the full report to **stdout**
(``--metrics json``/``prom`` select the export format).

Verbosity: ``-v`` adds progress notes, ``-q`` silences everything but
errors; all diagnostics flow through the ``repro`` logger
(:mod:`repro.cli.logging`) — never bare prints to stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path as FsPath

from repro.cli.logging import LOG, configure_logging
from repro.constraints.parser import parse_constraint
from repro.constraints.wellformed import language_of
from repro.constraints.base import Language
from repro.dtd.validate import validate
from repro.errors import ReproError
from repro.implication.lid import LidEngine
from repro.implication.lu import LuEngine
from repro.implication.l_primary import LPrimaryEngine
from repro.obs import Observability, TraceContext, activate
from repro.paths.constraints import (
    PathFunctional, PathInclusion, PathInverse,
)
from repro.paths.implication import PathImplicationEngine
from repro.paths.path import parse_path, type_of
from repro.server.registry import SchemaRegistry
from repro.xmlio.dtdparse import parse_dtdc
from repro.xmlio.parser import parse_document

#: The per-process registry every subcommand loads its schema through.
#: ``put`` semantics (re-parse on every load) keep repeated ``main()``
#: calls in one process — the test suite — from ever seeing stale text.
_REGISTRY = SchemaRegistry()


def _load_schema(path: str, root: str | None):
    """Load SCHEMA through the process registry; returns the compiled
    :class:`~repro.server.registry.SchemaHandle` (schema + fingerprint
    + lazily compiled stream plan, each built once)."""
    return _REGISTRY.put(str(path), FsPath(path).read_text(), root=root)


def _load_dtdc(path: str, root: str | None):
    return _load_schema(path, root).dtd


def _print_json(payload: dict) -> None:
    """The one JSON emitter: sorted keys so output is diffable."""
    print(json.dumps(payload, indent=2, sort_keys=True))


def _worker_count(value: str) -> int:
    """argparse type for ``--jobs``/``--shards``: 0 means auto (cpu
    count), negatives are rejected here — at the flag, with the flag's
    name in the message — instead of deep inside the validator."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}") from None
    if n < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 1, or 0 for auto (cpu count); got {n}")
    return n


def _resolve_engine(args) -> "str | None":
    """The requested engine name, folding the deprecated ``--stream``
    flag in (mutually exclusive with ``--engine``); None means the
    subcommand's historical default path."""
    if not getattr(args, "stream", False):
        return args.engine
    if args.engine is not None:
        raise ReproError(
            "pass --engine or the deprecated --stream, not both")
    import warnings

    warnings.warn(
        "--stream is deprecated and will be removed in repro 2.0; "
        "use --engine stream (or --engine auto)",
        DeprecationWarning, stacklevel=2)
    LOG.info("--stream is deprecated; use --engine stream")
    return "stream"


def _cmd_validate(args) -> int:
    handle = _load_schema(args.schema, args.root)
    dtd = handle.dtd
    LOG.info("loaded schema %s (|Sigma| = %d)", args.schema,
             len(dtd.constraints))
    engine = _resolve_engine(args)
    if engine is None or engine == "batch":
        tree = parse_document(FsPath(args.document).read_text(),
                              dtd.structure, obs=args.obs)
        LOG.info("parsed %s (%d vertices)", args.document, tree.size())
        report = validate(tree, dtd, obs=args.obs)
    else:
        from repro.validator import Validator

        report = Validator(handle, obs=args.obs).check(
            FsPath(args.document), engine=engine)
        LOG.info("validated %s (engine=%s)", args.document, engine)
    if args.format == "json":
        _print_json({"document": args.document, "schema": args.schema,
                     **report.to_dict()})
    else:
        print(report)
    # Same 0/1/2 contract as lint: 0 valid, 1 violations, 2 input error
    # (input errors raise ReproError/OSError, mapped to 2 in main()).
    return 0 if report.ok else 1


def _cmd_check_corpus(args) -> int:
    """Parallel Definition 2.4 over many documents (one schema)."""
    from repro.corpus import CorpusValidator

    handle = _load_schema(args.schema, args.root)
    docs: list[str] = []
    for target in args.documents:
        path = FsPath(target)
        if path.is_dir():
            docs.extend(str(p) for p in sorted(path.glob("*.xml")))
        else:
            docs.append(str(path))
    if not docs:
        LOG.error("error: no documents to validate")
        return 2
    if args.shards is not None or args.watch:
        return _check_corpus_sharded(args, handle, docs)
    LOG.info("validating %d document(s) with jobs=%d", len(docs),
             args.jobs)
    validator = CorpusValidator(handle, jobs=args.jobs, cache=args.cache,
                                chunk_size=args.chunk_size, obs=args.obs,
                                engine=_resolve_engine(args))
    report = validator.validate(docs)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report)
    # Exit contract: unreadable/unparseable documents are input errors
    # (2) even when other documents validated; violations alone are 1.
    # Both formats name the offending files: the text report lists them
    # under "documents with findings", the JSON report carries the
    # top-level "error_documents" array.
    if report.n_errors:
        LOG.error("error: %d document(s) could not be processed: %s",
                  report.n_errors, ", ".join(report.error_documents))
        return 2
    return 0 if report.ok else 1


def _shard_exit(report) -> int:
    """The check-corpus exit contract extended to corpus-level
    findings: an ``L_id`` clash across documents is a violation (1)
    exactly like a per-document one."""
    if report.n_errors:
        LOG.error("error: %d document(s) could not be processed: %s",
                  report.n_errors, ", ".join(report.error_documents))
        return 2
    return 0 if report.corpus_ok else 1


def _check_corpus_sharded(args, handle, docs: "list[str]") -> int:
    """``check-corpus --shards N [--watch]``: the sharded coordinator
    over subprocess (default) or in-process nodes."""
    from repro.shard import (
        LocalNode, ShardedCorpusValidator, SubprocessNode, WatchSession,
    )

    shards = args.shards if args.shards is not None else 1
    factory = LocalNode if args.nodes == "local" else SubprocessNode
    LOG.info("validating %d document(s) across %s shard(s), %s nodes",
             len(docs), shards or "auto", args.nodes)
    with ShardedCorpusValidator(
            handle, shards=shards, cache=args.cache, obs=args.obs,
            engine=_resolve_engine(args) or "auto",
            node_factory=factory) as validator:
        if not args.watch:
            report = validator.validate(docs)
            if args.format == "json":
                print(report.to_json())
            else:
                print(report)
            return _shard_exit(report)

        session = WatchSession(validator, args.documents)
        last = {"delta": None}

        def on_delta(delta) -> None:
            last["delta"] = delta
            if args.format == "json":
                _print_json(delta.to_dict())
            else:
                print(delta)

        try:
            session.run(interval=args.interval,
                        max_cycles=args.max_cycles, on_delta=on_delta)
        except KeyboardInterrupt:
            LOG.info("watch interrupted after %d cycle(s)", session.cycle)
        if last["delta"] is None:
            LOG.error("error: watch saw no documents")
            return 2
        return _shard_exit(last["delta"].report)


def _cmd_cache_prune(args) -> int:
    """Trim a persistent result-cache directory to a byte budget."""
    from repro.corpus import ResultCache

    if not FsPath(args.directory).is_dir():
        LOG.error("error: no such cache directory: %s", args.directory)
        return 2
    cache = ResultCache(directory=args.directory)
    before = cache.disk_bytes()
    stats = cache.prune(max_bytes=args.max_bytes)
    if args.format == "json":
        _print_json({"directory": args.directory,
                     "max_bytes": args.max_bytes,
                     "before_bytes": before, **stats})
    else:
        print(f"cache {args.directory}: {before} -> "
              f"{stats['kept_bytes']} bytes "
              f"({stats['evicted']} entr{'y' if stats['evicted'] == 1 else 'ies'} "
              f"evicted, {stats['kept']} kept)")
    return 0


def _cmd_bench_incremental(args) -> int:
    """Experiment E16 in miniature: time ``session.revalidate()`` after
    single updates against a from-scratch ``check()`` on the same tree."""
    from repro.cli.bench import bench_incremental

    result = bench_incremental(nodes=args.nodes, updates=args.updates,
                               seed=args.seed)
    if args.json or args.format == "json":
        _print_json(result)
        return 0
    print(f"document: {result['vertices']} vertices, "
          f"|Sigma| = {result['sigma']}")
    print(f"revalidate after 1 update: {result['incremental_us']:10.1f} us  "
          f"(mean of {result['updates']})")
    print(f"full check():              {result['full_us']:10.1f} us  "
          f"(mean of {result['full_runs']})")
    print(f"speedup: {result['speedup']:.1f}x")
    return 0


def _cmd_describe(args) -> int:
    from repro.analysis import analyze

    dtd = _load_dtdc(args.schema, args.root)
    if args.format == "json":
        _print_json({"schema": args.schema,
                     "root": dtd.structure.root,
                     "description": dtd.describe(),
                     "constraints": [str(c) for c in dtd.constraints]})
    else:
        print(dtd.describe())
    # Diagnostics go to stderr (via the logger) so stdout stays a clean
    # schema dump; -q suppresses them, errors never are.
    for diagnostic in analyze(dtd, obs=args.obs):
        LOG.warning("%s", diagnostic)
    return 0


def _lint_prefixes(raw: list[str] | None) -> tuple[str, ...]:
    """Flatten repeatable, comma-separated ``--select``/``--ignore``
    values into a tuple of code prefixes."""
    out: list[str] = []
    for chunk in raw or []:
        out.extend(p for p in (s.strip() for s in chunk.split(",")) if p)
    return tuple(out)


def _check_rule_prefixes(prefixes: tuple[str, ...], flag: str) -> str | None:
    """Validate ``--select``/``--ignore`` prefixes against the registry;
    returns an error message naming the first unknown code, or None."""
    from repro.analysis import DEFAULT_REGISTRY

    codes = DEFAULT_REGISTRY.codes()
    for prefix in prefixes:
        if not any(code.startswith(prefix) for code in codes):
            return (f"{flag}: unknown rule code {prefix!r} (no registered "
                    f"rule matches; known codes: {', '.join(codes)})")
    return None


def _cmd_lint(args) -> int:
    from repro.analysis import LintConfig, analyze, attach_evidence

    select = _lint_prefixes(args.select)
    ignore = _lint_prefixes(args.ignore)
    for prefixes, flag in ((select, "--select"), (ignore, "--ignore")):
        message = _check_rule_prefixes(prefixes, flag)
        if message is not None:
            LOG.error("error: %s", message)
            return 2
    # check=False: the linter reports ill-formedness, it must not raise.
    dtd = parse_dtdc(FsPath(args.schema).read_text(), root=args.root,
                     check=False)
    config = LintConfig(select=select, ignore=ignore)
    report = analyze(dtd, config, obs=args.obs)
    if args.witness:
        report = attach_evidence(report, dtd, obs=args.obs)
    if args.format == "json":
        print(report.to_json(schema=args.schema))
    else:
        print(report)
        if args.witness:
            for d in report:
                if d.evidence is None and d.evidence_note is None:
                    continue
                print(f"\n{d.code} evidence"
                      + (f" ({d.evidence_note})" if d.evidence_note
                         else "") + ":")
                if d.evidence is not None:
                    print(d.evidence.rstrip("\n"))
    return 0 if report.clean else 1


def _cmd_consistent(args) -> int:
    # Routed through the shared satisfiability core — the same verdict
    # the lint rules XIC104/XIC303 report, so CLI and lint cannot
    # disagree (satellite of the synthesis subsystem).
    from repro.synthesis import check_satisfiability

    report = check_satisfiability(_load_dtdc(args.schema, args.root),
                                  synthesize=False, obs=args.obs)
    if args.format == "json":
        _print_json({"schema": args.schema,
                     "consistent": report.satisfiable,
                     "verdict": str(report.verdict),
                     "required": sorted(report.required),
                     "vacuous": sorted(report.vacuous),
                     "conflicts": sorted(report.conflicts),
                     "unsat_core": report.core.to_dict()
                     if report.core else None})
    else:
        if report.satisfiable:
            print("consistent (no required type is constraint-forced "
                  "to be empty, every required type generates)")
        else:
            inner = ", ".join(sorted(report.conflicts))
            print(f"INCONSISTENT: type(s) {{{inner}}} are required by "
                  "the content models but cannot occur in any valid "
                  "document")
            print(str(report.core))
    return 0 if report.satisfiable else 1


def _cmd_synth(args) -> int:
    """Satisfiability + witness synthesis: exit 0 SAT (witness ships),
    1 UNSAT (unsat core ships), 2 input error or UNKNOWN."""
    from repro.synthesis import Verdict, check_satisfiability, \
        per_constraint_witnesses
    from repro.xmlio.serializer import serialize

    dtd = _load_dtdc(args.schema, args.root)
    report = check_satisfiability(dtd, obs=args.obs)
    payload: dict = {"schema": args.schema, **report.to_dict(),
                     "witness": None}
    if report.witness is not None:
        xml = serialize(report.witness)
        payload["witness"] = xml
        if args.witness_out:
            FsPath(args.witness_out).write_text(xml)
            LOG.info("wrote witness to %s", args.witness_out)
    if args.per_constraint and report.verdict is Verdict.SAT:
        per = per_constraint_witnesses(dtd, obs=args.obs)
        payload["per_constraint"] = [
            {"constraint": str(entry["constraint"]),
             "exercised": entry["exercised"],
             "witness": serialize(entry["witness"])
             if entry["witness"] is not None else None}
            for entry in per]
    if args.format == "json":
        _print_json(payload)
    else:
        print(report)
        if report.witness is not None and not args.witness_out:
            print(payload["witness"].rstrip("\n"))
        for entry in payload.get("per_constraint", ()):
            print(f"\n# {entry['constraint']}"
                  + ("" if entry["exercised"] else " (not exercisable)"))
            if entry["witness"]:
                print(entry["witness"].rstrip("\n"))
    if report.verdict is Verdict.SAT:
        return 0
    if report.verdict is Verdict.UNSAT:
        return 1
    LOG.error("error: verdict is UNKNOWN — no conflict found, but no "
              "witness could be verified")
    return 2


def _pick_engine(sigma, phi, obs=None):
    """Choose the decider from the joint language of Σ ∪ {φ} — but
    build it over Σ only."""
    language = language_of(list(sigma) + [phi])
    if language & Language.LID:
        return LidEngine(sigma, obs=obs)
    if language & Language.LU:
        return LuEngine(sigma, obs=obs)
    return LPrimaryEngine(sigma, obs=obs)


def _cmd_imply(args) -> int:
    dtd = _load_dtdc(args.schema, args.root)
    phi = parse_constraint(args.constraint, dtd.structure)
    sigma = list(dtd.constraints)
    engine = _pick_engine(sigma, phi, obs=args.obs)
    result = engine.finitely_implies(phi) if args.finite \
        else engine.implies(phi)
    if args.format == "json":
        _print_json({"schema": args.schema, "constraint": args.constraint,
                     "finite": args.finite, "implied": bool(result),
                     "explanation": result.explain()})
    else:
        print(result.explain())
    return 0 if result else 1


def _cmd_path_type(args) -> int:
    dtd = _load_dtdc(args.schema, args.root)
    path_type = type_of(dtd, args.element, parse_path(args.path))
    if args.format == "json":
        _print_json({"schema": args.schema, "element": args.element,
                     "path": args.path, "type": str(path_type)})
    else:
        print(path_type)
    return 0


def _parse_path_constraint(text: str):
    for sep, cls in ((" inv ", PathInverse), (" sub ", PathInclusion),
                     (" -> ", PathFunctional)):
        if sep in text:
            left, right = text.split(sep, 1)
            lelem, _dot, lpath = left.strip().partition(".")
            relem, _dot, rpath = right.strip().partition(".")
            if cls is PathFunctional:
                if lelem != relem:
                    raise ReproError(
                        "a path functional constraint uses one element "
                        "type on both sides")
                return PathFunctional(lelem, parse_path(lpath),
                                      parse_path(rpath))
            return cls(lelem, parse_path(lpath), relem, parse_path(rpath))
    raise ReproError(f"cannot parse path constraint {text!r} "
                     "(use '->', 'sub' or 'inv')")


def _cmd_path_imply(args) -> int:
    dtd = _load_dtdc(args.schema, args.root)
    phi = _parse_path_constraint(args.constraint)
    result = PathImplicationEngine(dtd).implies(phi)
    if args.format == "json":
        _print_json({"schema": args.schema, "constraint": args.constraint,
                     "implied": bool(result),
                     "explanation": result.explain()})
    else:
        print(result.explain())
    return 0 if result else 1


def _cmd_profile(args) -> int:
    """Exercise the full pipeline on one document/schema pair under an
    enabled observability handle; print the span tree + counter report.

    Stages: parse the document, ``validate`` it (Definition 2.4), run
    the implication closure over Σ (when Σ has a decider — mixed or
    restriction-violating Σ is noted and skipped), and open an
    incremental session plus one ``revalidate()``.
    """
    from repro.incremental import DocumentSession

    obs = args.obs if args.obs is not None else Observability()
    dtd = parse_dtdc(FsPath(args.dtdc).read_text(), root=args.root)
    tree = parse_document(FsPath(args.doc).read_text(), dtd.structure,
                          obs=obs)
    report = validate(tree, dtd, obs=obs)
    LOG.info("validate: %d vertices, %d violation(s)", tree.size(),
             len(report.violations))
    sigma = list(dtd.constraints)
    if sigma:
        try:
            language = language_of(sigma)
            if language & Language.LID:
                LidEngine(sigma, obs=obs)
            elif language & Language.LU:
                LuEngine(sigma, obs=obs)
            else:
                LPrimaryEngine(sigma, obs=obs)
        except ReproError as exc:
            LOG.info("implication closure skipped: %s", exc)
    session = DocumentSession(tree, dtd.constraints, dtd.structure, obs=obs)
    session.revalidate()
    # --metrics {json,prom} picks the export precisely; otherwise the
    # shared --format flag selects text vs JSON like everywhere else.
    fmt = args.metrics or args.format
    if fmt == "json":
        print(obs.to_json())
    elif fmt == "prom":
        print(obs.to_prometheus())
    else:
        print(obs.render())
    args.obs = None  # report printed here; stop main() re-emitting it
    return 0 if report.ok else 1


def _cmd_obs_export(args) -> int:
    """Convert an observability export to Chrome trace-event JSON
    (``repro-xic obs-export``) — loadable in Perfetto / chrome://tracing.

    Accepts any of the JSON shapes this tool emits: an ``obs.to_json()``
    report (``--metrics json``, ``profile --format json``), a server
    validate response carrying an inline ``"trace"`` (``?trace=1``), or
    an already-converted trace-event payload (validated and passed
    through).
    """
    from repro.obs import trace_events, validate_trace_events

    try:
        payload = json.loads(FsPath(args.input).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read {args.input}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{args.input} is not JSON: {exc}") from exc
    if isinstance(payload, dict) and "traceEvents" in payload:
        trace = payload
    elif isinstance(payload, dict) and \
            isinstance(payload.get("trace"), dict) and \
            "traceEvents" in payload["trace"]:
        trace = payload["trace"]
    elif isinstance(payload, dict) and payload.get("spans"):
        trace = trace_events(payload["spans"])
    else:
        raise ReproError(
            f"{args.input}: no spans to export — expected an obs JSON "
            "report with a non-empty 'spans' list, a ?trace=1 validate "
            "response, or a trace-event payload")
    problems = validate_trace_events(trace)
    if problems:
        for problem in problems:
            LOG.error("invalid trace event: %s", problem)
        return 2
    text = json.dumps(trace, sort_keys=True)
    if args.out:
        FsPath(args.out).write_text(text + "\n")
        LOG.info("wrote %s", args.out)
    if args.format == "json":
        print(text)
    else:
        events = trace.get("traceEvents", [])
        slices = [e for e in events if e.get("ph") == "X"]
        pids = {e.get("pid") for e in slices}
        end = max((e["ts"] + e.get("dur", 0) for e in slices), default=0)
        trace_id = (trace.get("otherData") or {}).get("trace_id")
        print(f"trace {trace_id or '(no trace id)'}: {len(slices)} "
              f"span(s) across {len(pids)} process(es), "
              f"{end / 1000.0:.3f} ms synthetic timeline"
              + (f" -> {args.out}" if args.out
                 else "; use --out FILE or --format json to export"))
    return 0


def _cmd_top(args) -> int:
    """Live stats view of a running daemon (``repro-xic top``)."""
    from repro.cli.top import run_top

    url = args.url.rstrip("/")
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    if not url.endswith("/v1/stats"):
        url = url + "/v1/stats"
    try:
        return run_top(url, interval=args.interval, count=args.count,
                       clear=not args.no_clear,
                       as_json=(args.format == "json"))
    except KeyboardInterrupt:
        return 0
    except ValueError as exc:
        raise ReproError(str(exc)) from exc


def _parse_schema_specs(specs: "list[str] | None"
                        ) -> "list[tuple[str, str]]":
    """Split repeatable ``--schema NAME=PATH`` values."""
    out: list[tuple[str, str]] = []
    for spec in specs or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(f"--schema expects NAME=PATH, got {spec!r}")
        out.append((name, path))
    return out


def _cmd_serve(args) -> int:
    """Run the long-lived validation daemon (``repro-xic serve``).

    At least one transport must be enabled: ``--port N`` binds the
    hand-rolled HTTP front door (``0`` picks an ephemeral port, which
    is announced on stdout), ``--stdio`` speaks JSONL over this
    process's stdin/stdout (EOF on stdin is the clean shutdown).
    ``--schema NAME=PATH`` preloads schemas; more can be loaded, hot-
    reloaded, and unloaded at runtime through either transport.
    """
    import asyncio

    from repro.obs import NULL_TRACER, EventLog
    from repro.server import ValidationServer

    if args.port is None and not args.stdio:
        LOG.error("error: serve needs --port N and/or --stdio")
        return 2
    if not 0.0 <= args.sample <= 1.0:
        LOG.error("error: --sample must be within [0, 1]")
        return 2
    default_engine = args.engine
    if args.mode is not None:
        if default_engine is not None:
            LOG.error("error: pass --engine or the deprecated --mode, "
                      "not both")
            return 2
        import warnings

        warnings.warn(
            "serve --mode is deprecated and will be removed in repro "
            "2.0; use --engine", DeprecationWarning, stacklevel=2)
        LOG.info("--mode is deprecated; use --engine")
        default_engine = args.mode
    if default_engine is None:
        default_engine = "stream"
    from repro import engines as _engines

    if default_engine not in _engines.names():
        LOG.error("error: unknown engine %r (known: %s)",
                  default_engine, ", ".join(_engines.names()))
        return 2
    specs = _parse_schema_specs(args.schema)
    # The server-lifetime obs handle backs GET /metrics; the global
    # --trace/--metrics flags still print it to stderr on exit like any
    # other subcommand (tracer off by default: bounded memory).
    obs = args.obs if args.obs is not None \
        else Observability(tracer=NULL_TRACER)
    # The event log exists before the registry so schema preloads are
    # its first entries; --log-file makes it durable (JSONL append).
    events = EventLog(path=args.log_file)
    if obs.enabled and not obs.events:
        obs.events = events
    registry = SchemaRegistry(obs=obs)
    for name, path in specs:
        handle = registry.load(name, path, root=args.root)
        LOG.info("loaded schema %s v%d (root %s, fingerprint %s)",
                 name, handle.version, handle.dtd.structure.root,
                 handle.fingerprint[:12])
    server = ValidationServer(registry, cache=args.cache, obs=obs,
                              default_mode=default_engine,
                              sample=args.sample, slow_ms=args.slow_ms,
                              events=events,
                              trace_capacity=args.trace_capacity)

    async def _run() -> int:
        import signal

        loop = asyncio.get_running_loop()
        # Explicit handlers: SIGTERM for service managers, and SIGINT
        # even when a non-interactive shell started us with it ignored
        # (backgrounded jobs) — both wind down cleanly with exit 0.
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or exotic platform
        tasks: list = []
        try:
            if args.port is not None:
                host, port = await server.start_http(args.host, args.port)
                LOG.info("HTTP listening on %s:%d", host, port)
                if not args.stdio:
                    # stdout is free of the JSONL transport here, so
                    # announce the bound address (ephemeral --port 0
                    # would otherwise be unusable).
                    if args.format == "json":
                        _print_json({"event": "ready", "host": host,
                                     "port": port,
                                     "schemas": registry.names()})
                    else:
                        print(f"serving http://{host}:{port}", flush=True)
            if args.stdio:
                tasks.append(asyncio.ensure_future(server.serve_stdio()))
            if tasks:
                await asyncio.gather(*tasks)
            else:
                await server.wait_shutdown()
        finally:
            await server.close()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        LOG.info("interrupted; shut down")
        return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands.

    Every subcommand inherits the shared ``--format {text,json}`` flag
    from one parent parser, so the spelling and default are identical
    across the whole tool by construction.
    """
    parser = argparse.ArgumentParser(
        prog="repro-xic",
        description="Integrity constraints for XML (Fan & Simeon, "
        "PODS 2000): validation, implication, path reasoning.",
        epilog="exit status (all subcommands, validate and lint alike): "
        "0 success / valid / implied / clean; "
        "1 violations / not implied / lint findings; "
        "2 usage or input error.")
    parser.add_argument("--root", default=None,
                        help="root element type (default: first declared)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more diagnostics on stderr (-vv for debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="errors only on stderr")
    parser.add_argument("--trace", action="store_true",
                        help="collect spans while the command runs and "
                        "print the span tree to stderr afterwards")
    parser.add_argument("--metrics", choices=("text", "json", "prom"),
                        default=None, metavar="{text,json,prom}",
                        help="collect metrics and print them to stderr in "
                        "this format (profile prints to stdout instead)")
    fmt = argparse.ArgumentParser(add_help=False)
    fmt.add_argument("--format", choices=("text", "json"), default="text",
                     help="stdout format (default: text); json output "
                     "has sorted keys")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", parents=[fmt],
                       help="validate a document (Def 2.4); "
                       "exit 0 valid, 1 violations, 2 input error")
    p.add_argument("document")
    p.add_argument("schema")
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="validation backend: batch (default; parse then "
                   "validate), stream (one pass, O(depth) memory), "
                   "codegen (schema-specialized generated code), auto "
                   "(codegen when supported, else stream), or a "
                   "registered third-party engine; output and exit "
                   "status are identical across the built-ins")
    p.add_argument("--stream", action="store_true",
                   help="deprecated alias for --engine stream")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("check-corpus", parents=[fmt],
                       help="validate many documents against one schema "
                       "in parallel, with an optional persistent result "
                       "cache; exit 0 all valid, 1 violations, 2 any "
                       "unreadable/unparseable document")
    p.add_argument("schema")
    p.add_argument("documents", nargs="+", metavar="DOC",
                   help="XML files and/or directories (a directory "
                   "contributes its *.xml files, sorted)")
    p.add_argument("--jobs", type=_worker_count, default=1, metavar="N",
                   help="worker processes (default: 1, in-process; 0 "
                   "means one per CPU; verdicts are identical for "
                   "every N)")
    p.add_argument("--shards", type=_worker_count, default=None,
                   metavar="N",
                   help="validate across N shard nodes instead of "
                   "worker processes (0 means one per CPU); documents "
                   "are partitioned by content hash, L_id constraints "
                   "are folded at the coordinator, and verdicts are "
                   "byte-identical to a serial run")
    p.add_argument("--nodes", choices=("subprocess", "local"),
                   default="subprocess",
                   help="shard node kind (default: subprocess — one "
                   "'serve --stdio' worker process per shard)")
    p.add_argument("--watch", action="store_true",
                   help="keep running: re-stat the corpus every "
                   "--interval seconds and revalidate only files whose "
                   "content changed (implies --shards 1 unless given)")
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECS",
                   help="watch poll interval (default: 2.0)")
    p.add_argument("--max-cycles", type=int, default=None, metavar="N",
                   help="stop watching after N polls (default: until "
                   "interrupted)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="persistent result-cache directory (re-running "
                   "an unchanged corpus costs one hash per document)")
    p.add_argument("--chunk-size", type=int, default=None, metavar="K",
                   help="documents per worker task (default: heuristic)")
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="per-document backend: batch (default), stream, "
                   "codegen, or auto; single-pass engines read files "
                   "straight from disk and verdicts are identical "
                   "across engines")
    p.add_argument("--stream", action="store_true",
                   help="deprecated alias for --engine stream")
    p.set_defaults(func=_cmd_check_corpus)

    p = sub.add_parser("cache", parents=[fmt],
                       help="manage a persistent result-cache directory")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cp = cache_sub.add_parser("prune", parents=[fmt],
                              help="evict least-recently-used entries "
                              "until the store fits a byte budget")
    cp.add_argument("directory", metavar="DIR",
                    help="the cache directory (as passed to --cache)")
    cp.add_argument("--max-bytes", type=int, default=0, metavar="B",
                    help="byte budget to trim to (default: 0 — empty "
                    "the store)")
    cp.set_defaults(func=_cmd_cache_prune)

    p = sub.add_parser("bench-incremental", parents=[fmt],
                       help="benchmark session.revalidate() vs a full "
                       "check() on a generated document (E16)")
    p.add_argument("--nodes", type=int, default=10000,
                   help="document size budget (default: 10000)")
    p.add_argument("--updates", type=int, default=100,
                   help="number of timed single updates (default: 100)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (default: 0)")
    p.add_argument("--json", action="store_true",
                   help="deprecated alias for --format json")
    p.set_defaults(func=_cmd_bench_incremental)

    p = sub.add_parser("describe", parents=[fmt], help="print the DTD^C")
    p.add_argument("schema")
    p.set_defaults(func=_cmd_describe)

    p = sub.add_parser("lint", parents=[fmt],
                       help="static analysis of the schema (XIC codes)")
    p.add_argument("schema")
    p.add_argument("--select", action="append", metavar="CODES",
                   help="only run rules matching these comma-separated "
                   "code prefixes (e.g. XIC3,XIC101); repeatable")
    p.add_argument("--ignore", action="append", metavar="CODES",
                   help="skip rules matching these comma-separated code "
                   "prefixes; repeatable")
    p.add_argument("--witness", action="store_true",
                   help="attach concrete evidence documents to semantic "
                   "findings (synthesized witnesses/counterexamples)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("consistent", parents=[fmt],
                       help="decide schema satisfiability (shared core "
                       "with lint and synth); exit 0 SAT, 1 UNSAT")
    p.add_argument("schema")
    p.set_defaults(func=_cmd_consistent)

    p = sub.add_parser("synth", parents=[fmt],
                       help="decide satisfiability and synthesize a "
                       "minimal zero-violation witness document (SAT) "
                       "or an unsat core (UNSAT); exit 0 SAT, 1 UNSAT, "
                       "2 input error/unknown")
    p.add_argument("schema")
    p.add_argument("--witness", dest="witness_out", metavar="OUT.xml",
                   default=None,
                   help="write the witness document to this file "
                   "instead of stdout")
    p.add_argument("--per-constraint", action="store_true",
                   help="additionally synthesize one minimal witness "
                   "per constraint of Sigma")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("imply", parents=[fmt],
                       help="decide Sigma |= phi")
    p.add_argument("--finite", action="store_true",
                   help="decide finite implication instead")
    p.add_argument("schema")
    p.add_argument("constraint")
    p.set_defaults(func=_cmd_imply)

    p = sub.add_parser("path-type", parents=[fmt],
                       help="type(tau.path), §4.1")
    p.add_argument("schema")
    p.add_argument("element")
    p.add_argument("path")
    p.set_defaults(func=_cmd_path_type)

    p = sub.add_parser("path-imply", parents=[fmt],
                       help="decide path-constraint implication (§4.2)")
    p.add_argument("schema")
    p.add_argument("constraint")
    p.set_defaults(func=_cmd_path_imply)

    p = sub.add_parser("profile", parents=[fmt],
                       help="run parse -> validate -> implication -> "
                       "session on one document/schema pair and print "
                       "the span tree + counter report")
    p.add_argument("--dtdc", required=True, metavar="SCHEMA",
                   help="the DTD^C schema file")
    p.add_argument("--doc", required=True, metavar="DOC",
                   help="the XML document file")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("serve", parents=[fmt],
                       help="run the long-lived validation daemon "
                       "(SchemaRegistry + HTTP/JSONL front door); "
                       "schemas compile once and hot-reload with zero "
                       "downtime")
    p.add_argument("--host", default="127.0.0.1",
                   help="HTTP bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=None, metavar="N",
                   help="bind the HTTP transport on this port "
                   "(0 picks an ephemeral port, announced on stdout)")
    p.add_argument("--stdio", action="store_true",
                   help="speak JSONL over stdin/stdout (one request "
                   "object per line; EOF is a clean shutdown)")
    p.add_argument("--schema", action="append", metavar="NAME=PATH",
                   help="preload a DTD^C under NAME; repeatable "
                   "(--root applies to each)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="content-addressed result cache: byte-identical "
                   "re-submissions are answered without re-validating")
    p.add_argument("--engine", default=None, metavar="NAME",
                   help="default validate engine for requests that do "
                   "not name one: stream (default), batch, codegen, "
                   "auto, or a registered third-party engine")
    p.add_argument("--mode", choices=("stream", "batch"),
                   default=None,
                   help="deprecated alias for --engine")
    p.add_argument("--sample", type=float, default=0.0, metavar="RATE",
                   help="per-request trace sampling rate in [0, 1] "
                   "(default: 0; ?trace=1 and sampled traceparent "
                   "headers always trace)")
    p.add_argument("--slow-ms", type=float, default=500.0, metavar="MS",
                   help="requests slower than this land in the slow "
                   "log and emit a slow-request event (default: 500)")
    p.add_argument("--log-file", default=None, metavar="FILE",
                   help="append the structured event log (JSONL) to "
                   "this file, beyond the bounded in-memory ring")
    p.add_argument("--trace-capacity", type=int, default=256,
                   metavar="N",
                   help="sampled traces retained for GET /v1/traces/"
                   "<id> (default: 256)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("obs-export", parents=[fmt],
                       help="convert an observability JSON export (or "
                       "a ?trace=1 validate response) to Chrome "
                       "trace-event JSON for Perfetto/chrome://tracing")
    p.add_argument("input", metavar="OBS.json",
                   help="obs report (--metrics json), validate "
                   "response with an inline trace, or trace-event "
                   "payload to validate and pass through")
    p.add_argument("--out", default=None, metavar="TRACE.json",
                   help="also write the trace-event JSON to this file")
    p.set_defaults(func=_cmd_obs_export)

    p = sub.add_parser("top", parents=[fmt],
                       help="live view of a running daemon: polls "
                       "GET /v1/stats and repaints rps, latency "
                       "quantiles, cache ratio, slow requests "
                       "(--format json prints the raw payload)")
    p.add_argument("url", metavar="URL",
                   help="daemon base url or /v1/stats endpoint, e.g. "
                   "http://127.0.0.1:8080")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between polls (default: 2)")
    p.add_argument("--count", type=int, default=None, metavar="N",
                   help="stop after N paints (default: run until ^C)")
    p.add_argument("--no-clear", action="store_true",
                   help="do not clear the screen between paints "
                   "(append panels instead; good for transcripts)")
    p.set_defaults(func=_cmd_top)
    return parser


def _emit_obs(obs: Observability, trace: bool, metrics: str | None) -> None:
    """Print the collected spans/metrics to stderr (non-profile path)."""
    from repro.obs.export import render_metrics, render_spans

    if metrics == "json":
        print(obs.to_json(), file=sys.stderr)
        return
    if metrics == "prom":
        print(obs.to_prometheus(), file=sys.stderr)
        return
    parts = []
    if trace:
        parts.append(render_spans(obs.tracer))
    if metrics:
        parts.append(render_metrics(obs.metrics))
    print("\n".join(parts), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    args.obs = Observability() if (args.trace or args.metrics) else None
    # --trace runs the whole command under one TraceContext, so every
    # span (including worker-process chunk spans) shares one trace_id.
    ctx = TraceContext.new() if args.trace else None
    try:
        with activate(ctx):
            code = args.func(args)
    except ReproError as exc:
        LOG.error("error: %s", exc)
        return 2
    except OSError as exc:
        LOG.error("error: %s", exc)
        return 2
    if args.obs is not None:
        _emit_obs(args.obs, args.trace, args.metrics)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
