"""Content-addressed caching of validation results.

A corpus re-validated after nothing changed should cost one hash per
document, not one full Definition 2.4 pass.  The cache key is the
SHA-256 over the document text plus the schema fingerprint (itself the
SHA-256 of ``DTDC.describe()``, which covers both ``S`` and Σ
deterministically), so a hit is only possible when neither the document
bytes nor the schema changed in any observable way.  File inputs are
keyed on their *raw bytes* (:func:`result_key_bytes`) — never on a
parse→serialize round-trip, and never through text-mode newline
translation — while in-memory trees are keyed on their deterministic
serialization.  The value is the :class:`~repro.dtd.validate.ValidationReport`
in its :meth:`to_dict` form — loss-free for codes, messages,
constraints and vertex ids.

:class:`ResultCache` layers an in-memory LRU over an optional on-disk
JSON store (one file per key, sharded on the first two hex characters),
so warm re-runs survive process restarts when a directory is given.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from repro.dtd.dtdc import DTDC
from repro.dtd.validate import ValidationReport

__all__ = ["ResultCache", "result_key", "result_key_bytes",
           "result_key_hasher", "schema_fingerprint"]


def schema_fingerprint(dtd: DTDC) -> str:
    """SHA-256 of the schema's deterministic description (S and Σ)."""
    return hashlib.sha256(dtd.describe().encode("utf-8")).hexdigest()


def result_key_hasher(hasher, fingerprint: str) -> str:
    """Finish a SHA-256 hasher that has consumed the document bytes
    into the cache key for ``fingerprint``.

    This is the zero-rehash admission path of ``repro-xic serve``: the
    transport hashes the body as it reads it, and the daemon only pays
    the copy + two-short-update tail here.  ``hasher`` is left
    untouched (it is copied), so one read can be keyed against several
    schemas.
    """
    h = hasher.copy()
    h.update(b"\x00")
    h.update(fingerprint.encode("ascii"))
    return h.hexdigest()


def result_key_bytes(data: bytes, fingerprint: str) -> str:
    """The content address of one (document bytes, schema) validation.

    This is the key for file inputs: the raw on-disk bytes, so a CRLF
    and an LF spelling of the same document get distinct keys (they are
    distinct byte streams) and no parse or re-serialization is needed to
    address the cache.
    """
    h = hashlib.sha256()
    h.update(data)
    return result_key_hasher(h, fingerprint)


def result_key(xml_text: str, fingerprint: str) -> str:
    """The content address of one (document text, schema) validation."""
    return result_key_bytes(xml_text.encode("utf-8"), fingerprint)


class ResultCache:
    """In-memory LRU of validation reports, optionally disk-backed.

    ``capacity`` bounds the in-memory entry count; the disk store (when
    ``directory`` is given) is written through on every :meth:`put` and
    bounded by ``max_bytes`` when given: after a put pushes the store
    past the budget, least-recently-*used* entries (by file mtime —
    every hit re-stamps it, making mtime an atime that works on
    ``noatime`` mounts) are evicted until the store fits again.
    ``max_bytes=None`` keeps the historical unbounded behavior.
    ``get`` returns a *fresh* report object per call — cached state is
    never shared mutably with callers.
    """

    def __init__(self, capacity: int = 4096,
                 directory: Union[str, os.PathLike, None] = None,
                 max_bytes: Optional[int] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None "
                             "for an unbounded disk store)")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self.max_bytes = max_bytes
        self._lru: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_evictions = 0
        # running estimate of the disk footprint, resynced by every
        # prune(); lets put() skip the directory scan while under budget
        self._disk_bytes_estimate: Optional[int] = None

    def __len__(self) -> int:
        return len(self._lru)

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key[2:]}.json"

    def get(self, key: str) -> Optional[ValidationReport]:
        """The cached report for ``key``, or None on a miss."""
        payload = self._lru.get(key)
        if payload is not None:
            self._lru.move_to_end(key)
            self.hits += 1
            return ValidationReport.from_dict(payload)
        path = self._disk_path(key)
        if path is not None and path.is_file():
            try:
                payload = json.loads(path.read_text())["report"]
            except (OSError, ValueError, KeyError):
                payload = None  # corrupt entry: treat as a miss
            if payload is not None:
                try:
                    os.utime(path)  # re-stamp: mtime is the LRU clock
                except OSError:
                    pass
                self._remember(key, payload)
                self.hits += 1
                self.disk_hits += 1
                return ValidationReport.from_dict(payload)
        self.misses += 1
        return None

    def put(self, key: str, report: ValidationReport) -> None:
        """Store ``report`` under ``key`` (write-through to disk)."""
        payload = report.to_dict()
        self._remember(key, payload)
        path = self._disk_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps({"key": key, "report": payload},
                                      sort_keys=True))
            os.replace(tmp, path)
            if self.max_bytes is not None:
                if self._disk_bytes_estimate is None:
                    self._disk_bytes_estimate = self.disk_bytes()
                else:
                    self._disk_bytes_estimate += path.stat().st_size
                if self._disk_bytes_estimate > self.max_bytes:
                    self.prune()

    def _disk_entries(self) -> "list[tuple[float, int, Path]]":
        """Every disk entry as ``(mtime, size, path)``.  Races with
        concurrent evictors are benign: a vanished file is skipped."""
        entries: list[tuple[float, int, Path]] = []
        if self.directory is None or not self.directory.is_dir():
            return entries
        for path in self.directory.glob("??/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        return entries

    def disk_bytes(self) -> int:
        """Current on-disk footprint of the store, in bytes."""
        return sum(size for _mtime, size, _path in self._disk_entries())

    def prune(self, max_bytes: Optional[int] = None) -> "dict[str, int]":
        """Evict least-recently-used disk entries until the store fits
        ``max_bytes`` (default: the cache's own budget; ``0`` empties
        the store).  Returns ``{"evicted": n, "freed_bytes": b,
        "kept": n, "kept_bytes": b}``.

        Safe against concurrent readers: eviction is a plain unlink of
        a complete JSON file (writers go through tmp+rename), so a
        reader either sees a full entry or a miss, never a torn one.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        entries = sorted(self._disk_entries())
        total = sum(size for _mtime, size, _path in entries)
        evicted = freed = 0
        if budget is not None:
            for mtime, size, path in entries:
                if total <= budget:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                freed += size
                evicted += 1
                self.disk_evictions += 1
        self._disk_bytes_estimate = total
        return {"evicted": evicted, "freed_bytes": freed,
                "kept": len(entries) - evicted, "kept_bytes": total}

    def _remember(self, key: str, payload: dict) -> None:
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss counters plus current size, JSON-safe."""
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits, "entries": len(self._lru),
                "capacity": self.capacity,
                "max_bytes": self.max_bytes,
                "disk_evictions": self.disk_evictions,
                "directory": str(self.directory)
                if self.directory is not None else None}

    def clear(self) -> None:
        """Drop the in-memory entries (the disk store is untouched)."""
        self._lru.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<ResultCache {len(self._lru)}/{self.capacity} "
                f"hits={self.hits} misses={self.misses}>")
