"""The per-worker half of corpus validation.

Everything here is module-level so ``multiprocessing`` can pickle it by
reference.  The pool initializer receives the ``DTD^C`` once per worker
(pickled by ``multiprocessing`` itself), so Σ and the structure are
materialized a single time per process; chunk tasks then carry only
``(doc_id, xml_text)`` pairs (or ``(doc_id, kind, value)`` triples for
the streaming path) in and JSON-safe dicts out.

``jobs=1`` runs the exact same two functions in-process, which is what
makes the serial fallback bit-identical to the pooled path.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.corpus.cache import result_key, result_key_bytes, \
    schema_fingerprint
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import validate
from repro.errors import ReproError
from repro.obs import Observability, activate, parse_traceparent
from repro.xmlio.parser import parse_document

__all__ = ["init_worker", "stream_chunk", "validate_chunk"]

#: Per-process state seeded by :func:`init_worker`.
_STATE: dict = {}


def init_worker(dtd: DTDC, collect_obs: bool, plan=None,
                fingerprint: "str | None" = None,
                traceparent: "str | None" = None,
                engine: "str | None" = None,
                codegen_source: "str | None" = None) -> None:
    """Install the schema (and obs policy) for this worker process.

    ``plan`` is the coordinator's compiled
    :class:`~repro.stream.StreamPlan` when the run is single-pass —
    shipped once per worker so :func:`stream_chunk` never recompiles
    it.  The coordinator likewise ships its ``fingerprint`` so workers
    never re-hash the schema (recomputed only when an old caller omits
    it), and — when the run happens under a request — the
    ``traceparent`` wire form of its :class:`~repro.obs.TraceContext`,
    so every chunk span this worker produces carries the originating
    request's trace_id and re-parents under it on merge.  For
    ``engine="codegen"`` runs ``codegen_source`` carries the generated
    module text, which the worker ``exec``'s exactly once — no worker
    ever runs the generator or touches the source cache.
    """
    _STATE["dtd"] = dtd
    _STATE["collect_obs"] = collect_obs
    _STATE["plan"] = plan
    _STATE["fingerprint"] = fingerprint or schema_fingerprint(dtd)
    _STATE["traceparent"] = traceparent
    _STATE["engine"] = engine
    _STATE["codegen_source"] = codegen_source


def _chunk_obs(n_docs: int) -> "tuple[Optional[Observability], object]":
    """The per-chunk obs handle and its open ``corpus.chunk`` span
    (entered; the caller must exit).  ``(None, None)`` when the run
    does not collect observability."""
    if not _STATE.get("collect_obs"):
        return None, None
    obs = Observability()
    ctx = parse_traceparent(_STATE.get("traceparent"))
    with activate(ctx):
        # The span captures the ambient context while it is active;
        # the context itself need not stay installed for the body.
        span = obs.span("corpus.chunk", pid=os.getpid(), docs=n_docs)
        span.__enter__()
    return obs, span


def validate_chunk(chunk: "list[tuple[str, str]]") -> dict:
    """Validate a chunk of ``(doc_id, xml_text)`` pairs.

    Returns ``{"verdicts": [...], "metrics": [...], "spans": [...]}``:
    one verdict dict per document *in chunk order* (``report`` is a
    :meth:`~repro.constraints.violations.ViolationReport.to_dict`
    payload, or ``None`` with ``error`` set when the document failed to
    parse), plus this call's observability export for the coordinator
    to merge.
    """
    dtd: DTDC = _STATE["dtd"]
    obs, span = _chunk_obs(len(chunk))
    verdicts = []
    try:
        for doc_id, text in chunk:
            try:
                tree = parse_document(text, dtd.structure, obs=obs)
                report = validate(tree, dtd, obs=obs)
                verdicts.append({"doc": doc_id,
                                 "report": report.to_dict(),
                                 "error": None})
            except ReproError as exc:
                verdicts.append({"doc": doc_id, "report": None,
                                 "error": str(exc)})
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    return {
        "verdicts": verdicts,
        "metrics": obs.metrics.to_dicts() if obs else [],
        "spans": obs.tracer.to_dicts() if obs else [],
    }


def _single_pass_validator(obs):
    """The worker's one-pass validator: the codegen wrapper when the
    coordinator shipped generated source, else the streaming
    interpreter.  Both expose ``validate_text``; the codegen one adds
    the zero-copy ``validate_bytes``."""
    if _STATE.get("engine") == "codegen":
        from repro.codegen import CodegenValidator, load_compiled

        compiled = load_compiled(_STATE["fingerprint"],
                                 _STATE["codegen_source"],
                                 _STATE["plan"])
        return CodegenValidator(compiled, obs=obs)
    from repro.stream import StreamValidator

    return StreamValidator(_STATE["plan"], obs=obs)


def stream_chunk(chunk: "list[tuple[str, str, str]]") -> dict:
    """Single-pass-validate a chunk of ``(doc_id, kind, value)`` triples.

    ``kind`` is ``"path"`` (the worker reads the file itself, hashing the
    raw bytes for the cache key during the same read) or ``"text"``.
    The payload shape matches :func:`validate_chunk`, with one addition:
    each verdict carries its ``"key"`` so the coordinator can fill in
    keys it chose not to compute up front.
    """
    fingerprint: str = _STATE["fingerprint"]
    obs, span = _chunk_obs(len(chunk))
    sv = _single_pass_validator(obs)
    validate_bytes = getattr(sv, "validate_bytes", None)
    verdicts = []
    try:
        for doc_id, kind, value in chunk:
            key: Optional[str] = None
            try:
                if kind == "path":
                    with open(value, "rb") as handle:
                        data = handle.read()
                    key = result_key_bytes(data, fingerprint)
                    if validate_bytes is not None:
                        report = validate_bytes(data)
                    else:
                        report = sv.validate_text(data.decode("utf-8"))
                else:
                    key = result_key(value, fingerprint)
                    report = sv.validate_text(value)
                verdicts.append({"doc": doc_id, "key": key,
                                 "report": report.to_dict(),
                                 "error": None})
            except ReproError as exc:
                verdicts.append({"doc": doc_id, "key": key,
                                 "report": None, "error": str(exc)})
    finally:
        if span is not None:
            span.__exit__(None, None, None)
    return {
        "verdicts": verdicts,
        "metrics": obs.metrics.to_dicts() if obs else [],
        "spans": obs.tracer.to_dicts() if obs else [],
    }
