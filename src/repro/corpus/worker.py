"""The per-worker half of corpus validation.

Everything here is module-level so ``multiprocessing`` can pickle it by
reference.  The pool initializer receives the ``DTD^C`` once per worker
(pickled by ``multiprocessing`` itself), so Σ and the structure are
materialized a single time per process; chunk tasks then carry only
``(doc_id, xml_text)`` pairs in and JSON-safe dicts out.

``jobs=1`` runs the exact same two functions in-process, which is what
makes the serial fallback bit-identical to the pooled path.
"""

from __future__ import annotations

from typing import Optional

from repro.dtd.dtdc import DTDC
from repro.dtd.validate import validate
from repro.errors import ReproError
from repro.obs import Observability
from repro.xmlio.parser import parse_document

__all__ = ["init_worker", "validate_chunk"]

#: Per-process state seeded by :func:`init_worker`.
_STATE: dict = {}


def init_worker(dtd: DTDC, collect_obs: bool) -> None:
    """Install the schema (and obs policy) for this worker process."""
    _STATE["dtd"] = dtd
    _STATE["collect_obs"] = collect_obs


def validate_chunk(chunk: "list[tuple[str, str]]") -> dict:
    """Validate a chunk of ``(doc_id, xml_text)`` pairs.

    Returns ``{"verdicts": [...], "metrics": [...], "spans": [...]}``:
    one verdict dict per document *in chunk order* (``report`` is a
    :meth:`~repro.constraints.violations.ViolationReport.to_dict`
    payload, or ``None`` with ``error`` set when the document failed to
    parse), plus this call's observability export for the coordinator
    to merge.
    """
    dtd: DTDC = _STATE["dtd"]
    obs: Optional[Observability] = \
        Observability() if _STATE.get("collect_obs") else None
    verdicts = []
    for doc_id, text in chunk:
        try:
            tree = parse_document(text, dtd.structure, obs=obs)
            report = validate(tree, dtd, obs=obs)
            verdicts.append({"doc": doc_id, "report": report.to_dict(),
                             "error": None})
        except ReproError as exc:
            verdicts.append({"doc": doc_id, "report": None,
                             "error": str(exc)})
    return {
        "verdicts": verdicts,
        "metrics": obs.metrics.to_dicts() if obs else [],
        "spans": obs.tracer.to_dicts() if obs else [],
    }
