"""Corpus-level validation results.

A :class:`DocumentVerdict` is one document's outcome — its per-document
:class:`~repro.constraints.violations.Violation` list plus provenance
(content-address key, whether the result came from the cache, any input
error).  A :class:`CorpusReport` aggregates the verdicts in corpus
order with violation totals by code, wall-clock per phase, and the
merged observability export.

Verdict serialization is deterministic (sorted keys, input order), so
two runs that computed the same per-document results — e.g. ``jobs=1``
vs ``jobs=8``, or a cold vs a warm-cache run — produce byte-identical
``verdicts_json()`` output.  Tests and CI diff exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.constraints.violations import Violation

__all__ = ["CorpusReport", "DocumentVerdict"]


@dataclass
class DocumentVerdict:
    """One document's validation outcome within a corpus run."""

    doc_id: str
    key: str
    ok: bool
    violations: list[Violation] = field(default_factory=list)
    cached: bool = False
    error: Optional[str] = None

    def to_dict(self, provenance: bool = False) -> dict:
        """JSON-safe form.  ``provenance=False`` (the default) omits
        ``cached`` — the *result* of a validation must not depend on
        where it came from, and verdict equality checks rely on that."""
        out = {
            "doc": self.doc_id,
            "key": self.key,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "error": self.error,
        }
        if provenance:
            out["cached"] = self.cached
        return out

    def __str__(self) -> str:
        if self.error is not None:
            return f"{self.doc_id}: ERROR {self.error}"
        if self.ok:
            return f"{self.doc_id}: OK"
        return f"{self.doc_id}: {len(self.violations)} violation(s)"


class CorpusReport:
    """The outcome of validating a corpus against one ``DTD^C``."""

    def __init__(self, verdicts: Iterable[DocumentVerdict],
                 jobs: int = 1, phases: Optional[dict] = None,
                 cache_stats: Optional[dict] = None, obs=None):
        self.verdicts: list[DocumentVerdict] = list(verdicts)
        self.jobs = jobs
        #: wall-clock seconds per phase (prepare/cache/validate/merge).
        self.phases: dict = dict(phases or {})
        self.cache_stats = cache_stats
        #: the merged :class:`repro.obs.Observability` handle, if any.
        self.obs = obs

    # -- aggregate views ---------------------------------------------

    @property
    def ok(self) -> bool:
        """Every document parsed and validated clean."""
        return all(v.ok and v.error is None for v in self.verdicts)

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.verdicts)

    def __iter__(self):
        return iter(self.verdicts)

    @property
    def n_valid(self) -> int:
        return sum(1 for v in self.verdicts if v.ok and v.error is None)

    @property
    def n_invalid(self) -> int:
        return sum(1 for v in self.verdicts
                   if not v.ok and v.error is None)

    @property
    def n_errors(self) -> int:
        """Documents that could not be parsed at all."""
        return sum(1 for v in self.verdicts if v.error is not None)

    @property
    def error_documents(self) -> "list[str]":
        """The ids of unreadable/unparseable documents, in input order —
        the documents behind an exit-2 ``check-corpus`` run."""
        return [v.doc_id for v in self.verdicts if v.error is not None]

    @property
    def n_cached(self) -> int:
        return sum(1 for v in self.verdicts if v.cached)

    @property
    def violation_total(self) -> int:
        return sum(len(v.violations) for v in self.verdicts)

    def violations_by_code(self) -> "dict[str, int]":
        """Total violations per code, sorted by code."""
        totals: dict[str, int] = {}
        for verdict in self.verdicts:
            for violation in verdict.violations:
                totals[violation.code] = totals.get(violation.code, 0) + 1
        return dict(sorted(totals.items()))

    # -- serialization -----------------------------------------------

    def verdicts_to_dicts(self) -> "list[dict]":
        """Per-document verdicts in corpus order, provenance-free —
        identical across ``jobs`` settings and cache temperatures."""
        return [v.to_dict() for v in self.verdicts]

    def verdicts_json(self) -> str:
        """The byte-comparable serialization of the per-doc verdicts."""
        return json.dumps(self.verdicts_to_dicts(), sort_keys=True)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "jobs": self.jobs,
            "documents": len(self.verdicts),
            "valid": self.n_valid,
            "invalid": self.n_invalid,
            "errors": self.n_errors,
            "error_documents": self.error_documents,
            "cached": self.n_cached,
            "violation_total": self.violation_total,
            "violations_by_code": self.violations_by_code(),
            "phases_s": self.phases,
            "cache": self.cache_stats,
            "verdicts": [v.to_dict(provenance=True)
                         for v in self.verdicts],
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __str__(self) -> str:
        lines = [
            f"corpus: {len(self.verdicts)} document(s), "
            f"{self.n_valid} valid, {self.n_invalid} with violations, "
            f"{self.n_errors} error(s)"
            + (f", {self.n_cached} from cache" if self.n_cached else "")
        ]
        by_code = self.violations_by_code()
        if by_code:
            lines.append("violations by code:")
            lines.extend(f"  {code}: {n}" for code, n in by_code.items())
        bad = [v for v in self.verdicts if not v.ok or v.error is not None]
        if bad:
            lines.append("documents with findings:")
            lines.extend(f"  - {v}" for v in bad)
        if self.phases:
            phases = "  ".join(f"{name}={seconds * 1e3:.1f}ms"
                               for name, seconds in self.phases.items())
            lines.append(f"phases: {phases}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<CorpusReport docs={len(self.verdicts)} "
                f"valid={self.n_valid} errors={self.n_errors} "
                f"jobs={self.jobs}>")
