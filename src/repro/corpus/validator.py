"""Sharded validation of many documents against one ``DTD^C``.

Definition 2.4 validity is per-document, which makes a corpus
embarrassingly parallel: partition the documents into chunks, validate
each chunk in a worker that holds Σ and the structure already parsed,
and recombine the verdicts in corpus order.  The coordinator does the
parts that must be globally consistent — normalizing inputs to
``(doc_id, xml_text)`` pairs, content-addressing each pair against the
schema fingerprint, consulting the result cache, and merging the
per-worker observability exports into one report.

``jobs=1`` bypasses ``multiprocessing`` entirely but runs the *same*
worker functions in-process, so serial and pooled runs produce
byte-identical verdicts (see ``CorpusReport.verdicts_json``).
"""

from __future__ import annotations

import math
import os
import time
from typing import Iterable, Optional, Union

from repro.corpus.cache import ResultCache, result_key, result_key_bytes
from repro.corpus.report import CorpusReport, DocumentVerdict
from repro.corpus.worker import init_worker, stream_chunk, validate_chunk
from repro.obs import TraceContext, activate, current_context
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import ValidationReport
from repro.server.registry import SchemaHandle, as_handle
from repro.xmlio.serializer import serialize

__all__ = ["CorpusValidator", "normalize_docs", "resolve_jobs"]

#: One corpus document, as accepted by :meth:`CorpusValidator.validate`:
#: a filesystem path, an in-memory tree, or an explicit (id, xml) pair.
CorpusDoc = Union[str, os.PathLike, DataTree, "tuple[str, str]"]


def resolve_jobs(jobs: int, flag: str = "jobs") -> int:
    """Resolve a worker/shard count: ``0`` means auto
    (``os.cpu_count()``), negatives are rejected with the flag named.
    Shared by ``jobs=`` and ``shards=`` so the two spellings cannot
    drift."""
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"{flag} must be >= 1, or 0 for auto (cpu count); "
            f"got {jobs}")
    return jobs


def normalize_docs(docs: Iterable[CorpusDoc]
                   ) -> "list[tuple[str, str, str]]":
    """Each document as a ``(doc_id, kind, value)`` triple, where
    ``kind`` is ``"text"`` (``value`` is XML text) or ``"path"``
    (``value`` is a filesystem path, not yet read).

    Trees are serialized (the serializer is deterministic: sorted
    attributes, stable indentation) and explicit pairs pass through;
    both are keyed on their text.  Paths are keyed on their raw
    on-disk bytes — what is hashed is exactly what is validated, with
    no parse/serialize round-trip in between.

    Module-level because doc-id assignment is part of the verdict
    byte-identity contract: the sharded coordinator normalizes with
    exactly this function, so its reassembled ``verdicts_json`` can
    never disagree with a serial run over the same input.
    """
    entries: list[tuple[str, str, str]] = []
    for i, doc in enumerate(docs):
        if isinstance(doc, DataTree):
            entries.append((f"doc[{i}]", "text", serialize(doc)))
        elif isinstance(doc, tuple):
            doc_id, text = doc
            entries.append((str(doc_id), "text", text))
        elif isinstance(doc, (str, os.PathLike)):
            entries.append((os.fspath(doc), "path", os.fspath(doc)))
        else:
            raise TypeError(
                f"corpus document #{i} has unsupported type "
                f"{type(doc)!r} (expected path, DataTree, or "
                "(doc_id, xml_text) pair)")
    return entries


class CorpusValidator:
    """Validate an iterable of documents against one ``DTD^C``.

    Parameters
    ----------
    dtd:
        The schema — a :class:`DTDC` or a compiled
        :class:`~repro.server.registry.SchemaHandle` (the uniform
        contract).  Either way the validator works off a handle, so the
        fingerprint and the streaming plan are computed once per schema
        per process and shared with every other handle-routed call
        site; the schema itself is shipped once per worker.
    jobs:
        Worker process count.  ``1`` (the default) stays in-process.
    cache:
        ``None`` (no caching), a directory path (persistent store under
        it), or a prebuilt :class:`ResultCache` to share across runs.
    chunk_size:
        Documents per pool task.  Default: ``ceil(n / (4 * jobs))``
        capped at 32 — large enough to amortize task dispatch, small
        enough to keep all workers busy on uneven documents.
    obs:
        Optional :class:`repro.obs.Observability`; per-worker metrics
        and spans are merged into it under a ``corpus.validate`` span.
    engine:
        Per-document backend: ``"batch"`` (parse-then-validate, the
        default), ``"stream"`` (single-pass
        :class:`~repro.stream.StreamValidator`), ``"codegen"``
        (schema-specialized generated code; the source text is compiled
        once by the coordinator and shipped to each worker, which
        ``exec``'s it once and validates file inputs over raw bytes), or
        ``"auto"`` (``codegen`` when the schema supports it, else
        ``stream``).  Verdicts are byte-identical across engines.  On
        the streaming/codegen engines file inputs stay as paths so
        workers read them from disk, hashing the raw bytes for the
        cache key as part of the same read.
    stream:
        Deprecated spelling of ``engine="stream"``; mutually exclusive
        with ``engine``.
    """

    def __init__(self, dtd: "DTDC | SchemaHandle", jobs: int = 1,
                 cache: "ResultCache | str | os.PathLike | None" = None,
                 chunk_size: Optional[int] = None, obs=None,
                 stream: bool = False, engine: Optional[str] = None):
        try:
            self.handle = as_handle(dtd)
        except TypeError:
            raise TypeError(
                f"CorpusValidator needs a DTDC or SchemaHandle, got "
                f"{type(dtd)!r}") from None
        jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.dtd = self.handle.dtd
        self.jobs = jobs
        self.chunk_size = chunk_size
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(directory=cache)
        self.obs = obs
        if engine is None:
            engine = "stream" if stream else "batch"
        elif stream:
            raise ValueError(
                "pass either engine=... or the deprecated stream=True, "
                "not both")
        elif engine == "auto":
            engine = "codegen" if self.handle.supports_codegen() \
                else "stream"
        elif engine not in ("batch", "stream", "codegen"):
            from repro.errors import ReproError

            raise ReproError(
                f"unknown corpus engine {engine!r} "
                "(known: auto, batch, codegen, stream)")
        #: the resolved per-document backend ("auto" never survives
        #: construction)
        self.engine = engine
        #: back-compat view: True for every single-pass engine
        self.stream = engine in ("stream", "codegen")
        self.fingerprint = self.handle.fingerprint

    # -- input normalization -----------------------------------------

    def _normalize(self, docs: Iterable[CorpusDoc]
                   ) -> "list[tuple[str, str, str]]":
        """Each document as a ``(doc_id, kind, value)`` triple, where
        ``kind`` is ``"text"`` (``value`` is XML text) or ``"path"``
        (``value`` is a filesystem path, not yet read).

        Delegates to the module-level :func:`normalize_docs`, which the
        sharded coordinator shares.
        """
        return normalize_docs(docs)

    def _prepare(self, entries: "list[tuple[str, str, str]]"
                 ) -> "list[Optional[str]]":
        """Resolve cache keys; returns one key (or None) per entry.

        Path inputs are keyed on raw file bytes.  On the batch path the
        coordinator needs the decoded text anyway (workers receive
        text), so the entry is rewritten to ``("text", ...)`` from the
        same read.  On the streaming path the file stays on disk for the
        worker to stream; the coordinator only reads it when a cache
        needs the key up front — without a cache the key comes back from
        the worker, which hashes the bytes it reads anyway.
        """
        keys: list[Optional[str]] = []
        for i, (doc_id, kind, value) in enumerate(entries):
            if kind == "text":
                keys.append(result_key(value, self.fingerprint))
            elif self.stream and self.cache is None:
                keys.append(None)
            else:
                with open(value, "rb") as handle:
                    data = handle.read()
                keys.append(result_key_bytes(data, self.fingerprint))
                if not self.stream:
                    entries[i] = (doc_id, "text", data.decode("utf-8"))
        return keys

    # -- chunking ----------------------------------------------------

    def _chunk_size(self, n_docs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        if n_docs == 0:
            return 1
        return max(1, min(32, math.ceil(n_docs / (4 * self.jobs))))

    @staticmethod
    def _chunks(items: list, size: int) -> "list[list]":
        return [items[i:i + size] for i in range(0, len(items), size)]

    # -- the run -----------------------------------------------------

    def validate(self, docs: Iterable[CorpusDoc]) -> CorpusReport:
        """Validate the corpus; verdicts come back in input order.

        When the validator's obs tracer is enabled, the whole run sits
        under one ``corpus.validate`` span belonging to the ambient
        :class:`~repro.obs.TraceContext` (a fresh one is minted when
        none is active), and that span's context travels to every
        worker — so pooled chunk spans come back with the run's
        trace_id and re-parent under it on merge.
        """
        if self.obs and self.obs.tracer.enabled \
                and current_context() is None:
            with activate(TraceContext.new()):
                return self._validate_inner(docs)
        return self._validate_inner(docs)

    def _validate_inner(self, docs: Iterable[CorpusDoc]) -> CorpusReport:
        phases: dict[str, float] = {}
        t_start = time.perf_counter()

        run_span = self.obs.span("corpus.validate", jobs=self.jobs) \
            if self.obs else None
        if run_span:
            run_span.__enter__()
        try:
            return self._run(docs, phases, t_start, run_span)
        finally:
            if run_span:
                run_span.__exit__(None, None, None)

    def _run(self, docs: Iterable[CorpusDoc], phases: "dict[str, float]",
             t_start: float, run_span) -> CorpusReport:
        entries = self._normalize(docs)
        keys = self._prepare(entries)
        phases["prepare"] = time.perf_counter() - t_start

        # Cache lookups happen in the coordinator so a pooled run never
        # ships an already-known document to a worker.
        t0 = time.perf_counter()
        verdicts: list[Optional[DocumentVerdict]] = [None] * len(entries)
        pending: list[int] = []
        for i, (doc_id, _kind, _value) in enumerate(entries):
            cached = self.cache.get(keys[i]) \
                if self.cache is not None else None
            if cached is not None:
                verdicts[i] = DocumentVerdict(
                    doc_id, keys[i], cached.ok,
                    list(cached.violations), cached=True)
            else:
                pending.append(i)
        phases["cache"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_ctx = run_span.context() if run_span is not None else None
        payloads = self._run_pending(entries, pending, run_ctx)
        phases["validate"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        obs = self.obs
        span = obs.span("corpus.merge") if obs else None
        if span:
            span.__enter__()
        try:
            flat: list[dict] = []
            for payload in payloads:
                flat.extend(payload["verdicts"])
                if obs:
                    obs.absorb(payload)
            for i, verdict_dict in zip(pending, flat):
                verdicts[i] = self._to_verdict(keys[i], verdict_dict)
        finally:
            if span:
                span.__exit__(None, None, None)
        phases["merge"] = time.perf_counter() - t0
        phases["total"] = time.perf_counter() - t_start

        done = [v for v in verdicts if v is not None]
        if obs and obs.metrics.enabled:
            obs.counter("corpus_documents_validated",
                        help="documents processed by corpus runs"
                        ).add(len(done))
            obs.counter("corpus_cache_hits",
                        help="corpus documents answered from the "
                        "result cache").add(sum(v.cached for v in done))
        return CorpusReport(
            done, jobs=self.jobs, phases=phases,
            cache_stats=self.cache.stats()
            if self.cache is not None else None,
            obs=obs or None)

    def _run_pending(self, entries: "list[tuple[str, str, str]]",
                     pending: "list[int]",
                     run_ctx: "TraceContext | None" = None
                     ) -> "list[dict]":
        """Validate the cache-missing documents, chunked; one payload
        per chunk, in chunk order.  ``run_ctx`` (the ``corpus.validate``
        span's context) ships to every worker as a traceparent string so
        chunk spans join the run's trace."""
        if not pending:
            return []
        codegen_source = None
        if self.stream:
            work = [entries[i] for i in pending]
            worker = stream_chunk
            plan = self._compiled_plan()
            if self.engine == "codegen":
                # ship the generated module *text*: each worker exec's
                # it once instead of re-running generator or disk cache
                codegen_source = self.handle.codegen.source
        else:
            # the batch worker takes (doc_id, xml_text) pairs; _prepare
            # already rewrote every path entry to its text
            work = [(entries[i][0], entries[i][2]) for i in pending]
            worker = validate_chunk
            plan = None
        chunks = self._chunks(work, self._chunk_size(len(work)))
        collect_obs = bool(self.obs)
        traceparent = run_ctx.to_traceparent() \
            if run_ctx is not None else None
        initargs = (self.dtd, collect_obs, plan, self.fingerprint,
                    traceparent, self.engine, codegen_source)
        if self.jobs == 1:
            init_worker(*initargs)
            return [worker(chunk) for chunk in chunks]
        import multiprocessing

        with multiprocessing.Pool(
                processes=min(self.jobs, len(chunks)),
                initializer=init_worker,
                initargs=initargs) as pool:
            return pool.map(worker, chunks)

    def _compiled_plan(self):
        """The streaming plan — compiled once per schema per process,
        on the handle (shared with ``Validator.check_stream`` and the
        serve daemon)."""
        return self.handle.plan

    def _to_verdict(self, key: Optional[str],
                    verdict_dict: dict) -> DocumentVerdict:
        doc_id = verdict_dict["doc"]
        if key is None:  # streaming worker hashed the bytes it read
            key = verdict_dict.get("key") or ""
        if verdict_dict["error"] is not None:
            return DocumentVerdict(doc_id, key, False,
                                   error=verdict_dict["error"])
        report = ValidationReport.from_dict(verdict_dict["report"])
        if self.cache is not None:
            self.cache.put(key, report)
        return DocumentVerdict(doc_id, key, report.ok,
                               list(report.violations))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<CorpusValidator root={self.dtd.structure.root!r} "
                f"jobs={self.jobs} "
                f"cache={'on' if self.cache is not None else 'off'}>")
