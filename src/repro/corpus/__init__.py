"""Parallel corpus validation with a persistent result cache.

Definition 2.4 validity (structure plus ``G ⊨ Σ``) is decided one
document at a time, so a corpus fans out over worker processes with no
coordination beyond chunking — the shape Abiteboul, Gottlob & Manna's
*Distributed XML Design* motivates for document partitioning.  This
package supplies the pieces:

- :class:`CorpusValidator` — chunked fan-out over a
  ``multiprocessing`` pool (``jobs=1`` runs the same code in-process,
  bit-identically), with Σ parsed once per worker;
- :class:`ResultCache` — a content-addressed report cache (SHA-256 of
  serialized document + schema fingerprint), in-memory LRU with an
  optional on-disk JSON store, so re-validating an unchanged corpus is
  O(hash);
- :class:`CorpusReport` / :class:`DocumentVerdict` — per-document
  verdicts in corpus order, violation totals by code, per-phase wall
  clock, and the merged per-worker observability export.

Entry points: ``repro.Validator(dtd).check_corpus(docs, jobs=8)`` from
code, ``repro-xic check-corpus SCHEMA DOCS... --jobs 8 --cache DIR``
from the command line.
"""

from repro.corpus.cache import (
    ResultCache, result_key, result_key_bytes, schema_fingerprint,
)
from repro.corpus.report import CorpusReport, DocumentVerdict
from repro.corpus.validator import CorpusValidator

__all__ = [
    "CorpusReport",
    "CorpusValidator",
    "DocumentVerdict",
    "ResultCache",
    "result_key",
    "result_key_bytes",
    "schema_fingerprint",
]
