"""Object stores: instances of ODL schemas.

Objects carry a store-unique ``oid``, attribute values, and relationship
references (oids).  :meth:`ObjectStore.check` validates referential
integrity, key uniqueness and inverse symmetry — the invariants the
``L_id`` export is expected to preserve on the XML side.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import DataModelError
from repro.oodb.odl import OdlSchema


@dataclass
class StoredObject:
    """One object: class name, oid, attribute and relationship values."""

    cls: str
    oid: str
    attributes: dict[str, str] = field(default_factory=dict)
    references: dict[str, tuple[str, ...]] = field(default_factory=dict)


class ObjectStore:
    """A populated object database."""

    def __init__(self, schema: OdlSchema):
        schema.check()
        self.schema = schema
        self._objects: dict[str, StoredObject] = {}

    def create(self, cls: str, oid: str,
               attributes: dict[str, str] | None = None,
               **references: "str | Iterable[str]") -> StoredObject:
        """Insert an object; references are given as oid(s) per
        relationship name."""
        odl = self.schema.cls(cls)
        if oid in self._objects:
            raise DataModelError(f"duplicate oid {oid!r}")
        attributes = dict(attributes or {})
        unknown = set(attributes) - set(odl.attributes)
        if unknown:
            raise DataModelError(
                f"{cls} has no attributes {sorted(unknown)}")
        refs: dict[str, tuple[str, ...]] = {}
        for name, value in references.items():
            rel = odl.relationship(name)
            oids = (value,) if isinstance(value, str) else tuple(value)
            if not rel.many and len(oids) > 1:
                raise DataModelError(
                    f"{cls}.{name} is to-one but got {len(oids)} refs")
            refs[name] = oids
        obj = StoredObject(cls, oid, attributes, refs)
        self._objects[oid] = obj
        return obj

    def get(self, oid: str) -> StoredObject:
        """The object with the given oid (raises on unknown ids)."""
        try:
            return self._objects[oid]
        except KeyError:
            raise DataModelError(f"unknown oid {oid!r}") from None

    def objects_of(self, cls: str) -> list[StoredObject]:
        """All objects of one class, in insertion order."""
        return [o for o in self._objects.values() if o.cls == cls]

    def all_objects(self) -> list[StoredObject]:
        """Every stored object, in insertion order."""
        return list(self._objects.values())

    # -- integrity -------------------------------------------------------------

    def check(self) -> list[str]:
        """All integrity problems: dangling/ill-typed references, key
        clashes, broken inverse symmetry.  Empty list = consistent."""
        problems: list[str] = []
        for obj in self._objects.values():
            odl = self.schema.cls(obj.cls)
            for name, oids in obj.references.items():
                rel = odl.relationship(name)
                if not rel.many and len(oids) > 1:
                    problems.append(
                        f"{obj.oid}: to-one relationship "
                        f"{obj.cls}.{name} holds {len(oids)} references")
                for ref in oids:
                    target = self._objects.get(ref)
                    if target is None:
                        problems.append(
                            f"{obj.oid}: {obj.cls}.{name} dangles ({ref})")
                    elif target.cls != rel.target:
                        problems.append(
                            f"{obj.oid}: {obj.cls}.{name} references a "
                            f"{target.cls}, expected {rel.target}")
        for cls in self.schema.classes:
            for key in cls.keys:
                seen: dict[tuple[str, ...], str] = {}
                for obj in self.objects_of(cls.name):
                    row = tuple(obj.attributes.get(a, "")
                                for a in sorted(key))
                    if row in seen:
                        problems.append(
                            f"key {sorted(key)} of {cls.name} clashes: "
                            f"{seen[row]} vs {obj.oid}")
                    seen[row] = obj.oid
        for (c1, r1, c2, r2) in self.schema.inverse_pairs():
            problems.extend(self._check_inverse(c1, r1, c2, r2))
        return problems

    def _check_inverse(self, c1: str, r1: str, c2: str,
                       r2: str) -> list[str]:
        problems: list[str] = []
        for obj in self.objects_of(c1):
            for ref in obj.references.get(r1, ()):
                target = self._objects.get(ref)
                if target is not None and \
                        obj.oid not in target.references.get(r2, ()):
                    problems.append(
                        f"inverse broken: {obj.oid}.{r1} -> {ref} but "
                        f"{ref}.{r2} lacks {obj.oid}")
        for obj in self.objects_of(c2):
            for ref in obj.references.get(r2, ()):
                target = self._objects.get(ref)
                if target is not None and \
                        obj.oid not in target.references.get(r1, ()):
                    problems.append(
                        f"inverse broken: {obj.oid}.{r2} -> {ref} but "
                        f"{ref}.{r1} lacks {obj.oid}")
        return problems

    def link_inverse(self, a_oid: str, rel: str, b_oid: str) -> None:
        """Create a reference and its inverse in one step."""
        a = self.get(a_oid)
        b = self.get(b_oid)
        relationship = self.schema.cls(a.cls).relationship(rel)
        a.references[rel] = tuple(
            dict.fromkeys(a.references.get(rel, ()) + (b_oid,)))
        if relationship.inverse is not None:
            b.references[relationship.inverse] = tuple(dict.fromkeys(
                b.references.get(relationship.inverse, ()) + (a_oid,)))
