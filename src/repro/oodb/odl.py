"""ODL-style object schemas.

A schema is a set of classes; each class has string-valued attributes,
keys (subsets of attributes — ODMG allows several), and relationships.
A relationship is to-one or to-many (``many=True``) and may declare an
``inverse`` — the name of the partner relationship on the target class,
as in the paper's example::

    interface Person (key name) {
        attribute string name;
        attribute string address;
        relationship Set<Dept> in_dept inverse Dept::has_staff;
    }
    interface Dept (key dname) {
        attribute string dname;
        relationship Person manager;
        relationship Set<Person> has_staff inverse Person::in_dept;
    }
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import SchemaError


@dataclass(frozen=True)
class OdlRelationship:
    """A relationship: target class, cardinality, optional inverse."""

    name: str
    target: str
    many: bool = False
    inverse: str | None = None  # partner relationship name on the target

    def __str__(self) -> str:
        card = f"Set<{self.target}>" if self.many else self.target
        inv = f" inverse {self.target}::{self.inverse}" if self.inverse \
            else ""
        return f"relationship {card} {self.name}{inv}"


@dataclass
class OdlClass:
    """One class: attributes, keys, relationships."""

    name: str
    attributes: tuple[str, ...] = ()
    keys: tuple[frozenset[str], ...] = ()
    relationships: tuple[OdlRelationship, ...] = ()

    def __post_init__(self):
        self.attributes = tuple(self.attributes)
        self.keys = tuple(frozenset(k) if not isinstance(k, frozenset)
                          else k for k in self.keys)
        self.relationships = tuple(self.relationships)
        for key in self.keys:
            unknown = key - set(self.attributes)
            if unknown:
                raise SchemaError(
                    f"class {self.name!r}: key uses undeclared "
                    f"attributes {sorted(unknown)}")

    def relationship(self, name: str) -> OdlRelationship:
        """Look up a relationship by name (raises on unknown names)."""
        for rel in self.relationships:
            if rel.name == name:
                return rel
        raise SchemaError(
            f"class {self.name!r} has no relationship {name!r}")

    def __str__(self) -> str:
        keys = " ".join(f"(key {', '.join(sorted(k))})" for k in self.keys)
        lines = [f"interface {self.name} {keys} {{"]
        lines.extend(f"    attribute string {a};" for a in self.attributes)
        lines.extend(f"    {rel};" for rel in self.relationships)
        lines.append("}")
        return "\n".join(lines)


class OdlSchema:
    """A set of classes with validated cross-references."""

    def __init__(self, classes: Iterable[OdlClass] = ()):
        self._classes: dict[str, OdlClass] = {}
        for cls in classes:
            self.add(cls)

    def add(self, cls: OdlClass) -> None:
        """Add a class; duplicate names are rejected."""
        if cls.name in self._classes:
            raise SchemaError(f"duplicate class {cls.name!r}")
        self._classes[cls.name] = cls

    def cls(self, name: str) -> OdlClass:
        """Look up a class by name (raises on unknown names)."""
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    @property
    def classes(self) -> list[OdlClass]:
        """The classes in declaration order."""
        return list(self._classes.values())

    def check(self) -> None:
        """Validate relationship targets and inverse symmetry."""
        for cls in self._classes.values():
            for rel in cls.relationships:
                if rel.target not in self._classes:
                    raise SchemaError(
                        f"{cls.name}.{rel.name} targets unknown class "
                        f"{rel.target!r}")
                if rel.inverse is not None:
                    partner = self.cls(rel.target).relationship(rel.inverse)
                    if partner.target != cls.name:
                        raise SchemaError(
                            f"inverse mismatch: {cls.name}.{rel.name} vs "
                            f"{rel.target}.{rel.inverse}")
                    if partner.inverse not in (None, rel.name):
                        raise SchemaError(
                            f"inverse of {rel.target}.{rel.inverse} is "
                            f"{partner.inverse!r}, not {rel.name!r}")

    def inverse_pairs(self) -> list[tuple[str, str, str, str]]:
        """Deduplicated (class, relationship, class', relationship')
        inverse pairs."""
        seen: set[frozenset[tuple[str, str]]] = set()
        out: list[tuple[str, str, str, str]] = []
        for cls in self._classes.values():
            for rel in cls.relationships:
                if rel.inverse is None:
                    continue
                pair = frozenset(((cls.name, rel.name),
                                  (rel.target, rel.inverse)))
                if pair in seen:
                    continue
                seen.add(pair)
                out.append((cls.name, rel.name, rel.target, rel.inverse))
        return out

    def __str__(self) -> str:
        return "\n\n".join(str(c) for c in self._classes.values())
