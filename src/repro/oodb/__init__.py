"""Object-database substrate: ODL-style schemas, instances, XML export.

The paper's second motivating example (§1) exports an object database
(ODMG/ODL syntax) to XML, needing ``L_id`` to preserve object identity,
typed references, multiple keys and inverse relationships.  This package
models that pipeline end-to-end:

- :mod:`repro.oodb.odl`      — class schemas: attributes, to-one /
  to-many relationships with optional ``inverse`` declarations, keys;
- :mod:`repro.oodb.instance` — object stores with referential checking;
- :mod:`repro.oodb.export`   — schema → ``DTD^C`` with ``L_id``
  constraints and store → document, reproducing the person/dept
  ``D_o = (S_o, Σ_o)`` of §2.4.
"""

from repro.oodb.odl import OdlClass, OdlRelationship, OdlSchema
from repro.oodb.instance import ObjectStore
from repro.oodb.export import export_schema, export_store

__all__ = ["OdlClass", "OdlRelationship", "OdlSchema", "ObjectStore",
           "export_schema", "export_store"]
