"""OODB → XML export with ``L_id`` constraints (the §2.4 ``D_o``).

The translation mirrors the paper's person/dept example exactly:

- each class becomes an element type whose *attributes* become
  sub-elements with string content (so that keys over them use the
  §3.4 sub-element extension, as ``Σ_o`` does for ``name``/``dname``);
- every class gets an ``oid`` attribute of kind ID plus an
  ``tau.id ->id tau`` constraint (object identity);
- to-one relationships become single-valued IDREF attributes with
  ``tau.rel ⊆ target.id``; to-many become IDREFS attributes with
  ``tau.rel ⊆_S target.id`` (typed, scoped references — what plain
  IDREF cannot express);
- declared keys become unary key constraints (several per class are
  fine in ``L_id``);
- inverse relationship pairs become ``L_id`` inverse constraints.
"""

from __future__ import annotations

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import UnaryKey
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.errors import SchemaError
from repro.oodb.instance import ObjectStore
from repro.oodb.odl import OdlSchema

OID_ATTRIBUTE = "oid"


def export_schema(schema: OdlSchema, root: str = "db") -> DTDC:
    """Translate an ODL schema into a ``DTD^C`` with ``L_id`` Σ."""
    schema.check()
    structure = DTDStructure(root)
    inner = ", ".join(f"{c.name}*" for c in schema.classes)
    structure.define_element(root, f"({inner})" if inner else "EMPTY")
    leaf_elements: set[str] = set()
    for cls in schema.classes:
        if cls.name == root:
            raise SchemaError(
                f"class name {cls.name!r} collides with the root element")
        content = ", ".join(cls.attributes) if cls.attributes else "EMPTY"
        structure.define_element(
            cls.name, f"({content})" if cls.attributes else "EMPTY")
        leaf_elements.update(cls.attributes)
        structure.define_attribute(cls.name, OID_ATTRIBUTE, kind="ID")
        for rel in cls.relationships:
            structure.define_attribute(cls.name, rel.name,
                                       set_valued=rel.many, kind="IDREF")
    for leaf in sorted(leaf_elements):
        structure.define_element(leaf, "(#PCDATA)")

    constraints: list[Constraint] = []
    for cls in schema.classes:
        constraints.append(IDConstraint(cls.name))
        for key in cls.keys:
            if len(key) != 1:
                raise SchemaError(
                    f"class {cls.name!r}: L_id keys are unary; key "
                    f"{sorted(key)} needs language L (use the relational "
                    "exporter for composite keys)")
            (attr,) = key
            constraints.append(
                UnaryKey(cls.name, Field(attr, is_element=True)))
    inverse_fields: set[tuple[str, str]] = set()
    for (c1, r1, c2, r2) in schema.inverse_pairs():
        rel1 = schema.cls(c1).relationship(r1)
        rel2 = schema.cls(c2).relationship(r2)
        if rel1.many and rel2.many:
            constraints.append(
                IDInverse(c1, Field(r1), c2, Field(r2)))
            inverse_fields.add((c1, r1))
            inverse_fields.add((c2, r2))
    for cls in schema.classes:
        for rel in cls.relationships:
            if rel.many:
                constraints.append(
                    IDSetValuedForeignKey(cls.name, Field(rel.name),
                                          rel.target))
            else:
                constraints.append(
                    IDForeignKey(cls.name, Field(rel.name), rel.target))
    return DTDC(structure, constraints)


def export_store(store: ObjectStore, root: str = "db"
                 ) -> tuple[DTDC, DataTree]:
    """Translate schema and data; returns ``(DTD^C, document)``.

    The exported document is valid iff the store passed
    :meth:`~repro.oodb.instance.ObjectStore.check` — the translation
    preserves the original semantics, which is the point of ``L_id``.
    """
    dtd = export_schema(store.schema, root=root)
    tree = DataTree(root)
    for cls in store.schema.classes:
        for obj in sorted(store.objects_of(cls.name), key=lambda o: o.oid):
            v = tree.create(cls.name)
            tree.root.append(v)
            v.set_attribute(OID_ATTRIBUTE, obj.oid)
            for attr in cls.attributes:
                leaf = tree.create(attr)
                leaf.append(obj.attributes.get(attr, ""))
                v.append(leaf)
            for rel in cls.relationships:
                refs = obj.references.get(rel.name, ())
                if rel.many:
                    v.set_attribute(rel.name, frozenset(refs))
                else:
                    if len(refs) != 1:
                        raise SchemaError(
                            f"{obj.oid}: to-one relationship "
                            f"{cls.name}.{rel.name} has {len(refs)} "
                            "references; the DTD requires exactly one")
                    v.set_attribute(rel.name, refs[0])
    return dtd, tree
