"""Sharded multi-node corpus validation.

Partition a corpus by content hash across N validator nodes (in-process
servers or real ``serve --stdio`` subprocesses), decide which
constraints each shard can check alone (:mod:`~repro.shard.locality`),
and fold the rest — the ``L_id`` ID/IDREF family, whose scope is the
whole corpus — at the coordinator from per-document aggregates
(:mod:`~repro.shard.aggregates`).  Per-document verdicts stay
byte-identical to a serial :class:`~repro.corpus.CorpusValidator` run;
cross-document findings ride alongside on the
:class:`~repro.shard.coordinator.ShardReport`.
:mod:`~repro.shard.watch` adds the incremental ``--watch`` loop on top.
"""

from repro.shard.aggregates import (
    CorpusViolation, extract_aggregates, fold_aggregates,
)
from repro.shard.coordinator import (
    ShardReport, ShardedCorpusValidator, shard_of,
)
from repro.shard.locality import (
    Locality, classify_constraint, classify_sigma,
)
from repro.shard.node import LocalNode, ShardNode, SubprocessNode
from repro.shard.watch import WatchDelta, WatchSession

__all__ = [
    "CorpusViolation",
    "Locality",
    "LocalNode",
    "ShardNode",
    "ShardReport",
    "ShardedCorpusValidator",
    "SubprocessNode",
    "WatchDelta",
    "WatchSession",
    "classify_constraint",
    "classify_sigma",
    "extract_aggregates",
    "fold_aggregates",
    "shard_of",
]
