"""Validator nodes: where one shard's documents are validated.

A node is anything that answers the serve protocol's request dicts —
the coordinator only ever speaks ``load`` (ship the schema, verify the
fingerprint round-trip) and ``check-shard`` (validate a batch of
``(doc_id, xml)`` pairs, return verdicts + merge aggregates + a metrics
export).  Two implementations:

- :class:`LocalNode` — an in-process :class:`ValidationServer` behind
  the same request/response dicts as the wire.  Zero transport cost;
  what the hypothesis parity suite runs hundreds of.
- :class:`SubprocessNode` — a real ``repro-xic serve --stdio`` child
  process speaking JSONL over its pipes.  True multi-node isolation
  (own interpreter, own memory, own caches); because the protocol is
  the serve protocol, pointing the coordinator at remote sockets later
  is a transport change, not a redesign.

Both are driven through the common :class:`ShardNode` base, which
raises :class:`~repro.errors.ReproError` on any non-``ok`` response so
coordinator code never branches on transport.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Optional

from repro.errors import ReproError

__all__ = ["LocalNode", "ShardNode", "SubprocessNode"]


class ShardNode:
    """Protocol driver shared by every node transport."""

    #: display name for spans/metrics labels
    name = "node"

    def request(self, req: dict) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        """Release the node's resources (idempotent)."""

    # -- the two operations the coordinator uses ---------------------

    def load_schema(self, name: str, text: str, root: str,
                    fingerprint: str) -> dict:
        """Ship the serialized ``DTD^C`` text and pin its identity: the
        node's compiled fingerprint must equal the coordinator's, or
        the shard would silently validate against a different schema.
        """
        response = self._checked({"op": "load", "name": name,
                                  "schema": text, "root": root})
        remote = response.get("schema", {}).get("fingerprint")
        if remote != fingerprint:
            raise ReproError(
                f"shard node {self.name!r} compiled schema {name!r} to "
                f"fingerprint {remote!r}, expected {fingerprint!r} — "
                "the schema did not survive the wire round-trip")
        return response

    def check_shard(self, schema: str,
                    pairs: "list[tuple[str, str]]",
                    engine: Optional[str] = None,
                    aggregates: bool = True) -> dict:
        """Validate one batch of ``(doc_id, xml)`` pairs on the node."""
        req: dict = {"op": "check-shard", "schema": schema,
                     "documents": [[doc_id, text]
                                   for doc_id, text in pairs],
                     "aggregates": aggregates}
        if engine is not None:
            req["engine"] = engine
        return self._checked(req)

    def _checked(self, req: dict) -> dict:
        response = self.request(req)
        if not response.get("ok"):
            raise ReproError(
                f"shard node {self.name!r} rejected "
                f"{req.get('op')!r}: "
                f"{response.get('error', response)}")
        return response

    def __enter__(self) -> "ShardNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalNode(ShardNode):
    """An in-process node: a private :class:`ValidationServer` spoken
    to through the exact dicts the JSONL wire would carry."""

    def __init__(self, name: str = "local"):
        from repro.server import ValidationServer

        self.name = name
        self.server = ValidationServer()

    def request(self, req: dict) -> dict:
        payload, _status = self.server.handle_request(dict(req))
        return payload


class SubprocessNode(ShardNode):
    """A ``repro-xic serve --stdio`` child process as a node.

    One JSONL request per line down stdin, one response per line back —
    the transport the CI smoke test and ``bench_shard.py`` exercise, so
    shard overhead is measured against real process isolation even on a
    single-core host.
    """

    def __init__(self, name: str = "subprocess"):
        self.name = name
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "-q", "serve", "--stdio"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True,
            env=dict(os.environ))

    def request(self, req: dict) -> dict:
        if self.proc.poll() is not None:
            raise ReproError(
                f"shard node {self.name!r} exited with status "
                f"{self.proc.returncode} before the request")
        assert self.proc.stdin is not None \
            and self.proc.stdout is not None
        self.proc.stdin.write(json.dumps(req) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        if not line:
            raise ReproError(
                f"shard node {self.name!r} closed its pipe mid-request"
                f" (exit status {self.proc.poll()})")
        return json.loads(line)

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                if self.proc.stdin is not None:
                    self.proc.stdin.close()  # EOF: clean shutdown
                self.proc.wait(timeout=10)
            except (OSError, subprocess.TimeoutExpired):
                self.proc.kill()
                self.proc.wait(timeout=10)
