"""The sharded corpus coordinator.

:class:`ShardedCorpusValidator` partitions a corpus by content hash
across N validator nodes, each speaking the serve protocol
(:mod:`repro.shard.node`).  The run is a three-phase pipeline, each
under its own span:

``shard.partition``
    Normalize documents exactly like :class:`CorpusValidator` (shared
    :func:`~repro.corpus.validator.normalize_docs`), resolve result
    keys, answer what the coordinator's caches already know, and assign
    every still-pending document to ``shard_of(content) % shards`` —
    a pure function of content, so the layout is stable under document
    reordering.

``shard.validate``
    Ship each shard's batch to its node (``check-shard``).  Nodes run
    the real :class:`CorpusValidator` per batch, so per-document
    verdicts keep its exact semantics; they also export per-document
    merge aggregates for every ``L_id`` constraint
    (:mod:`repro.shard.aggregates`).

``shard.merge``
    Reassemble verdicts into corpus order, write them through the
    result cache, absorb each node's metrics into the coordinator's
    :class:`~repro.obs.Observability`, and fold the aggregates (corpus
    order, never shard order) into corpus-level findings.

The parity contract: ``report.verdicts_json()`` is byte-identical to a
serial ``CorpusValidator(jobs=1)`` run over the same input, for every
shard count and node assignment.  Cross-document findings — which only
the merge phase can see — live on the separate
:attr:`ShardReport.corpus_violations` list, keeping the per-document
surface untouched.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Iterable, Optional

from repro.constraints.violations import Violation, ViolationReport
from repro.corpus.cache import ResultCache, result_key, \
    result_key_bytes, schema_fingerprint
from repro.corpus.report import CorpusReport, DocumentVerdict
from repro.corpus.validator import CorpusDoc, normalize_docs, \
    resolve_jobs
from repro.errors import ReproError
from repro.server.registry import as_handle
from repro.shard.aggregates import CorpusViolation, fold_aggregates
from repro.shard.locality import Locality, classify_sigma
from repro.shard.node import LocalNode, ShardNode
from repro.xmlio.dtdparse import parse_dtdc, serialize_dtdc

__all__ = ["ShardReport", "ShardedCorpusValidator", "shard_of"]


def shard_of(data: bytes, shards: int) -> int:
    """The shard owning a document, from its content bytes alone.

    Content-hash assignment makes the partition a pure function of the
    document — independent of corpus order, arrival order, and the
    number of *other* documents — which is what lets the parity suite
    permute corpora freely.
    """
    return int.from_bytes(hashlib.sha256(data).digest()[:8],
                          "big") % shards


class ShardReport(CorpusReport):
    """A :class:`CorpusReport` plus the merge phase's corpus-level view.

    Everything per-document is inherited unchanged — in particular
    :meth:`verdicts_json`, the byte-identity surface.  The additions:

    - :attr:`corpus_violations` — cross-document findings from the
      ``L_id`` fold (empty when Σ has no merge-class constraints);
    - :attr:`merge_stats` — e.g. how many locally-dangling references
      another document's IDs resolved;
    - :attr:`shards` / :attr:`shard_sizes` — the layout the run used.
    """

    def __init__(self, verdicts, shards: int = 1,
                 corpus_violations: "list[CorpusViolation] | None" = None,
                 merge_stats: "dict | None" = None,
                 shard_sizes: "dict[int, int] | None" = None, **kw):
        super().__init__(verdicts, **kw)
        self.shards = shards
        self.corpus_violations: list[CorpusViolation] = \
            list(corpus_violations or [])
        self.merge_stats: dict = dict(merge_stats or {})
        #: pending documents shipped per shard index
        self.shard_sizes: dict[int, int] = dict(shard_sizes or {})

    @property
    def corpus_ok(self) -> bool:
        """Clean per-document *and* clean across documents."""
        return self.ok and not self.corpus_violations

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["shards"] = self.shards
        out["shard_sizes"] = {str(s): n
                              for s, n in sorted(self.shard_sizes.items())}
        out["corpus_ok"] = self.corpus_ok
        out["corpus_violations"] = [v.to_dict()
                                    for v in self.corpus_violations]
        out["merge"] = self.merge_stats
        return out

    def __str__(self) -> str:
        lines = [super().__str__(),
                 f"shards: {self.shards}"]
        if self.corpus_violations:
            lines.append(f"corpus-level findings: "
                         f"{len(self.corpus_violations)}")
            lines.extend(f"  - {v}" for v in self.corpus_violations)
        resolved = self.merge_stats.get("refs_resolved_cross_document")
        if resolved:
            lines.append(
                f"references resolved cross-document: {resolved}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<ShardReport docs={len(self.verdicts)} "
                f"shards={self.shards} "
                f"corpus_violations={len(self.corpus_violations)}>")


class ShardedCorpusValidator:
    """Validate a corpus across ``shards`` validator nodes.

    ``shards=0`` means auto (one node per CPU).  ``node_factory`` builds
    one :class:`~repro.shard.node.ShardNode` per shard from its name;
    the default is in-process :class:`LocalNode` — pass
    ``node_factory=SubprocessNode`` for real ``serve --stdio`` worker
    processes (what ``repro-xic check-corpus --shards`` does).

    Nodes are started lazily on the first :meth:`validate` call and
    reused across calls (watch mode polls through one warm fleet);
    :meth:`close` — or the context-manager exit — shuts them down.
    """

    def __init__(self, dtd: "DTDC | SchemaHandle", shards: int = 1,
                 cache: "ResultCache | str | None" = None,
                 obs=None, engine: Optional[str] = None,
                 node_factory: "Callable[[str], ShardNode] | None" = None,
                 schema_name: Optional[str] = None):
        try:
            self.handle = as_handle(dtd)
        except TypeError:
            raise TypeError(
                f"ShardedCorpusValidator needs a DTDC or SchemaHandle, "
                f"got {type(dtd)!r}") from None
        self.shards = resolve_jobs(shards, flag="shards")
        self.dtd = self.handle.dtd
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(directory=cache)
        self.obs = obs
        #: per-document engine the nodes run; "auto" lets each node
        #: pick codegen when the schema supports it
        self.engine = engine or "auto"
        self.node_factory = node_factory or LocalNode
        self.schema_name = schema_name or \
            f"shard:{self.handle.fingerprint[:12]}"
        self.fingerprint = self.handle.fingerprint
        self._merge_positions = classify_sigma(self.dtd)[Locality.MERGE]
        #: result_key -> this document's merge aggregates (watch mode
        #: revalidates one file; everyone else's aggregates come from
        #: here instead of a re-ship)
        self._agg_cache: dict[str, dict] = {}
        self._nodes: "list[ShardNode] | None" = None
        self._schema_text: Optional[str] = None

    # -- node fleet ---------------------------------------------------

    def _shippable_schema(self) -> str:
        """The ``DTD^C`` text shipped to every node, round-trip
        verified *before* first use.

        ``serialize_dtdc`` canonicalizes some spellings (e.g. composite
        key fields print sorted), so a schema whose constraint objects
        do not survive ``parse(serialize(..))`` unchanged could make
        nodes emit differently-worded violations than the coordinator's
        serial baseline.  Refusing up front turns a silent parity break
        into a clear error.
        """
        if self._schema_text is None:
            text = serialize_dtdc(self.dtd)
            echo = parse_dtdc(text, root=self.dtd.structure.root)
            if tuple(echo.constraints) != tuple(self.dtd.constraints):
                raise ReproError(
                    "schema does not survive serialization: Σ re-parses "
                    "to different constraint objects (e.g. a composite "
                    "key whose field order differs from its canonical "
                    "sorted spelling) — sharded validation cannot "
                    "guarantee verdict parity for this schema")
            if schema_fingerprint(echo) != self.fingerprint:
                raise ReproError(
                    "schema does not survive serialization: fingerprint "
                    "changed across the serialize/parse round-trip — "
                    "sharded validation would cache under a different "
                    "key than serial runs")
            self._schema_text = text
        return self._schema_text

    def _ensure_nodes(self) -> "list[ShardNode]":
        if self._nodes is None:
            text = self._shippable_schema()
            nodes: list[ShardNode] = []
            try:
                for s in range(self.shards):
                    node = self.node_factory(f"shard-{s}")
                    nodes.append(node)
                    node.load_schema(self.schema_name, text,
                                     self.dtd.structure.root,
                                     self.fingerprint)
            except BaseException:
                for node in nodes:
                    node.close()
                raise
            self._nodes = nodes
        return self._nodes

    def close(self) -> None:
        """Shut the node fleet down (idempotent)."""
        if self._nodes is not None:
            for node in self._nodes:
                node.close()
            self._nodes = None

    def __enter__(self) -> "ShardedCorpusValidator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the run ------------------------------------------------------

    def validate(self, docs: Iterable[CorpusDoc]) -> ShardReport:
        """Validate the corpus; verdicts come back in input order and
        are byte-identical (``verdicts_json``) to a serial
        ``CorpusValidator(jobs=1)`` run over the same input."""
        phases: dict[str, float] = {}
        t_start = time.perf_counter()
        obs = self.obs
        run_span = obs.span("shard.run", shards=self.shards) \
            if obs else None
        if run_span:
            run_span.__enter__()
        try:
            return self._run(docs, phases, t_start)
        finally:
            if run_span:
                run_span.__exit__(None, None, None)

    def _span(self, name: str, **attrs):
        return self.obs.span(name, **attrs) if self.obs else None

    def _run(self, docs: Iterable[CorpusDoc], phases: "dict[str, float]",
             t_start: float) -> ShardReport:
        # -- partition ------------------------------------------------
        t0 = time.perf_counter()
        span = self._span("shard.partition")
        if span:
            span.__enter__()
        try:
            entries = normalize_docs(docs)
            texts: list[str] = []
            keys: list[str] = []
            for doc_id, kind, value in entries:
                if kind == "text":
                    texts.append(value)
                    keys.append(result_key(value, self.fingerprint))
                else:
                    with open(value, "rb") as fh:
                        data = fh.read()
                    texts.append(data.decode("utf-8"))
                    keys.append(result_key_bytes(data, self.fingerprint))

            need_aggs = bool(self._merge_positions)
            verdicts: list[Optional[DocumentVerdict]] = \
                [None] * len(entries)
            pending: list[int] = []
            for i, (doc_id, _kind, _value) in enumerate(entries):
                cached = self.cache.get(keys[i]) \
                    if self.cache is not None else None
                if cached is not None and (
                        not need_aggs or keys[i] in self._agg_cache):
                    verdicts[i] = DocumentVerdict(
                        doc_id, keys[i], cached.ok,
                        list(cached.violations), cached=True)
                else:
                    pending.append(i)

            by_shard: dict[int, list[int]] = {}
            for i in pending:
                s = shard_of(texts[i].encode("utf-8"), self.shards)
                by_shard.setdefault(s, []).append(i)
        finally:
            if span:
                span.__exit__(None, None, None)
        phases["partition"] = time.perf_counter() - t0

        # -- validate (one batch per shard, on its node) --------------
        t0 = time.perf_counter()
        span = self._span("shard.validate", shards=len(by_shard))
        if span:
            span.__enter__()
        try:
            # a fully cache-answered pass (watch mode's steady state)
            # never even wakes the node fleet
            nodes = self._ensure_nodes() if by_shard else []
            responses: dict[int, dict] = {}
            for s in sorted(by_shard):
                pairs = [(entries[i][0], texts[i]) for i in by_shard[s]]
                responses[s] = nodes[s].check_shard(
                    self.schema_name, pairs, engine=self.engine,
                    aggregates=need_aggs)
        finally:
            if span:
                span.__exit__(None, None, None)
        phases["validate"] = time.perf_counter() - t0

        # -- merge ----------------------------------------------------
        t0 = time.perf_counter()
        span = self._span("shard.merge")
        if span:
            span.__enter__()
        try:
            obs = self.obs
            for s in sorted(responses):
                response = responses[s]
                if obs:
                    obs.absorb({"metrics": response.get("metrics", [])})
                node_aggs = response.get("aggregates", {})
                shard_verdicts = response["verdicts"]
                indices = by_shard[s]
                if len(shard_verdicts) != len(indices):
                    raise ReproError(
                        f"shard {s} returned {len(shard_verdicts)} "
                        f"verdicts for {len(indices)} documents")
                for i, vd in zip(indices, shard_verdicts):
                    verdicts[i] = self._to_verdict(
                        entries[i][0], keys[i], vd)
                    if need_aggs:
                        # missing doc_id == parse error: no aggregates,
                        # cached as {} so the corpus is refold-able from
                        # cache alone
                        self._agg_cache[keys[i]] = \
                            node_aggs.get(entries[i][0], {})

            done = [v for v in verdicts if v is not None]
            corpus_violations: list[CorpusViolation] = []
            merge_stats: dict = {}
            if need_aggs:
                doc_aggs = [(entries[i][0],
                             self._agg_cache.get(keys[i], {}))
                            for i in range(len(entries))]
                corpus_violations, merge_stats = \
                    fold_aggregates(self.dtd, doc_aggs)
        finally:
            if span:
                span.__exit__(None, None, None)
        phases["merge"] = time.perf_counter() - t0
        phases["total"] = time.perf_counter() - t_start

        if obs and obs.metrics.enabled:
            for s in sorted(by_shard):
                obs.counter("shard_docs_assigned",
                            labels={"shard": str(s)},
                            help="pending documents shipped to each "
                            "shard node").add(len(by_shard[s]))
            obs.counter("shard_corpus_violations",
                        help="corpus-level findings from the merge fold"
                        ).add(len(corpus_violations))
            obs.counter("shard_refs_resolved_cross_document",
                        help="references dangling locally but resolved "
                        "by another document's IDs"
                        ).add(merge_stats.get(
                            "refs_resolved_cross_document", 0))
        return ShardReport(
            done, shards=self.shards,
            corpus_violations=corpus_violations,
            merge_stats=merge_stats,
            shard_sizes={s: len(ix) for s, ix in by_shard.items()},
            jobs=self.shards, phases=phases,
            cache_stats=self.cache.stats()
            if self.cache is not None else None,
            obs=obs or None)

    def _to_verdict(self, doc_id: str, key: str,
                    verdict_dict: dict) -> DocumentVerdict:
        """Rebuild one node verdict; write clean/invalid (not errored)
        results through the coordinator's cache, exactly like the
        serial validator does."""
        if verdict_dict.get("error") is not None:
            return DocumentVerdict(doc_id, key, False,
                                   error=verdict_dict["error"])
        violations = [Violation.from_dict(v)
                      for v in verdict_dict["violations"]]
        if self.cache is not None:
            report = ViolationReport(list(violations))
            self.cache.put(key, report)
        return DocumentVerdict(doc_id, key, verdict_dict["ok"],
                               violations)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<ShardedCorpusValidator "
                f"root={self.dtd.structure.root!r} "
                f"shards={self.shards} "
                f"nodes={self.node_factory.__name__}>")
