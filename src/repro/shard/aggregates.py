"""Per-document partial aggregates and the coordinator's merge fold.

A shard node exports, for every merge-class (``L_id``) constraint, a
small JSON-safe aggregate of one document — ID-value occurrence counts,
locally-dangling IDREF candidate sets, inverse pairing rows — produced
by the evaluator's own
:meth:`~repro.constraints.evaluators.ConstraintEvaluator.corpus_aggregate`
hook, so the exported view and the per-document semantics can never
drift apart.

The coordinator folds the per-document aggregates, in corpus order,
into *corpus-level* findings: cross-document ID clashes, references
dangling corpus-wide, inverse pairs violated across documents.  The
fold is a pure function of ``(Σ, per-document aggregates in corpus
order)`` — it never sees the shard layout — so its output is identical
for every shard count and node assignment by construction.  Per-
document verdicts are untouched: they keep exact ``CorpusValidator``
semantics (byte-identical ``verdicts_json``), and the corpus findings
ride alongside them on the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constraints.evaluators import evaluator_for
from repro.constraints.lang_lid import IDSetValuedForeignKey
from repro.datamodel.indexes import AttributeIndex
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.shard.locality import Locality, classify_constraint, \
    classify_sigma

__all__ = ["CorpusViolation", "extract_aggregates", "fold_aggregates"]


@dataclass
class CorpusViolation:
    """One corpus-level finding from the merge fold.

    Distinct from a per-document
    :class:`~repro.constraints.violations.Violation`: it names the
    documents involved instead of vertices, and only exists for
    merge-class constraints whose corpus semantics span documents.
    """

    code: str
    message: str
    constraint: str
    documents: "list[str]"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message,
                "constraint": self.constraint,
                "documents": list(self.documents)}

    def __str__(self) -> str:
        return f"[{self.code}] {self.message} " \
               f"({', '.join(self.documents)})"


def extract_aggregates(dtd: DTDC, tree: DataTree) -> "dict[str, dict]":
    """One document's merge aggregates, keyed by Σ position (as str).

    Builds the document's :class:`AttributeIndex` once, then asks each
    merge-class evaluator for its exported view after a ``full()``
    build.  Constraints whose evaluator exports nothing (e.g. an
    ``L_id`` constraint over a type with no declared ID attribute —
    statically violated per document) are simply absent.
    """
    positions = classify_sigma(dtd)[Locality.MERGE]
    if not positions:
        return {}
    id_map = dtd.structure.id_attribute_map()
    index = AttributeIndex(tree, id_attributes=id_map)
    out: dict[str, dict] = {}
    for i in positions:
        evaluator = evaluator_for(dtd.constraints[i], index, id_map)
        evaluator.full()
        aggregate = evaluator.corpus_aggregate()
        if aggregate is not None:
            out[str(i)] = aggregate
    return out


def fold_aggregates(
    dtd: DTDC,
    doc_aggregates: "list[tuple[str, dict[str, dict]]]",
) -> "tuple[list[CorpusViolation], dict[str, int]]":
    """Fold per-document aggregates (corpus order) into corpus findings.

    Returns ``(violations, stats)`` where ``stats`` counts references
    that dangle in their own document but resolve against an ID held by
    *another* document (``refs_resolved_cross_document``) — the merge
    phase's positive signal, surfaced as a ``shard_*`` metric.
    """
    violations: list[CorpusViolation] = []
    resolved = 0
    for i, constraint in enumerate(dtd.constraints):
        if classify_constraint(constraint) is not Locality.MERGE:
            continue
        key = str(i)
        entries = [(pos, doc_id, aggs[key])
                   for pos, (doc_id, aggs) in enumerate(doc_aggregates)
                   if key in aggs]
        if not entries:
            continue
        kind = entries[0][2]["kind"]
        if kind == "id":
            _fold_id(constraint, entries, violations)
        elif kind == "ref":
            resolved += _fold_ref(constraint, entries, violations)
        elif kind == "inverse":
            _fold_inverse(constraint, entries, violations)
    return violations, {"refs_resolved_cross_document": resolved}


def _fold_id(constraint, entries, violations) -> None:
    """Cross-document ID clashes: a value owned in two or more
    documents, at least one owner carrying the constraint's element
    type.  Clashes confined to one document are that document's own
    verdict (already emitted there) and are *not* repeated here."""
    per_value: dict[str, list] = {}
    for _pos, doc_id, agg in entries:
        for value, n_owners, n_element in agg["owners"]:
            per_value.setdefault(value, []).append(
                (doc_id, n_owners, n_element))
    for value in sorted(per_value):
        rows = per_value[value]
        if len(rows) < 2:
            continue
        if not any(n_element for _doc, _n, n_element in rows):
            continue
        total = sum(n for _doc, n, _ne in rows)
        violations.append(CorpusViolation(
            "id-clash",
            f"ID value {value!r} is shared by {total} elements across "
            f"{len(rows)} documents",
            str(constraint), [doc for doc, _n, _ne in rows]))


def _fold_ref(constraint, entries, violations) -> int:
    """Corpus-dangling IDREFs: values missing locally everywhere they
    are referenced *and* owned by no document's target-typed IDs.
    Locally-missing values that another document's IDs cover count as
    resolved-cross-document instead."""
    code = "set-foreign-key" \
        if isinstance(constraint, IDSetValuedForeignKey) else "foreign-key"
    corpus_targets: set[str] = set()
    for _pos, _doc, agg in entries:
        corpus_targets.update(agg["targets"])
    dangling: dict[str, list[str]] = {}
    resolved = 0
    for _pos, doc_id, agg in entries:
        for value in agg["missing"]:
            if value in corpus_targets:
                resolved += 1
            else:
                dangling.setdefault(value, []).append(doc_id)
    for value in sorted(dangling):
        violations.append(CorpusViolation(
            code,
            f"value {value!r} is not an ID of {constraint.target!r} "
            "elements in any document",
            str(constraint), dangling[value]))
    return resolved


def _fold_inverse(constraint, entries, violations) -> None:
    """Inverse pairs violated *across* documents: an element in one
    document references an ID held by another document, which does not
    reference back.  Same-document pairs are per-document verdicts."""
    element_rows = [(pos, doc_id, key, refs)
                    for pos, doc_id, agg in entries
                    for key, refs in agg["element"]]
    target_rows = [(pos, doc_id, key, refs)
                   for pos, doc_id, agg in entries
                   for key, refs in agg["target"]]
    # direction 0: target-typed elements reference element-typed IDs
    _fold_direction(constraint, element_rows, target_rows,
                    constraint.element, constraint.target, violations)
    # direction 1: element-typed elements reference target-typed IDs
    _fold_direction(constraint, target_rows, element_rows,
                    constraint.target, constraint.element, violations)


def _fold_direction(constraint, key_rows, ref_rows, a_label, b_label,
                    violations) -> None:
    by_key: dict[str, list] = {}
    for x_index, row in enumerate(key_rows):
        key: Optional[str] = row[2]
        if key is not None:
            by_key.setdefault(key, []).append((x_index, *row))
    seen: "set[tuple[int, int]]" = set()
    for y_index, (y_pos, y_doc, y_key, y_refs) in enumerate(ref_rows):
        for value in y_refs:
            for x_index, x_pos, x_doc, _x_key, x_refs \
                    in by_key.get(value, ()):
                if x_pos == y_pos:
                    continue  # same document: a local pairing
                if y_key is not None and y_key in x_refs:
                    continue  # referenced back: satisfied
                if (x_index, y_index) in seen:
                    continue
                seen.add((x_index, y_index))
                violations.append(CorpusViolation(
                    "inverse",
                    f"{b_label!r} element references {a_label!r} ID "
                    f"{value!r} in another document but is not "
                    "referenced back",
                    str(constraint), [x_doc, y_doc]))
