"""Static constraint locality analysis over Σ.

*Distributed XML Design* (Abiteboul, Gottlob & Manna) asks which
constraints can be verified per-fragment without cross-fragment joins.
For a corpus sharded document-by-document the paper's own taxonomy
(Section 2) answers it syntactically, before any document is read:

- every ``L`` and ``L_u`` constraint — keys, foreign keys, set-valued
  foreign keys, inverses over explicit key fields — quantifies over the
  extensions of *one* document, so each shard decides it locally
  (:data:`Locality.LOCAL`);
- every ``L_id`` constraint rides the DTD's ID/IDREF mechanism, whose
  scope is the whole corpus once documents are federated: ID uniqueness
  must hold across shards and an IDREF may resolve to an ID held by
  another shard.  These need a coordinator merge over per-document
  aggregates (:data:`Locality.MERGE`).

The classification here is the *static* (schema-level) side; the
runtime side lives on the evaluators
(:attr:`~repro.constraints.evaluators.ConstraintEvaluator.locality`
plus ``corpus_aggregate()``), and a test pins the two views to agree
class-by-class.
"""

from __future__ import annotations

import enum

from repro.constraints.base import Constraint
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.dtd.dtdc import DTDC
from repro.errors import ConstraintError

__all__ = ["Locality", "classify_constraint", "classify_sigma"]


class Locality(enum.Enum):
    """Where a constraint is decided in a sharded corpus run."""

    #: decided inside each shard node, per document
    LOCAL = "local"
    #: needs the coordinator's fold over per-document aggregates
    MERGE = "merge"

    def __str__(self) -> str:
        return self.value


#: The syntactic classification: constraint class -> locality.
_LOCAL_CLASSES = (Key, UnaryKey, ForeignKey, UnaryForeignKey,
                  SetValuedForeignKey, Inverse)
_MERGE_CLASSES = (IDConstraint, IDForeignKey, IDSetValuedForeignKey,
                  IDInverse)


def classify_constraint(constraint: Constraint) -> Locality:
    """The shard locality of one constraint, from its class alone."""
    if isinstance(constraint, _LOCAL_CLASSES):
        return Locality.LOCAL
    if isinstance(constraint, _MERGE_CLASSES):
        return Locality.MERGE
    raise ConstraintError(
        f"cannot classify constraint of type {type(constraint)!r} "
        "for sharding")


def classify_sigma(dtd: DTDC) -> "dict[Locality, list[int]]":
    """Split Σ by locality; values are constraint positions in Σ order.

    Positions (not constraint objects) key the merge fold: per-document
    aggregates ship keyed by position, so the coordinator never has to
    re-identify constraints across the wire.
    """
    split: dict[Locality, list[int]] = {Locality.LOCAL: [],
                                        Locality.MERGE: []}
    for i, constraint in enumerate(dtd.constraints):
        split[classify_constraint(constraint)].append(i)
    return split
