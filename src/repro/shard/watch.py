"""Incremental ``--watch`` mode over a sharded corpus.

A :class:`WatchSession` keeps a manifest of ``(path, size, mtime_ns,
sha256)`` for every corpus file.  Each :meth:`poll` re-stats the
corpus; files whose ``(size, mtime_ns)`` are unchanged are trusted
without re-reading, files whose stat moved are re-hashed, and only
files whose *content* hash actually changed (plus new files) are
revalidated — everything else is answered from the coordinator's
result/aggregate caches, so a steady-state poll is stat calls and
nothing more.  Every wake-up with changes emits exactly one
incremental report: the full corpus fold (cross-document ``L_id``
findings must be recomputed when any document moves) with a
:attr:`WatchDelta.changed` list naming what was actually revalidated.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.shard.coordinator import ShardReport, ShardedCorpusValidator

__all__ = ["WatchDelta", "WatchSession"]


@dataclass
class ManifestEntry:
    """What the watcher remembers about one corpus file."""

    size: int
    mtime_ns: int
    sha256: str


@dataclass
class WatchDelta:
    """One wake-up's outcome: the refreshed report plus what moved."""

    #: poll sequence number (1 = the cold full pass)
    cycle: int
    #: full corpus report (verdicts for *all* files, corpus fold redone)
    report: ShardReport
    #: paths revalidated this cycle (content changed, or new)
    changed: "list[str]" = field(default_factory=list)
    #: paths dropped from the corpus since the last cycle
    removed: "list[str]" = field(default_factory=list)
    #: paths answered from cache without re-reading content
    unchanged: "list[str]" = field(default_factory=list)

    @property
    def delta_verdicts(self):
        """The changed files' verdicts only — the incremental slice."""
        changed = set(self.changed)
        return [v for v in self.report.verdicts if v.doc_id in changed]

    def to_dict(self) -> dict:
        return {"cycle": self.cycle,
                "changed": list(self.changed),
                "removed": list(self.removed),
                "unchanged": len(self.unchanged),
                "corpus_ok": self.report.corpus_ok,
                "verdicts": [v.to_dict() for v in self.delta_verdicts],
                "corpus_violations": [v.to_dict() for v in
                                      self.report.corpus_violations]}

    def __str__(self) -> str:
        head = (f"watch cycle {self.cycle}: {len(self.changed)} "
                f"changed, {len(self.unchanged)} unchanged"
                + (f", {len(self.removed)} removed"
                   if self.removed else ""))
        if not self.changed and not self.removed:
            return head
        lines = [head]
        lines.extend(f"  ~ {v}" for v in self.delta_verdicts)
        if self.report.corpus_violations:
            lines.append(f"  corpus-level findings: "
                         f"{len(self.report.corpus_violations)}")
            lines.extend(f"    - {v}"
                         for v in self.report.corpus_violations)
        return "\n".join(lines)


def _expand(paths: "Iterable[str | os.PathLike]") -> "list[str]":
    """Corpus file list: directories expand to their sorted ``*.xml``
    members on every poll (new files are picked up), plain files pass
    through.  Mirrors ``check-corpus``'s directory handling."""
    out: list[str] = []
    for p in paths:
        p = os.fspath(p)
        if os.path.isdir(p):
            out.extend(sorted(
                os.path.join(p, name) for name in os.listdir(p)
                if name.endswith(".xml")))
        else:
            out.append(p)
    return out


class WatchSession:
    """Poll-driven incremental revalidation of an on-disk corpus.

    The session owns no timer: :meth:`poll` does one wake-up and
    returns its :class:`WatchDelta` (or ``None`` when nothing changed),
    so tests and the CLI loop drive it however they like;
    :meth:`run` is the convenience sleep-loop behind
    ``check-corpus --watch``.
    """

    def __init__(self, validator: ShardedCorpusValidator,
                 paths: "Iterable[str | os.PathLike]", obs=None):
        self.validator = validator
        self.paths = [os.fspath(p) for p in paths]
        self.obs = obs if obs is not None else validator.obs
        self.manifest: dict[str, ManifestEntry] = {}
        self.cycle = 0

    # -- change detection ---------------------------------------------

    def _scan(self) -> "tuple[list[str], list[str], list[str], list[str]]":
        """One manifest pass: ``(files, changed, unchanged, removed)``.

        Stat is the fast path — a file whose ``(size, mtime_ns)`` both
        match the manifest is trusted unchanged without opening it.  A
        moved stat triggers a re-hash; only a changed sha256 (or a new
        file) marks the file changed, so ``touch`` alone does not
        revalidate anything.
        """
        files = _expand(self.paths)
        changed: list[str] = []
        unchanged: list[str] = []
        seen: set[str] = set()
        for path in files:
            seen.add(path)
            st = os.stat(path)
            entry = self.manifest.get(path)
            if entry is not None and entry.size == st.st_size \
                    and entry.mtime_ns == st.st_mtime_ns:
                unchanged.append(path)
                continue
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            if entry is not None and entry.sha256 == digest:
                entry.size = st.st_size
                entry.mtime_ns = st.st_mtime_ns
                unchanged.append(path)
                continue
            self.manifest[path] = ManifestEntry(
                st.st_size, st.st_mtime_ns, digest)
            changed.append(path)
        removed = sorted(set(self.manifest) - seen)
        for path in removed:
            del self.manifest[path]
        return files, changed, unchanged, removed

    # -- one wake-up --------------------------------------------------

    def poll(self) -> Optional[WatchDelta]:
        """One wake-up.  Returns ``None`` on a steady-state poll (no
        content changed, nothing removed, not the first pass);
        otherwise one :class:`WatchDelta` for the whole wake-up."""
        self.cycle += 1
        span = self.obs.span("watch.poll", cycle=self.cycle) \
            if self.obs else None
        if span:
            span.__enter__()
        try:
            files, changed, unchanged, removed = self._scan()
            if self.obs and self.obs.metrics.enabled:
                self.obs.counter(
                    "watch_polls", help="watch-mode wake-ups").add(1)
                self.obs.counter(
                    "watch_files_revalidated",
                    help="corpus files revalidated by watch wake-ups "
                    "(content actually changed)").add(len(changed))
                self.obs.counter(
                    "watch_files_unchanged",
                    help="corpus files answered from the manifest "
                    "without revalidation").add(len(unchanged))
            if not changed and not removed and self.cycle > 1:
                return None
            # the validator's caches answer every unchanged file; only
            # the changed ones travel to a node
            report = self.validator.validate(files)
            return WatchDelta(self.cycle, report, changed=changed,
                              removed=removed, unchanged=unchanged)
        finally:
            if span:
                span.__exit__(None, None, None)

    def run(self, interval: float = 1.0,
            max_cycles: Optional[int] = None,
            on_delta: "Callable[[WatchDelta], None] | None" = None,
            sleep: "Callable[[float], None]" = time.sleep
            ) -> Optional[WatchDelta]:
        """The CLI loop: poll, report deltas, sleep, repeat.

        ``max_cycles`` bounds the loop (tests, ``--max-cycles``);
        ``None`` runs until interrupted.  Returns the last delta seen.
        """
        last: Optional[WatchDelta] = None
        cycles = 0
        while max_cycles is None or cycles < max_cycles:
            delta = self.poll()
            cycles += 1
            if delta is not None:
                last = delta
                if on_delta is not None:
                    on_delta(delta)
            if max_cycles is not None and cycles >= max_cycles:
                break
            sleep(interval)
        return last
