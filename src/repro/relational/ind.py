"""Inclusion dependencies and their (IND-only) implication.

Casanova, Fagin and Papadimitriou showed that implication of inclusion
dependencies alone is finitely axiomatized by

- reflexivity:      ``R[X] ⊆ R[X]``,
- projection & permutation: from ``R[A1..An] ⊆ S[B1..Bn]`` infer
  ``R[Ai1..Aik] ⊆ S[Bi1..Bik]`` for any sequence of distinct indices,
- transitivity,

and that (unlike FDs+INDs together) implication and finite implication
coincide.  :func:`ind_implies` implements the complete decision
procedure as a BFS over "aligned states": a state is a pair
``(relation, attribute-tuple)``; one step applies a stated IND through a
projection/permutation of its left side.  The search space is bounded by
the number of (relation, k-tuple) pairs — exponential in the arity of
the query (IND implication is PSPACE-complete), fine at the arities the
experiments use.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class IND:
    """An inclusion dependency ``relation[attrs] ⊆ target[target_attrs]``."""

    relation: str
    attrs: tuple[str, ...]
    target: str
    target_attrs: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "attrs", tuple(self.attrs))
        object.__setattr__(self, "target_attrs", tuple(self.target_attrs))
        if len(self.attrs) != len(self.target_attrs):
            raise ValueError("IND arity mismatch")
        if not self.attrs:
            raise ValueError("an IND needs at least one attribute")
        if len(set(self.attrs)) != len(self.attrs) or \
                len(set(self.target_attrs)) != len(self.target_attrs):
            raise ValueError("repeated attributes in an IND side")

    def __str__(self) -> str:
        return (f"{self.relation}[{', '.join(self.attrs)}] sub "
                f"{self.target}[{', '.join(self.target_attrs)}]")


def _apply(state: tuple[str, tuple[str, ...]], ind: IND
           ) -> tuple[str, tuple[str, ...]] | None:
    """Apply one stated IND to a state via projection/permutation.

    The state's attributes must all occur on the IND's left side; the
    successor re-addresses them through the IND's alignment.
    """
    relation, attrs = state
    if relation != ind.relation:
        return None
    align = dict(zip(ind.attrs, ind.target_attrs))
    try:
        image = tuple(align[a] for a in attrs)
    except KeyError:
        return None
    return (ind.target, image)


def ind_implies(sigma: Iterable[IND], phi: IND) -> bool:
    """Whether the IND set implies ``phi`` (CFP-complete; both
    implication flavours coincide for INDs alone)."""
    sigma = list(sigma)
    start = (phi.relation, phi.attrs)
    goal = (phi.target, phi.target_attrs)
    if start == goal:
        return True  # reflexivity
    seen = {start}
    queue: deque[tuple[str, tuple[str, ...]]] = deque((start,))
    while queue:
        state = queue.popleft()
        for ind in sigma:
            succ = _apply(state, ind)
            if succ is None or succ in seen:
                continue
            if succ == goal:
                return True
            seen.add(succ)
            queue.append(succ)
    return False
