"""Relational keys and foreign keys, and their implication problems.

This module carries the relational projections of the paper's results:

- **Corollary 3.5** — unary primary keys/foreign keys: implication and
  finite implication coincide and are linear-time.  Decided by
  delegation to :class:`~repro.implication.lu_primary.LuPrimaryEngine`
  (relations become element types, attributes stay attributes).
- **Corollary 3.9** — multi-attribute *primary* keys/foreign keys:
  the problems coincide and are decidable, via
  :class:`~repro.implication.l_primary.LPrimaryEngine`.
- **Corollary 3.7** — *general* keys/foreign keys: undecidable.  The
  engine translates keys to FDs (``X -> all attributes``) and foreign
  keys to INDs and runs the bounded :func:`~repro.relational.chase.chase`,
  reporting ``UNKNOWN`` when the budget runs out.

The unary non-primary case (general unary keys/FKs) is decided by the
cycle-rule machinery of :class:`~repro.implication.lu.LuEngine` — the
Cosmadakis–Kanellakis–Vardi situation the paper builds on, where the two
implication problems differ.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.constraints.base import Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import UnaryForeignKey, UnaryKey
from repro.errors import ImplicationError
from repro.implication.l_primary import LPrimaryEngine
from repro.implication.lu import LuEngine
from repro.implication.lu_primary import LuPrimaryEngine
from repro.implication.result import ImplicationResult
from repro.relational.chase import ChaseResult, chase
from repro.relational.fd import FD
from repro.relational.ind import IND
from repro.relational.schema import Database


@dataclass(frozen=True)
class RelationalKey:
    """``relation[attrs] -> relation`` (attrs is a set)."""

    relation: str
    attrs: frozenset[str]

    def __post_init__(self):
        object.__setattr__(self, "attrs", frozenset(self.attrs))

    def __str__(self) -> str:
        return f"{self.relation}[{', '.join(sorted(self.attrs))}] -> " \
               f"{self.relation}"


@dataclass(frozen=True)
class RelationalForeignKey:
    """``relation[attrs] ⊆ target[target_attrs]`` with the target a key."""

    relation: str
    attrs: tuple[str, ...]
    target: str
    target_attrs: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "attrs", tuple(self.attrs))
        object.__setattr__(self, "target_attrs", tuple(self.target_attrs))
        if len(self.attrs) != len(self.target_attrs):
            raise ValueError("foreign key arity mismatch")

    def __str__(self) -> str:
        return (f"{self.relation}[{', '.join(self.attrs)}] sub "
                f"{self.target}[{', '.join(self.target_attrs)}]")


RelationalConstraint = "RelationalKey | RelationalForeignKey"


def _to_xml(c) -> "Key | ForeignKey":
    """Relations as element types: the translation behind the corollaries."""
    if isinstance(c, RelationalKey):
        return Key(c.relation, tuple(Field(a) for a in sorted(c.attrs)))
    if isinstance(c, RelationalForeignKey):
        return ForeignKey(c.relation, tuple(Field(a) for a in c.attrs),
                          c.target, tuple(Field(a) for a in c.target_attrs))
    raise ImplicationError(f"not a relational key/foreign key: {c!r}")


def _is_unary(constraints) -> bool:
    return all(
        (isinstance(c, RelationalKey) and len(c.attrs) == 1)
        or (isinstance(c, RelationalForeignKey) and len(c.attrs) == 1)
        for c in constraints)


def _to_unary_xml(c) -> "UnaryKey | UnaryForeignKey":
    if isinstance(c, RelationalKey):
        (a,) = c.attrs
        return UnaryKey(c.relation, Field(a))
    (a,) = c.attrs
    (b,) = c.target_attrs
    return UnaryForeignKey(c.relation, Field(a), c.target, Field(b))


class RelationalKeyFKEngine:
    """Implication of relational keys/foreign keys in three regimes.

    ``mode`` is one of:

    - ``"unary"``          — general unary constraints (CKV-style; the
      two implication problems may differ, Cor 3.3's relational twin);
    - ``"unary-primary"``  — Corollary 3.5 (problems coincide);
    - ``"primary"``        — Corollary 3.9 (multi-attribute primary);
    - ``"general"``        — Corollary 3.7 (undecidable; bounded chase).
    """

    def __init__(self, database: Database, sigma: Iterable,
                 mode: str = "general"):
        self.database = database
        self.sigma = list(sigma)
        self.mode = mode
        if mode == "unary":
            if not _is_unary(self.sigma):
                raise ImplicationError("mode 'unary' needs unary constraints")
            self._engine = LuEngine([_to_unary_xml(c) for c in self.sigma])
        elif mode == "unary-primary":
            if not _is_unary(self.sigma):
                raise ImplicationError(
                    "mode 'unary-primary' needs unary constraints")
            self._engine = LuPrimaryEngine(
                [_to_unary_xml(c) for c in self.sigma])
        elif mode == "primary":
            self._engine = LPrimaryEngine([_to_xml(c) for c in self.sigma])
        elif mode == "general":
            self._engine = None
        else:
            raise ImplicationError(f"unknown mode {mode!r}")

    # -- decidable modes -----------------------------------------------------------

    def implies(self, phi) -> ImplicationResult:
        """Unrestricted implication (decidable modes only)."""
        if self.mode == "general":
            raise ImplicationError(
                "general keys/foreign keys are undecidable (Cor 3.7); "
                "use chase_implies() for the bounded semi-decision")
        if self.mode == "unary":
            return self._engine.implies(_to_unary_xml(phi))
        if self.mode == "unary-primary":
            return self._engine.implies(_to_unary_xml(phi))
        return self._engine.implies(_to_xml(phi))

    def finitely_implies(self, phi) -> ImplicationResult:
        """Finite implication (decidable modes only)."""
        if self.mode == "general":
            raise ImplicationError(
                "general keys/foreign keys are undecidable (Cor 3.7); "
                "use chase_implies() for the bounded semi-decision")
        if self.mode == "unary":
            return self._engine.finitely_implies(_to_unary_xml(phi))
        if self.mode == "unary-primary":
            return self._engine.finitely_implies(_to_unary_xml(phi))
        return self._engine.finitely_implies(_to_xml(phi))

    # -- the undecidable regime ------------------------------------------------------

    def to_dependencies(self) -> tuple[list[FD], list[IND]]:
        """Translate Σ into FDs + INDs (the Theorem 3.6 reduction's
        target classes): a key becomes ``X -> all attributes``, a foreign
        key becomes an IND (its target-key side condition becomes the
        corresponding FD)."""
        fds: list[FD] = []
        inds: list[IND] = []
        for c in self.sigma:
            if isinstance(c, RelationalKey):
                schema = self.database.relation(c.relation)
                fds.append(FD(c.relation, c.attrs,
                              frozenset(schema.attributes)))
            elif isinstance(c, RelationalForeignKey):
                inds.append(IND(c.relation, c.attrs, c.target,
                                c.target_attrs))
            else:
                raise ImplicationError(f"not a relational constraint: {c!r}")
        return fds, inds

    def chase_implies(self, phi, max_steps: int = 10_000,
                      max_rows: int = 5_000) -> ChaseResult:
        """Bounded chase semi-decision for any mode (the only option in
        ``general`` mode).  ``IMPLIED`` and ``NOT_IMPLIED`` verdicts are
        sound for both implication flavours; ``UNKNOWN`` is the honest
        face of Corollary 3.7."""
        fds, inds = self.to_dependencies()
        if isinstance(phi, RelationalKey):
            schema = self.database.relation(phi.relation)
            goal = FD(phi.relation, phi.attrs, frozenset(schema.attributes))
        elif isinstance(phi, RelationalForeignKey):
            goal = IND(phi.relation, phi.attrs, phi.target, phi.target_attrs)
        else:
            raise ImplicationError(f"not a relational constraint: {phi!r}")
        return chase(self.database, fds, inds, goal,
                     max_steps=max_steps, max_rows=max_rows)


def coincide_under_primary(database: Database, sigma: Iterable,
                           queries: Iterable) -> bool:
    """Empirical check of Cor 3.5/3.9: implication == finite implication
    on every query, in primary mode."""
    engine = RelationalKeyFKEngine(database, sigma, mode="primary")
    return all(bool(engine.implies(q)) == bool(engine.finitely_implies(q))
               for q in queries)
