"""Relation schemas, database schemas and instances."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """A named relation with an ordered tuple of attribute names."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"duplicate attribute names in relation {self.name!r}")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} has no attributes")

    def positions(self, attrs: Iterable[str]) -> tuple[int, ...]:
        """The positions of the given attribute names."""
        index = {a: i for i, a in enumerate(self.attributes)}
        try:
            return tuple(index[a] for a in attrs)
        except KeyError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {exc.args[0]!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class Database:
    """A database schema: a set of relation schemas addressed by name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for r in relations:
            self.add(r)

    def add(self, relation: RelationSchema) -> None:
        """Add a relation schema; duplicate names are rejected."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation by name (raises on unknown names)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        """Whether the schema declares the named relation."""
        return name in self._relations

    @property
    def relations(self) -> list[RelationSchema]:
        """The relation schemas in declaration order."""
        return list(self._relations.values())

    def __iter__(self):
        return iter(self._relations.values())

    def __str__(self) -> str:
        return "; ".join(str(r) for r in self._relations.values())


@dataclass
class Instance:
    """A database instance: relation name -> set of value tuples.

    Tuples follow the attribute order of the relation schema.  Values
    are arbitrary hashables (strings in all the XML-facing paths).
    """

    database: Database
    rows: dict[str, set[tuple]] = field(default_factory=dict)

    def add_row(self, relation: str, values: "tuple | Mapping[str, object]"
                ) -> None:
        """Insert one tuple, given positionally or by attribute name."""
        schema = self.database.relation(relation)
        if isinstance(values, Mapping):
            values = tuple(values[a] for a in schema.attributes)
        values = tuple(values)
        if len(values) != len(schema.attributes):
            raise SchemaError(
                f"arity mismatch for {relation!r}: got {len(values)}, "
                f"expected {len(schema.attributes)}")
        self.rows.setdefault(relation, set()).add(values)

    def relation_rows(self, relation: str) -> set[tuple]:
        """The tuple set of one relation (empty when unpopulated)."""
        self.database.relation(relation)  # validate the name
        return self.rows.get(relation, set())

    def project(self, relation: str, attrs: Iterable[str]) -> set[tuple]:
        """The projection of a relation onto the given attributes."""
        schema = self.database.relation(relation)
        positions = schema.positions(attrs)
        return {tuple(row[p] for p in positions)
                for row in self.rows.get(relation, set())}

    def size(self) -> int:
        """Total number of tuples."""
        return sum(len(r) for r in self.rows.values())
