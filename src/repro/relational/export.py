"""Relational → XML translation preserving keys and foreign keys.

Follows the publisher/editor example of §1/§2.4: each relation ``R``
becomes a container element ``Rs`` holding one ``R`` element per tuple;
tuple fields become *sub-elements* with string content, and the original
keys/foreign keys become ``L`` constraints over sub-element fields
(the §3.4 extension)::

    <!ELEMENT publishers (publisher*)>
    <!ELEMENT publisher (pname, country, address)>
    ...
    publisher[pname, country] -> publisher
    editor[pname, country] sub publisher[pname, country]
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import UnaryForeignKey, UnaryKey
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure
from repro.relational.keys import RelationalForeignKey, RelationalKey
from repro.relational.schema import Database, Instance


def container_name(relation: str) -> str:
    """The container element for a relation (``publisher`` →
    ``publishers``)."""
    return relation + "s"


def export_schema(database: Database,
                  constraints: Iterable = (),
                  root: str = "db") -> DTDC:
    """Translate a database schema plus keys/foreign keys into a
    ``DTD^C`` with ``L`` constraints over sub-elements."""
    structure = DTDStructure(root)
    containers = ", ".join(f"{container_name(r.name)}"
                           for r in database)
    structure.define_element(root, f"({containers})" if containers
                             else "EMPTY")
    field_elements: set[str] = set()
    for relation in database:
        structure.define_element(container_name(relation.name),
                                 f"({relation.name})*")
        structure.define_element(relation.name,
                                 "(" + ", ".join(relation.attributes) + ")")
        field_elements.update(relation.attributes)
    for name in sorted(field_elements):
        structure.define_element(name, "(#PCDATA)")
    xml_constraints: list[Constraint] = []
    for c in constraints:
        xml_constraints.append(_translate_constraint(c))
    return DTDC(structure, xml_constraints)


def _translate_constraint(c) -> Constraint:
    if isinstance(c, RelationalKey):
        fields = tuple(Field(a, is_element=True) for a in sorted(c.attrs))
        if len(fields) == 1:
            return UnaryKey(c.relation, fields[0])
        return Key(c.relation, fields)
    if isinstance(c, RelationalForeignKey):
        src = tuple(Field(a, is_element=True) for a in c.attrs)
        dst = tuple(Field(a, is_element=True) for a in c.target_attrs)
        if len(src) == 1:
            return UnaryForeignKey(c.relation, src[0], c.target, dst[0])
        return ForeignKey(c.relation, src, c.target, dst)
    raise TypeError(f"not a relational constraint: {c!r}")


def export_database(instance: Instance,
                    constraints: Iterable = (),
                    root: str = "db") -> tuple[DTDC, DataTree]:
    """Translate a schema *and* its data; returns ``(DTD^C, data tree)``.

    The exported document is valid with respect to the exported DTD
    whenever the instance satisfied its constraints — preserving the
    semantics of the legacy data, which is the §1 motivation for ``L``.
    """
    dtd = export_schema(instance.database, constraints, root=root)
    tree = DataTree(root)
    for relation in instance.database:
        container = tree.create(container_name(relation.name))
        tree.root.append(container)
        for row in sorted(instance.relation_rows(relation.name),
                          key=lambda r: tuple(map(str, r))):
            element = tree.create(relation.name)
            container.append(element)
            for attr, value in zip(relation.attributes, row):
                leaf = tree.create(attr)
                leaf.append(str(value))
                element.append(leaf)
    return dtd, tree
