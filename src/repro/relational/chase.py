"""The chase over tableaux with labeled nulls, for FDs + INDs.

Implication of FDs and INDs *together* is undecidable (Mitchell;
Chandra–Vardi) — this is the engine behind Theorem 3.6 / Corollary 3.7.
The chase is the classical semi-decision procedure:

- to test ``Σ ⊨ X → Y`` on ``R``: start from two rows of ``R`` that
  agree (share labeled nulls) exactly on ``X``; chase with Σ; the FD is
  implied iff the chase equates the two rows on all of ``Y``;
- to test ``Σ ⊨ R[X] ⊆ S[Y]``: start from a single fresh row of ``R``;
  the IND is implied iff the chase produces a matching ``S`` row.

When the chase **terminates** without establishing the goal, the chased
tableau is a finite model of Σ violating φ — a counterexample valid for
both implication and finite implication.  Because FD+IND chases need not
terminate, the engine takes step/row budgets and reports ``UNKNOWN``
honestly when they are exhausted; that unavoidable third verdict *is*
the undecidability of Theorem 3.6 made operational.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Iterable
from dataclasses import dataclass

from repro.relational.fd import FD
from repro.relational.ind import IND
from repro.relational.schema import Database, Instance


class ChaseOutcome(enum.Enum):
    """Verdict of a bounded chase run."""

    IMPLIED = "implied"            # goal established; holds in all models
    NOT_IMPLIED = "not-implied"    # chase terminated; finite counterexample
    UNKNOWN = "unknown"            # budget exhausted (undecidable in general)


@dataclass
class ChaseResult:
    """Outcome of :func:`chase` plus diagnostics."""

    outcome: ChaseOutcome
    steps: int
    model: Instance | None = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.outcome is ChaseOutcome.IMPLIED


class _UnionFind:
    """Union-find over integer value ids (labeled nulls)."""

    def __init__(self):
        self.parent: dict[int, int] = {}
        self.counter = itertools.count()

    def fresh(self) -> int:
        v = next(self.counter)
        self.parent[v] = v
        return v

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[max(ra, rb)] = min(ra, rb)
        return True


class _Tableau:
    """Rows of labeled nulls, one list per relation."""

    def __init__(self, database: Database):
        self.database = database
        self.uf = _UnionFind()
        self.rows: dict[str, list[tuple[int, ...]]] = {
            r.name: [] for r in database}

    def fresh_row(self, relation: str,
                  fixed: dict[str, int] | None = None) -> tuple[int, ...]:
        schema = self.database.relation(relation)
        fixed = fixed or {}
        row = tuple(fixed.get(a, self.uf.fresh()) for a in schema.attributes)
        self.rows[relation].append(row)
        return row

    def resolve(self, row: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(self.uf.find(v) for v in row)

    def n_rows(self) -> int:
        return sum(len(rs) for rs in self.rows.values())

    def dedupe(self) -> None:
        for relation, rs in self.rows.items():
            seen: set[tuple[int, ...]] = set()
            out: list[tuple[int, ...]] = []
            for row in rs:
                resolved = self.resolve(row)
                if resolved not in seen:
                    seen.add(resolved)
                    out.append(row)
            self.rows[relation] = out

    def apply_fd(self, fd: FD) -> bool:
        """One FD round: equate RHS values of rows agreeing on the LHS."""
        schema = self.database.relation(fd.relation)
        lhs_pos = schema.positions(sorted(fd.lhs))
        rhs_pos = schema.positions(sorted(fd.rhs))
        changed = False
        groups: dict[tuple[int, ...], tuple[int, ...]] = {}
        for row in self.rows.get(fd.relation, ()):
            resolved = self.resolve(row)
            key = tuple(resolved[p] for p in lhs_pos)
            rep = groups.get(key)
            if rep is None:
                groups[key] = row
                continue
            rep_resolved = self.resolve(rep)
            for p in rhs_pos:
                changed |= self.uf.union(rep_resolved[p], resolved[p])
        return changed

    def apply_ind(self, ind: IND, max_rows: int) -> bool:
        """One IND round: add target rows for unmatched projections."""
        src = self.database.relation(ind.relation)
        dst = self.database.relation(ind.target)
        src_pos = src.positions(ind.attrs)
        dst_pos = dst.positions(ind.target_attrs)
        existing = {tuple(self.resolve(row)[p] for p in dst_pos)
                    for row in self.rows.get(ind.target, ())}
        changed = False
        for row in list(self.rows.get(ind.relation, ())):
            values = tuple(self.resolve(row)[p] for p in src_pos)
            if values in existing:
                continue
            if self.n_rows() >= max_rows:
                raise _Budget()
            fixed = dict(zip(ind.target_attrs, values))
            self.fresh_row(ind.target, fixed)
            existing.add(values)
            changed = True
        return changed

    def to_instance(self) -> Instance:
        """Freeze the tableau into a concrete instance (nulls become
        distinct constants)."""
        instance = Instance(self.database)
        for relation, rs in self.rows.items():
            for row in rs:
                instance.add_row(
                    relation,
                    tuple(f"v{v}" for v in self.resolve(row)))
        return instance


class _Budget(Exception):
    """Internal: the row budget was hit mid-application."""


def chase(database: Database, fds: Iterable[FD], inds: Iterable[IND],
          phi: "FD | IND", max_steps: int = 10_000,
          max_rows: int = 5_000) -> ChaseResult:
    """Bounded chase test of ``Σ = fds ∪ inds ⊨ φ``.

    See the module docstring for the three verdicts.  ``max_steps``
    bounds full Σ-rounds; ``max_rows`` bounds tableau growth.
    """
    fds = list(fds)
    inds = list(inds)
    tableau = _Tableau(database)

    if isinstance(phi, FD):
        schema = database.relation(phi.relation)
        shared = {a: tableau.uf.fresh() for a in phi.lhs}
        row1 = tableau.fresh_row(phi.relation, dict(shared))
        row2 = tableau.fresh_row(phi.relation, dict(shared))
        rhs_pos = schema.positions(sorted(phi.rhs))

        def goal() -> bool:
            r1 = tableau.resolve(row1)
            r2 = tableau.resolve(row2)
            return all(r1[p] == r2[p] for p in rhs_pos)
    else:
        schema = database.relation(phi.relation)
        row = tableau.fresh_row(phi.relation)
        src_pos = schema.positions(phi.attrs)
        dst_schema = database.relation(phi.target)
        dst_pos = dst_schema.positions(phi.target_attrs)

        def goal() -> bool:
            wanted = tuple(tableau.resolve(row)[p] for p in src_pos)
            return any(
                tuple(tableau.resolve(r)[p] for p in dst_pos) == wanted
                for r in tableau.rows.get(phi.target, ()))

    steps = 0
    try:
        while steps < max_steps:
            steps += 1
            if goal():
                return ChaseResult(ChaseOutcome.IMPLIED, steps,
                                   reason="chase established the goal")
            changed = False
            for fd in fds:
                changed |= tableau.apply_fd(fd)
            for ind in inds:
                changed |= tableau.apply_ind(ind, max_rows)
            tableau.dedupe()
            if not changed:
                if goal():
                    return ChaseResult(ChaseOutcome.IMPLIED, steps,
                                       reason="chase established the goal")
                return ChaseResult(
                    ChaseOutcome.NOT_IMPLIED, steps,
                    model=tableau.to_instance(),
                    reason="chase terminated with a finite counterexample")
    except _Budget:
        return ChaseResult(
            ChaseOutcome.UNKNOWN, steps,
            reason=f"row budget ({max_rows}) exhausted — the FD+IND "
            "chase need not terminate (Theorem 3.6)")
    return ChaseResult(
        ChaseOutcome.UNKNOWN, steps,
        reason=f"step budget ({max_steps}) exhausted — the FD+IND chase "
        "need not terminate (Theorem 3.6)")


# ---------------------------------------------------------------------------
# Termination analysis (weak acyclicity)
# ---------------------------------------------------------------------------


def dependency_position_graph(database: Database,
                              inds: Iterable[IND]
                              ) -> tuple[set, set]:
    """The position graph of the IND set (Fagin et al.'s weak-acyclicity
    construction, specialized to INDs).

    Nodes are positions ``(relation, attribute)``.  For an IND
    ``R[A1..An] ⊆ S[B1..Bn]`` there is a *copy* edge ``(R,Ai) → (S,Bi)``
    for each i, and an *existential* edge ``(R,Ai) → (S,C)`` for every
    attribute ``C`` of ``S`` outside the target list (those positions
    receive fresh nulls when the IND fires).  Returns
    ``(copy_edges, existential_edges)``.
    """
    copy_edges: set[tuple] = set()
    existential_edges: set[tuple] = set()
    for ind in inds:
        dst = database.relation(ind.target)
        fresh = [c for c in dst.attributes if c not in ind.target_attrs]
        for a, b in zip(ind.attrs, ind.target_attrs):
            copy_edges.add(((ind.relation, a), (ind.target, b)))
            for c in fresh:
                existential_edges.add(((ind.relation, a),
                                       (ind.target, c)))
    return copy_edges, existential_edges


def chase_terminates(database: Database, inds: Iterable[IND]) -> bool:
    """Whether the IND set is weakly acyclic, guaranteeing chase
    termination on every input (FD steps only merge, so they never
    break termination).

    Weak acyclicity: no cycle in the position graph goes through an
    existential edge.  When this returns ``True``,
    :func:`chase` can never report ``UNKNOWN`` for sufficiently large
    budgets; when ``False`` the chase *may* diverge — e.g. the Theorem
    3.6 gap instance, whose single self-referential IND is exactly a
    cycle through an existential edge.
    """
    copy_edges, existential_edges = dependency_position_graph(
        database, list(inds))
    nodes: set = set()
    adjacency: dict = {}
    for (u, v) in copy_edges | existential_edges:
        nodes.add(u)
        nodes.add(v)
        adjacency.setdefault(u, set()).add(v)
    # A cycle through an existential edge exists iff, for some
    # existential edge u -> v, v reaches u.
    def reaches(start, goal) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    return not any(reaches(v, u) for (u, v) in existential_edges)
