"""Functional dependencies and Armstrong-closure implication.

Implication of FDs alone is the classic decidable case: ``Σ ⊨ X → Y``
iff ``Y ⊆ X⁺`` where ``X⁺`` is the attribute closure of ``X`` under Σ.
The closure is computed with the standard linear-time counting
algorithm (Beeri–Bernstein).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class FD:
    """A functional dependency ``relation : lhs -> rhs``."""

    relation: str
    lhs: frozenset[str]
    rhs: frozenset[str]

    def __post_init__(self):
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))
        if not self.rhs:
            raise ValueError("an FD needs a non-empty right-hand side")

    def __str__(self) -> str:
        lhs = ", ".join(sorted(self.lhs)) or "∅"
        rhs = ", ".join(sorted(self.rhs))
        return f"{self.relation}: {lhs} -> {rhs}"


def fd_closure(attrs: Iterable[str], fds: Iterable[FD],
               relation: str) -> frozenset[str]:
    """The attribute closure ``attrs⁺`` under the FDs of ``relation``.

    Linear in the total size of the FDs (counting algorithm).
    """
    relevant = [fd for fd in fds if fd.relation == relation]
    closure = set(attrs)
    missing: dict[int, int] = {}
    by_attr: dict[str, list[int]] = defaultdict(list)
    for i, fd in enumerate(relevant):
        missing[i] = len(fd.lhs - closure)
        for a in fd.lhs:
            by_attr[a].append(i)
    work = [i for i, m in missing.items() if m == 0]
    fired = set(work)
    while work:
        i = work.pop()
        for a in relevant[i].rhs:
            if a in closure:
                continue
            closure.add(a)
            for j in by_attr.get(a, ()):
                missing[j] -= 1
                if missing[j] == 0 and j not in fired:
                    fired.add(j)
                    work.append(j)
    return frozenset(closure)


def fd_implies(sigma: Iterable[FD], phi: FD) -> bool:
    """Whether the FD set implies ``phi`` (Armstrong-complete)."""
    sigma = list(sigma)
    return phi.rhs <= fd_closure(phi.lhs, sigma, phi.relation)


def minimal_keys(attributes: Iterable[str], fds: Iterable[FD],
                 relation: str) -> list[frozenset[str]]:
    """All minimal keys of a relation under its FDs (exponential in the
    worst case; used on small schemas by the export tooling)."""
    attributes = tuple(attributes)
    fds = [fd for fd in fds if fd.relation == relation]
    full = frozenset(attributes)
    keys: list[frozenset[str]] = []
    # Breadth-first over subset sizes guarantees minimality by pruning
    # supersets of found keys.
    from itertools import combinations

    for size in range(1, len(attributes) + 1):
        for combo in combinations(attributes, size):
            candidate = frozenset(combo)
            if any(k <= candidate for k in keys):
                continue
            if fd_closure(candidate, fds, relation) == full:
                keys.append(candidate)
    return keys
