"""Unary functional + inclusion dependencies, after Cosmadakis,
Kanellakis and Vardi (JACM 1990) — the result §3.2 builds on.

The paper's ``L_u`` analysis "borrows the idea of the proof" from CKV's
theorem on *unary* FDs (``R: A -> B``) and INDs (``R[A] ⊆ S[B]``):

- **unrestricted implication**: FDs and INDs do not interact; an FD is
  implied iff derivable from the stated FDs alone (transitivity +
  reflexivity suffice in the unary case) and an IND iff derivable from
  the stated INDs alone (reflexivity + transitivity);
- **finite implication**: they *do* interact, through cardinalities —
  an FD ``A -> B`` forces ``|π_B| ≤ |π_A|`` and an IND ``R[A] ⊆ S[B]``
  forces ``|π_A(R)| ≤ |π_B(S)|``; a cycle of such inequalities collapses
  to equalities, turning the FDs along it into bijections (so their
  *reverses* hold) and the INDs into equalities (so their reverses hold
  too).  This is the "cycle rule for each odd positive integer" that
  the paper cites, and no k-ary axiomatization exists.

:class:`UnaryDependencyEngine` implements both deciders with the same
SCC-fixpoint machinery as :class:`repro.implication.lu.LuEngine` — the
two engines are sibling instantiations of one cardinality argument,
which is exactly the relationship the paper asserts.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ImplicationError

#: A column: (relation name, attribute name).
Column = tuple[str, str]


@dataclass(frozen=True)
class UnaryFD:
    """``relation : lhs -> rhs`` with single attributes on both sides."""

    relation: str
    lhs: str
    rhs: str

    def __str__(self) -> str:
        return f"{self.relation}: {self.lhs} -> {self.rhs}"


@dataclass(frozen=True)
class UnaryIND:
    """``relation[attr] ⊆ target[target_attr]``."""

    relation: str
    attr: str
    target: str
    target_attr: str

    def __str__(self) -> str:
        return (f"{self.relation}[{self.attr}] sub "
                f"{self.target}[{self.target_attr}]")


UnaryDependency = "UnaryFD | UnaryIND"


class UnaryDependencyEngine:
    """(Finite) implication of unary FDs + INDs, CKV-style."""

    def __init__(self, sigma: Iterable):
        self.fds: list[UnaryFD] = []
        self.inds: list[UnaryIND] = []
        for d in sigma:
            if isinstance(d, UnaryFD):
                self.fds.append(d)
            elif isinstance(d, UnaryIND):
                self.inds.append(d)
            else:
                raise ImplicationError(
                    f"not a unary FD or IND: {d!r}")
        # Unrestricted closures: plain reachability, no interaction.
        self.fd_edges: dict[Column, set[Column]] = defaultdict(set)
        self.ind_edges: dict[Column, set[Column]] = defaultdict(set)
        for fd in self.fds:
            self.fd_edges[(fd.relation, fd.lhs)].add(
                (fd.relation, fd.rhs))
        for ind in self.inds:
            self.ind_edges[(ind.relation, ind.attr)].add(
                (ind.target, ind.target_attr))
        # Finite closures: augmented by the cycle rules.
        self.fin_fd_edges = {k: set(v) for k, v in self.fd_edges.items()}
        self.fin_ind_edges = {k: set(v) for k, v in self.ind_edges.items()}
        self._close_finitely()

    # -- finite closure (the cycle rules) ------------------------------------

    def _cardinality_graph(self) -> dict[Column, set[Column]]:
        """u -> v encodes ``|π_u| ≤ |π_v|``."""
        graph: dict[Column, set[Column]] = defaultdict(set)
        for a, outs in self.fin_fd_edges.items():
            for b in outs:
                graph[b].add(a)       # FD a->b: |π_b| <= |π_a|
                graph.setdefault(a, set())
        for a, outs in self.fin_ind_edges.items():
            for b in outs:
                graph[a].add(b)       # IND a ⊆ b: |π_a| <= |π_b|
                graph.setdefault(b, set())
        return graph

    def _close_finitely(self) -> None:
        from repro.implication.lu import LuEngine

        while True:
            graph = self._cardinality_graph()
            comp = LuEngine._sccs(graph)
            changed = False
            for a, outs in list(self.fin_fd_edges.items()):
                for b in list(outs):
                    if comp.get(a) == comp.get(b) and \
                            a not in self.fin_fd_edges.get(b, set()):
                        # |π_a| = |π_b| makes the FD a bijection.
                        self.fin_fd_edges.setdefault(b, set()).add(a)
                        changed = True
            for a, outs in list(self.fin_ind_edges.items()):
                for b in list(outs):
                    if comp.get(a) == comp.get(b) and \
                            a not in self.fin_ind_edges.get(b, set()):
                        # Equal finite cardinalities + containment:
                        # the inclusion is an equality.
                        self.fin_ind_edges.setdefault(b, set()).add(a)
                        changed = True
            if not changed:
                return

    # -- reachability ----------------------------------------------------------

    @staticmethod
    def _reachable(edges: dict[Column, set[Column]], source: Column,
                   target: Column) -> bool:
        if source == target:
            return True
        seen = {source}
        queue: deque[Column] = deque((source,))
        while queue:
            node = queue.popleft()
            for nxt in edges.get(node, ()):
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    # -- queries ------------------------------------------------------------------

    def implies(self, phi) -> bool:
        """Unrestricted implication: FDs and INDs reason separately
        (the CKV no-interaction theorem for the unrestricted case)."""
        if isinstance(phi, UnaryFD):
            return self._reachable(self.fd_edges,
                                   (phi.relation, phi.lhs),
                                   (phi.relation, phi.rhs))
        if isinstance(phi, UnaryIND):
            return self._reachable(self.ind_edges,
                                   (phi.relation, phi.attr),
                                   (phi.target, phi.target_attr))
        raise ImplicationError(f"not a unary FD or IND: {phi!r}")

    def finitely_implies(self, phi) -> bool:
        """Finite implication: reachability over the cycle-closed graphs."""
        if isinstance(phi, UnaryFD):
            return self._reachable(self.fin_fd_edges,
                                   (phi.relation, phi.lhs),
                                   (phi.relation, phi.rhs))
        if isinstance(phi, UnaryIND):
            return self._reachable(self.fin_ind_edges,
                                   (phi.relation, phi.attr),
                                   (phi.target, phi.target_attr))
        raise ImplicationError(f"not a unary FD or IND: {phi!r}")

    def problems_coincide_on(self, phi) -> bool:
        """Whether the two implication problems agree on ``phi``."""
        return self.implies(phi) == self.finitely_implies(phi)
