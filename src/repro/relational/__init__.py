"""Relational substrate: schemas, FDs, INDs, keys/foreign keys, the chase.

The paper's results repeatedly project onto relational databases
(Corollaries 3.5, 3.7, 3.9) and its undecidability proof (Theorem 3.6)
reduces from implication of functional + inclusion dependencies.  This
package implements that machinery from scratch:

- :mod:`repro.relational.schema`   — relation schemas and instances;
- :mod:`repro.relational.fd`       — functional dependencies, Armstrong
  closure, linear-time implication;
- :mod:`repro.relational.ind`      — inclusion dependencies and the
  Casanova–Fagin–Papadimitriou axioms (reflexivity,
  projection-and-permutation, transitivity);
- :mod:`repro.relational.chase`    — the classical chase over tableaux
  with labeled nulls, bounded for the (undecidable) FD+IND combination;
- :mod:`repro.relational.unary`    — unary FDs + INDs with implication
  and finite implication à la Cosmadakis–Kanellakis–Vardi, the result
  §3.2's cycle rules are modeled on;
- :mod:`repro.relational.keys`     — keys/foreign keys with the unary
  (Cor 3.5), primary (Cor 3.9) and general (Cor 3.7) deciders, the
  latter by delegation to the XML engines they mirror;
- :mod:`repro.relational.export`   — relational → XML translation that
  preserves keys and foreign keys as ``L`` constraints (§1's
  publisher/editor example).
"""

from repro.relational.schema import Database, Instance, RelationSchema
from repro.relational.fd import FD, fd_closure, fd_implies
from repro.relational.ind import IND, ind_implies
from repro.relational.chase import ChaseOutcome, ChaseResult, chase
from repro.relational.keys import (
    RelationalForeignKey, RelationalKey, RelationalKeyFKEngine,
)
from repro.relational.unary import (
    UnaryDependencyEngine, UnaryFD, UnaryIND,
)
from repro.relational.export import export_database, export_schema

__all__ = [
    "Database", "Instance", "RelationSchema",
    "FD", "fd_closure", "fd_implies", "IND", "ind_implies",
    "ChaseOutcome", "ChaseResult", "chase",
    "RelationalForeignKey", "RelationalKey", "RelationalKeyFKEngine",
    "UnaryDependencyEngine", "UnaryFD", "UnaryIND",
    "export_database", "export_schema",
]
