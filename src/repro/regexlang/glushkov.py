"""Glushkov (position) automaton construction.

The Glushkov construction turns a regular expression with ``n`` symbol
occurrences into an NFA with ``n + 1`` states and no epsilon transitions.
States are the *positions* (occurrences of alphabet symbols) plus a start
state; there is a transition ``p --sym(q)--> q`` whenever position ``q``
may follow position ``p`` in some word (the classic ``first`` / ``last`` /
``follow`` sets).

This is the standard automaton for validating XML content models; for
*deterministic* (1-unambiguous) content models — which XML requires of
DTDs — the Glushkov NFA is already deterministic, so validation runs in
O(length) with no subset construction.  We nevertheless keep the general
NFA semantics so the library also handles non-deterministic models the
paper's grammar allows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regexlang.ast import Atom, Concat, Epsilon, Regex, Star, Union


@dataclass
class _Analysis:
    """nullable / first / last / follow computed in one traversal."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


class GlushkovNFA:
    """The position automaton of a regular expression.

    Attributes
    ----------
    regex:
        The source expression.
    symbols:
        ``symbols[p]`` is the alphabet symbol of position ``p`` (positions
        are numbered 1..n; 0 is the start state).
    first, last:
        Position sets; a word is accepted iff a run ends in ``last`` (or
        the word is empty and the expression is nullable).
    follow:
        ``follow[p]`` is the set of positions that may follow ``p``.
    nullable:
        Whether the empty word is in the language.
    """

    def __init__(self, regex: Regex):
        self.regex = regex
        self.symbols: dict[int, str] = {}
        self.follow: dict[int, set[int]] = {}
        self._counter = 0
        analysis = self._analyze(regex)
        self.nullable = analysis.nullable
        self.first = analysis.first
        self.last = analysis.last
        # Transition table start state 0: delta[0][a] = {q in first | sym q == a}
        self._delta: dict[int, dict[str, frozenset[int]]] = {}
        self._delta[0] = self._group_by_symbol(self.first)
        for p in self.symbols:
            self._delta[p] = self._group_by_symbol(self.follow.get(p, set()))

    # -- construction -------------------------------------------------------

    def _new_position(self, symbol: str) -> int:
        self._counter += 1
        self.symbols[self._counter] = symbol
        self.follow[self._counter] = set()
        return self._counter

    def _analyze(self, node: Regex) -> _Analysis:
        if isinstance(node, Epsilon):
            return _Analysis(True, frozenset(), frozenset())
        if isinstance(node, Atom):
            p = self._new_position(node.symbol)
            fs = frozenset((p,))
            return _Analysis(False, fs, fs)
        if isinstance(node, Union):
            a = self._analyze(node.left)
            b = self._analyze(node.right)
            return _Analysis(a.nullable or b.nullable,
                             a.first | b.first, a.last | b.last)
        if isinstance(node, Concat):
            a = self._analyze(node.left)
            b = self._analyze(node.right)
            for p in a.last:
                self.follow[p] |= b.first
            first = a.first | b.first if a.nullable else a.first
            last = a.last | b.last if b.nullable else b.last
            return _Analysis(a.nullable and b.nullable, first, last)
        if isinstance(node, Star):
            a = self._analyze(node.inner)
            for p in a.last:
                self.follow[p] |= a.first
            return _Analysis(True, a.first, a.last)
        raise TypeError(f"unknown regex node {node!r}")

    def _group_by_symbol(self, positions: set[int] | frozenset[int]
                         ) -> dict[str, frozenset[int]]:
        grouped: dict[str, set[int]] = {}
        for p in positions:
            grouped.setdefault(self.symbols[p], set()).add(p)
        return {sym: frozenset(ps) for sym, ps in grouped.items()}

    # -- queries ----------------------------------------------------------------

    @property
    def n_positions(self) -> int:
        """Number of symbol occurrences in the expression."""
        return self._counter

    def alphabet(self) -> set[str]:
        """The symbols occurring in the expression."""
        return set(self.symbols.values())

    def step(self, states: frozenset[int], symbol: str) -> frozenset[int]:
        """One NFA step from a set of states on ``symbol``."""
        out: set[int] = set()
        for q in states:
            out |= self._delta.get(q, {}).get(symbol, frozenset())
        return frozenset(out)

    def initial(self) -> frozenset[int]:
        """The initial state set ``{0}``."""
        return frozenset((0,))

    def is_accepting(self, states: frozenset[int]) -> bool:
        """Whether a state set contains an accepting state."""
        if self.nullable and 0 in states:
            return True
        return any(q in self.last for q in states)

    def accepts(self, word: "list[str] | tuple[str, ...]") -> bool:
        """Direct NFA simulation (used by tests; the cached
        :class:`~repro.regexlang.automaton.Matcher` is faster for repeated
        membership queries)."""
        states = self.initial()
        for symbol in word:
            states = self.step(states, symbol)
            if not states:
                return False
        return self.is_accepting(states)

    def is_deterministic(self) -> bool:
        """Whether the content model is 1-unambiguous (XML-deterministic).

        True iff no state has two successor positions with the same
        symbol — the classical Brüggemann-Klein/Wood criterion.
        """
        for delta in self._delta.values():
            for positions in delta.values():
                if len(positions) > 1:
                    return False
        return True
