"""Immutable AST for content-model regular expressions.

The alphabet is the set of element type names plus the reserved symbol
``"S"`` (:data:`ATOMIC`) standing for an atomic string value.  The node
types mirror the grammar of Definition 2.2; ``?`` and ``+`` postfix
operators from DTD syntax are desugared by the smart constructors
:func:`optional` and :func:`plus`.

All nodes are hashable and compare structurally, so they can be used as
dictionary keys (the automaton cache relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The reserved alphabet symbol for atomic (string) content, ``S`` in the
#: paper and ``#PCDATA`` in DTD syntax.
ATOMIC = "S"


class Regex:
    """Base class of all regular-expression nodes."""

    __slots__ = ()

    def to_string(self, paper_style: bool = False) -> str:
        """Render the expression.

        With ``paper_style=True``, union is written ``+`` as in the paper;
        otherwise the DTD-flavored ``|`` is used.
        """
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_string()


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The empty word."""

    def to_string(self, paper_style: bool = False) -> str:
        return "()"


@dataclass(frozen=True, slots=True)
class Atom(Regex):
    """A single alphabet symbol: an element type name or :data:`ATOMIC`."""

    symbol: str

    def __post_init__(self):
        if not isinstance(self.symbol, str) or not self.symbol:
            raise TypeError("Atom symbol must be a non-empty string")

    def to_string(self, paper_style: bool = False) -> str:
        if self.symbol == ATOMIC and not paper_style:
            return "#PCDATA"
        return self.symbol


@dataclass(frozen=True, slots=True)
class Union(Regex):
    """``left + right`` (choice)."""

    left: Regex
    right: Regex

    def to_string(self, paper_style: bool = False) -> str:
        op = " + " if paper_style else " | "
        return ("(" + self.left.to_string(paper_style) + op
                + self.right.to_string(paper_style) + ")")


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    """``left , right`` (sequence)."""

    left: Regex
    right: Regex

    def to_string(self, paper_style: bool = False) -> str:
        return ("(" + self.left.to_string(paper_style) + ", "
                + self.right.to_string(paper_style) + ")")


@dataclass(frozen=True, slots=True)
class Star(Regex):
    """``inner*`` (Kleene closure)."""

    inner: Regex

    def to_string(self, paper_style: bool = False) -> str:
        return self.inner.to_string(paper_style) + "*"


EPSILON = Epsilon()


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def atom(symbol: str) -> Atom:
    """An alphabet symbol."""
    return Atom(symbol)


def union(*parts: Regex) -> Regex:
    """Right-nested union of one or more expressions."""
    if not parts:
        raise ValueError("union() needs at least one operand")
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Union(part, out)
    return out


def concat(*parts: Regex) -> Regex:
    """Right-nested concatenation; zero operands give epsilon."""
    if not parts:
        return EPSILON
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Concat(part, out)
    return out


def star(inner: Regex) -> Star:
    """Kleene closure."""
    return Star(inner)


def optional(inner: Regex) -> Regex:
    """DTD ``alpha?``, desugared to ``alpha + epsilon``."""
    return Union(inner, EPSILON)


def plus(inner: Regex) -> Regex:
    """DTD ``alpha+``, desugared to ``alpha, alpha*``."""
    return Concat(inner, Star(inner))
