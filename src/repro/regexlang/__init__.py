"""Regular expressions over element types (content models).

Definition 2.2 defines element type definitions ``P(tau) = alpha`` where::

    alpha ::= S | e | epsilon | alpha + alpha | alpha , alpha | alpha*

with ``S`` the atomic (string) type, ``e`` an element type, ``+`` union,
``,`` concatenation and ``*`` Kleene closure.  This package provides:

- an immutable AST (:mod:`repro.regexlang.ast`),
- a parser for both the paper's syntax and XML-DTD content-model syntax
  (:mod:`repro.regexlang.parse`),
- Glushkov NFA construction and a lazily-determinized matcher
  (:mod:`repro.regexlang.glushkov`, :mod:`repro.regexlang.automaton`),
- language-property analyses, notably the *unique sub-element* test of
  §3.4 (:mod:`repro.regexlang.properties`).
"""

from repro.regexlang.ast import (
    ATOMIC, Atom, Concat, Epsilon, Regex, Star, Union, concat, star, union,
)
from repro.regexlang.parse import parse_regex
from repro.regexlang.glushkov import GlushkovNFA
from repro.regexlang.automaton import Matcher
from repro.regexlang.properties import (
    occurrence_bounds, symbols_of, unique_subelements,
)

__all__ = [
    "ATOMIC", "Atom", "Concat", "Epsilon", "Regex", "Star", "Union",
    "concat", "star", "union", "parse_regex", "GlushkovNFA", "Matcher",
    "occurrence_bounds", "symbols_of", "unique_subelements",
]
