"""Lazily-determinized matcher over a Glushkov NFA.

Validation checks one child-label word per element vertex, and a large
document re-checks the same content model thousands of times, usually
traversing the same few DFA states.  :class:`Matcher` memoizes the subset
construction on demand, so the amortized per-symbol cost is a dictionary
lookup.  A module-level cache keyed by the (hashable) regex AST means the
DFA is shared across validations of the same DTD.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.regexlang.ast import Regex
from repro.regexlang.glushkov import GlushkovNFA


class Matcher:
    """Membership testing for one content model, with lazy DFA states."""

    def __init__(self, regex: Regex):
        self.nfa = GlushkovNFA(regex)
        initial = self.nfa.initial()
        self._states: dict[frozenset[int], int] = {initial: 0}
        self._state_list: list[frozenset[int]] = [initial]
        self._accepting: list[bool] = [self.nfa.is_accepting(initial)]
        self._trans: list[dict[str, int | None]] = [{}]

    def _successor(self, dfa_state: int, symbol: str) -> int | None:
        """The DFA successor of ``dfa_state`` on ``symbol``; ``None`` = dead."""
        row = self._trans[dfa_state]
        if symbol in row:
            return row[symbol]
        nxt = self.nfa.step(self._state_list[dfa_state], symbol)
        if not nxt:
            row[symbol] = None
            return None
        idx = self._states.get(nxt)
        if idx is None:
            idx = len(self._state_list)
            self._states[nxt] = idx
            self._state_list.append(nxt)
            self._accepting.append(self.nfa.is_accepting(nxt))
            self._trans.append({})
        row[symbol] = idx
        return idx

    def matches(self, word: Sequence[str]) -> bool:
        """Whether ``word`` (a sequence of labels) is in the language."""
        state: int | None = 0
        for symbol in word:
            state = self._successor(state, symbol)
            if state is None:
                return False
        return self._accepting[state]

    def prefix_length(self, word: Sequence[str]) -> int:
        """Length of the longest prefix of ``word`` that is still viable.

        Used to produce helpful validation diagnostics ("child #k is
        unexpected here").  Returns ``len(word)`` when the whole word can
        be extended or accepted.
        """
        state: int | None = 0
        for i, symbol in enumerate(word):
            state = self._successor(state, symbol)
            if state is None:
                return i
        return len(word)

    def expected_after(self, word: Sequence[str]) -> set[str]:
        """The labels that may legally follow the given (viable) prefix."""
        state: int | None = 0
        for symbol in word:
            state = self._successor(state, symbol)
            if state is None:
                return set()
        return self.expected_from(state)

    # -- incremental stepping (streaming validation) --------------------
    #
    # A streaming validator cannot afford to buffer the child word of
    # every open element just to call :meth:`matches` at the close tag.
    # These three methods expose the lazy DFA one transition at a time:
    # hold an ``int`` state per open element, feed each child label as it
    # arrives, and ask acceptance at the close.  ``prefix_length`` /
    # ``expected_after`` diagnostics fall out of the state held at the
    # first dead transition, so the word never needs to exist.

    def start(self) -> int:
        """The DFA start state (always ``0``)."""
        return 0

    def step(self, state: int, symbol: str) -> int | None:
        """One DFA transition; ``None`` means the word just died."""
        return self._successor(state, symbol)

    def is_accepting_state(self, state: int) -> bool:
        """Whether ``state`` accepts (word may legally end here)."""
        return self._accepting[state]

    def expected_from(self, state: int) -> set[str]:
        """The labels with a live transition out of ``state``."""
        out: set[str] = set()
        for sym in self.nfa.alphabet():
            if self.nfa.step(self._state_list[state], sym):
                out.add(sym)
        return out


_MATCHER_CACHE: dict[Regex, Matcher] = {}


def matcher_for(regex: Regex) -> Matcher:
    """A shared :class:`Matcher` for ``regex`` (AST-keyed memoization)."""
    m = _MATCHER_CACHE.get(regex)
    if m is None:
        m = Matcher(regex)
        _MATCHER_CACHE[regex] = m
    return m


def clear_matcher_cache() -> None:
    """Drop all cached matchers (mainly for benchmarks that measure
    cold-start construction costs)."""
    _MATCHER_CACHE.clear()


def accepts(regex: Regex, word: Iterable[str]) -> bool:
    """Convenience wrapper: ``word in L(regex)`` using the shared cache."""
    return matcher_for(regex).matches(tuple(word))
