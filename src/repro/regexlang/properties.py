"""Language-property analyses of content models.

The central property is the *unique sub-element* test of §3.4: an element
type ``S`` is a unique sub-element of ``tau`` (with ``P(tau) = alpha``)
iff **every** word of ``L(alpha)`` contains **exactly one** occurrence of
``S``.  Only unique sub-elements may serve as (components of) keys, and
they are the element steps allowed in *key paths* (Proposition 4.1).

The test runs a product of the Glushkov NFA with a 3-valued occurrence
counter (0, 1, "2 or more").  The counter is deterministic in the input
word, so a symbol's occurrence count in an accepted word does not depend
on which accepting run is chosen; reachability of an accepting state with
counter 0 or 2+ therefore exactly characterizes failure of uniqueness.

:func:`occurrence_bounds` generalizes this to (min, max) occurrence
counts over the whole language, with ``max = None`` meaning unbounded.
"""

from __future__ import annotations

from collections import deque

from repro.regexlang.ast import Atom, Concat, Epsilon, Regex, Star, Union
from repro.regexlang.glushkov import GlushkovNFA


def symbols_of(regex: Regex) -> set[str]:
    """The set of alphabet symbols occurring in ``regex``."""
    out: set[str] = set()
    stack = [regex]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.add(node.symbol)
        elif isinstance(node, (Union, Concat)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Star):
            stack.append(node.inner)
        elif not isinstance(node, Epsilon):
            raise TypeError(f"unknown regex node {node!r}")
    return out


def _count_reachable(nfa: GlushkovNFA, symbol: str) -> set[int]:
    """Occurrence-counter values (0, 1, 2=two-or-more) realizable at
    acceptance for ``symbol`` over the NFA's language.

    Explores the product (state, counter) graph; the language is nonempty
    iff some accepting pair is reachable.
    """
    alphabet = nfa.alphabet() | {symbol}
    start = (0, 0)
    seen: set[tuple[int, int]] = {start}
    queue: deque[tuple[int, int]] = deque((start,))
    accepting_counts: set[int] = set()

    def accepting_state(q: int) -> bool:
        return (q == 0 and nfa.nullable) or q in nfa.last

    if accepting_state(0):
        accepting_counts.add(0)
    while queue:
        q, c = queue.popleft()
        for sym in alphabet:
            for q2 in nfa.step(frozenset((q,)), sym):
                c2 = min(c + 1, 2) if sym == symbol else c
                pair = (q2, c2)
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
                if accepting_state(q2):
                    accepting_counts.add(c2)
    return accepting_counts


def is_unique_subelement(regex: Regex, symbol: str) -> bool:
    """Whether every word of ``L(regex)`` contains exactly one ``symbol``."""
    counts = _count_reachable(GlushkovNFA(regex), symbol)
    return counts == {1}


def unique_subelements(regex: Regex) -> set[str]:
    """All symbols that are unique sub-elements of a content model.

    This is the §3.4 syntactic-restriction check, evaluated exactly on
    the language rather than by approximation.
    """
    nfa = GlushkovNFA(regex)
    out: set[str] = set()
    for symbol in symbols_of(regex):
        if _count_reachable(nfa, symbol) == {1}:
            out.add(symbol)
    return out


def occurrence_bounds(regex: Regex, symbol: str) -> tuple[int, int | None]:
    """(min, max) number of ``symbol`` occurrences over ``L(regex)``.

    ``max = None`` means unbounded.  Undefined (raises ``ValueError``)
    when the language is empty — which cannot happen for the paper's
    grammar, as it has no empty-language constructor.
    """
    lo, hi = _bounds(regex, symbol)
    if lo is None:
        raise ValueError("content model denotes the empty language")
    return lo, hi


def _bounds(node: Regex, symbol: str
            ) -> tuple[int | None, int | None]:
    """(min, max) occurrences; min None encodes empty language,
    max None encodes unbounded."""
    if isinstance(node, Epsilon):
        return 0, 0
    if isinstance(node, Atom):
        n = 1 if node.symbol == symbol else 0
        return n, n
    if isinstance(node, Union):
        alo, ahi = _bounds(node.left, symbol)
        blo, bhi = _bounds(node.right, symbol)
        if alo is None:
            return blo, bhi
        if blo is None:
            return alo, ahi
        lo = min(alo, blo)
        hi = None if ahi is None or bhi is None else max(ahi, bhi)
        return lo, hi
    if isinstance(node, Concat):
        alo, ahi = _bounds(node.left, symbol)
        blo, bhi = _bounds(node.right, symbol)
        if alo is None or blo is None:
            return None, None
        lo = alo + blo
        hi = None if ahi is None or bhi is None else ahi + bhi
        return lo, hi
    if isinstance(node, Star):
        ilo, ihi = _bounds(node.inner, symbol)
        if ilo is None:
            return 0, 0  # star of empty language is {epsilon}
        if ihi == 0:
            return 0, 0
        return 0, None
    raise TypeError(f"unknown regex node {node!r}")


def language_is_finite(regex: Regex) -> bool:
    """Whether ``L(regex)`` is a finite language.

    True iff no symbol position lies under a ``*`` that can iterate a
    symbol — computed via occurrence bounds of every symbol.
    """
    return all(occurrence_bounds(regex, s)[1] is not None
               for s in symbols_of(regex))


def shortest_word(regex: Regex) -> tuple[str, ...]:
    """A shortest word of the language (used by document generators)."""
    word = _shortest(regex)
    if word is None:
        raise ValueError("content model denotes the empty language")
    return word


def _shortest(node: Regex) -> tuple[str, ...] | None:
    if isinstance(node, Epsilon):
        return ()
    if isinstance(node, Atom):
        return (node.symbol,)
    if isinstance(node, Union):
        a = _shortest(node.left)
        b = _shortest(node.right)
        if a is None:
            return b
        if b is None:
            return a
        return a if len(a) <= len(b) else b
    if isinstance(node, Concat):
        a = _shortest(node.left)
        b = _shortest(node.right)
        if a is None or b is None:
            return None
        return a + b
    if isinstance(node, Star):
        return ()
    raise TypeError(f"unknown regex node {node!r}")


def languages_intersect(r1: Regex, r2: Regex) -> bool:
    """Whether ``L(r1) ∩ L(r2)`` is non-empty (product construction).

    Used by schema tooling to test content-model compatibility — e.g.
    whether two merged element declarations could accept a common child
    word.  BFS over pairs of Glushkov state sets; cost is the product of
    the two automata in the worst case.
    """
    nfa1, nfa2 = GlushkovNFA(r1), GlushkovNFA(r2)
    alphabet = nfa1.alphabet() & nfa2.alphabet()
    start = (nfa1.initial(), nfa2.initial())
    if nfa1.is_accepting(start[0]) and nfa2.is_accepting(start[1]):
        return True
    seen = {start}
    queue = deque((start,))
    while queue:
        s1, s2 = queue.popleft()
        for symbol in alphabet:
            n1 = nfa1.step(s1, symbol)
            n2 = nfa2.step(s2, symbol)
            if not n1 or not n2:
                continue
            pair = (n1, n2)
            if pair in seen:
                continue
            if nfa1.is_accepting(n1) and nfa2.is_accepting(n2):
                return True
            seen.add(pair)
            queue.append(pair)
    return False


def language_subset(r1: Regex, r2: Regex) -> bool:
    """Whether ``L(r1) ⊆ L(r2)`` (subset construction on r2's complement
    run in lockstep with r1).

    Lets schema evolution check that a *widened* content model accepts
    everything the old one did.
    """
    nfa1, nfa2 = GlushkovNFA(r1), GlushkovNFA(r2)
    alphabet = nfa1.alphabet() | nfa2.alphabet()
    start = (nfa1.initial(), nfa2.initial())
    seen = {start}
    queue = deque((start,))
    while queue:
        s1, s2 = queue.popleft()
        if nfa1.is_accepting(s1) and not nfa2.is_accepting(s2):
            return False
        for symbol in alphabet:
            n1 = nfa1.step(s1, symbol)
            if not n1:
                continue  # r1 cannot continue: nothing to check
            n2 = nfa2.step(s2, symbol)
            pair = (n1, n2)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True
