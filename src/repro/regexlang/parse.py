"""Parser for content-model regular expressions.

Accepts both syntaxes used in the paper and in XML DTDs:

- paper style: ``(entry, author*, section*, ref)``, ``(text + section)*``,
  ``epsilon`` (or ``()``), ``S`` for atomic content;
- DTD style:  ``(title, (text|section)*)``, ``EMPTY``, ``ANY`` is *not*
  supported (the paper's grammar has no ANY), ``#PCDATA`` for atomic
  content, and the postfix operators ``?`` and ``+``.

Union may be written ``|`` or ``+`` (binary, between operands); the
postfix one-or-more operator ``+`` binds to the preceding atom or group,
so ``a+`` is one-or-more while ``a + b`` is a union — the tokenizer
disambiguates by lookahead exactly as a human reader does.

Grammar (precedence low to high)::

    expr   := seq ( ('|' | '+') seq )*
    seq    := unary ( ',' unary )*           # ',' optional between unaries? no: required
    unary  := primary ('*' | '?' | '+')*
    primary:= NAME | '#PCDATA' | 'S' | 'EMPTY' | 'epsilon' | '(' expr ')' | '()'
"""

from __future__ import annotations

import re

from repro.errors import RegexSyntaxError
from repro.regexlang.ast import (
    ATOMIC, EPSILON, Atom, Regex, concat, optional, plus, star, union,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[#]?[A-Za-z_][\w.\-]*)|(?P<punct>[(),|*?+]))")

_EPSILON_NAMES = {"epsilon", "EPSILON", "ε"}


class _Tokens:
    """A tiny token stream with single-token lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: list[str] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                rest = text[pos:].strip()
                if not rest:
                    break
                raise RegexSyntaxError(
                    f"unexpected character {rest[0]!r} in content model",
                    column=pos + 1)
            self.tokens.append(m.group("name") or m.group("punct"))
            pos = m.end()
        self.index = 0

    def peek(self, ahead: int = 0) -> str | None:
        i = self.index + ahead
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise RegexSyntaxError("unexpected end of content model")
        self.index += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise RegexSyntaxError(
                f"expected {tok!r} but found {got!r} in content model")

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def parse_regex(text: str) -> Regex:
    """Parse a content-model expression into a :class:`Regex`."""
    stripped = text.strip()
    if stripped in ("EMPTY", ""):
        return EPSILON
    toks = _Tokens(stripped)
    expr = _parse_expr(toks)
    if not toks.at_end():
        raise RegexSyntaxError(
            f"trailing input {toks.peek()!r} in content model {text!r}")
    return expr


def _parse_expr(toks: _Tokens) -> Regex:
    parts = [_parse_seq(toks)]
    while toks.peek() in ("|", "+"):
        # '+' here is a *binary* union only when followed by an operand;
        # the postfix case was already consumed by _parse_unary.
        toks.next()
        parts.append(_parse_seq(toks))
    return union(*parts)


def _parse_seq(toks: _Tokens) -> Regex:
    parts = [_parse_unary(toks)]
    while toks.peek() == ",":
        toks.next()
        parts.append(_parse_unary(toks))
    return concat(*parts)


def _parse_unary(toks: _Tokens) -> Regex:
    node = _parse_primary(toks)
    while True:
        tok = toks.peek()
        if tok == "*":
            toks.next()
            node = star(node)
        elif tok == "?":
            toks.next()
            node = optional(node)
        elif tok == "+":
            # Postfix one-or-more only when NOT followed by an operand
            # (otherwise it is the paper's binary union handled above).
            nxt = toks.peek(1)
            if nxt is None or nxt in (")", ",", "|", "*", "?", "+"):
                toks.next()
                node = plus(node)
            else:
                break
        else:
            break
    return node


def _parse_primary(toks: _Tokens) -> Regex:
    tok = toks.next()
    if tok == "(":
        if toks.peek() == ")":  # '()' is epsilon
            toks.next()
            return EPSILON
        inner = _parse_expr(toks)
        toks.expect(")")
        return inner
    if tok in ("|", ",", "*", "?", ")"):
        raise RegexSyntaxError(f"unexpected {tok!r} in content model")
    if tok in _EPSILON_NAMES:
        return EPSILON
    if tok in ("#PCDATA", "S"):
        return Atom(ATOMIC)
    if tok.startswith("#"):
        raise RegexSyntaxError(f"unknown reserved token {tok!r}")
    return Atom(tok)
