"""XML document parsing into the data model.

:func:`parse_document` builds a :class:`~repro.datamodel.tree.DataTree`
from XML text.  When a :class:`~repro.dtd.structure.DTDStructure` is
supplied, attributes declared set-valued (IDREFS-style) are split on
whitespace into value sets, matching the paper's treatment of set-valued
attributes; all other attributes become singleton sets.

Whitespace-only text between elements is dropped unless
``keep_whitespace=True`` — the data model of the paper has no notion of
ignorable whitespace, but real XML serializations indent.
"""

from __future__ import annotations

from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.structure import DTDStructure
from repro.errors import XMLSyntaxError
from repro.xmlio.tokenizer import Token, Tokenizer


def parse_document(text: str, structure: DTDStructure | None = None,
                   keep_whitespace: bool = False, obs=None) -> DataTree:
    """Parse XML text into a data tree.

    Raises :class:`~repro.errors.XMLSyntaxError` on malformed input
    (mismatched tags, multiple roots, stray text outside the root).
    ``obs`` (an optional :class:`repro.obs.Observability` handle) times
    the parse under an ``xmlio.parse`` span and counts documents and
    vertices parsed.
    """
    if not obs:
        return _parse_document(text, structure, keep_whitespace)
    with obs.span("xmlio.parse", chars=len(text)) as span:
        tree = _parse_document(text, structure, keep_whitespace)
        n = tree.size()
        span.set(vertices=n)
        obs.counter("xmlio_documents_parsed",
                    help="XML documents parsed").inc()
        obs.counter("xmlio_vertices_parsed",
                    help="element vertices built by the XML parser").add(n)
    return tree


def _parse_document(text: str, structure: DTDStructure | None,
                    keep_whitespace: bool) -> DataTree:
    tree: DataTree | None = None
    stack: list[Vertex] = []
    pending_text: list[tuple[str, int]] = []

    def flush_text() -> None:
        for chunk, line in pending_text:
            if not stack:
                if chunk.strip():
                    raise XMLSyntaxError(
                        "character data outside the root element", line=line)
                continue
            if keep_whitespace or chunk.strip():
                stack[-1].append(chunk)
        pending_text.clear()

    def open_element(token: Token) -> Vertex:
        nonlocal tree
        if tree is None:
            tree = DataTree(token.value)
            vertex = tree.root
        else:
            if not stack:
                raise XMLSyntaxError(
                    f"second root element {token.value!r}", line=token.line)
            vertex = tree.create(token.value)
            stack[-1].append(vertex)
        for name, raw in token.attributes:
            vertex.set_attribute(name, _attribute_values(
                token.value, name, raw, structure))
        return vertex

    for token in Tokenizer(text).tokens():
        if token.kind in ("comment", "pi", "doctype"):
            continue
        if token.kind == "text":
            pending_text.append((token.value, token.line))
            continue
        flush_text()
        if token.kind == "start":
            stack.append(open_element(token))
        elif token.kind == "empty":
            open_element(token)
        elif token.kind == "end":
            if not stack:
                raise XMLSyntaxError(
                    f"unexpected end tag </{token.value}>", line=token.line)
            top = stack.pop()
            if top.label != token.value:
                raise XMLSyntaxError(
                    f"end tag </{token.value}> does not match open "
                    f"element <{top.label}>", line=token.line)
    flush_text()
    if tree is None:
        raise XMLSyntaxError("document has no root element")
    if stack:
        raise XMLSyntaxError(
            f"unclosed element <{stack[-1].label}> at end of input")
    return tree


def _attribute_values(element: str, attribute: str, raw: str,
                      structure: DTDStructure | None) -> frozenset[str]:
    if structure is not None and \
            structure.has_element(element) and \
            structure.has_attribute(element, attribute) and \
            structure.is_set_valued(element, attribute):
        return frozenset(raw.split())
    return frozenset((raw,))


def parse_document_with_dtd(text: str, keep_whitespace: bool = False):
    """Parse a document whose DOCTYPE carries an internal DTD subset.

    Returns ``(DTD^C, data tree)``: the subset's declarations (plus any
    constraint lines in ``<!-- constraints: ... -->`` comments inside
    it) become the schema, the DOCTYPE name fixes the root element type,
    and the document is re-parsed with that structure so set-valued
    (IDREFS-style) attributes split correctly.

    Raises :class:`~repro.errors.XMLSyntaxError` when no internal subset
    is present.
    """
    from repro.xmlio.dtdparse import parse_dtdc

    doctype = None
    for token in Tokenizer(text).tokens():
        if token.kind == "doctype":
            doctype = token.value
            break
        if token.kind in ("start", "empty"):
            break
    if doctype is None or "[" not in doctype:
        raise XMLSyntaxError(
            "document has no DOCTYPE with an internal DTD subset")
    name, _bracket, rest = doctype.partition("[")
    subset = rest.rsplit("]", 1)[0]
    dtd = parse_dtdc(subset, root=name.strip() or None)
    tree = parse_document(text, dtd.structure,
                          keep_whitespace=keep_whitespace)
    return dtd, tree
