"""Serialization of data trees back to XML text.

Set-valued attributes are emitted as whitespace-joined token lists
(IDREFS style, values sorted for determinism); elements without children
use the empty-element form.  ``indent`` pretty-prints element-only
content; elements with text children are emitted inline to keep the
round-trip text-exact.
"""

from __future__ import annotations

from repro.datamodel.tree import DataTree, Vertex
from repro.xmlio.escape import escape_attribute, escape_text


def serialize(tree: DataTree, indent: int | None = 2,
              xml_declaration: bool = False) -> str:
    """Render a data tree as XML text."""
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0"?>\n')
    _emit(tree.root, parts, 0, indent)
    parts.append("\n")
    return "".join(parts)


def _attributes(vertex: Vertex) -> str:
    chunks: list[str] = []
    for name in sorted(vertex.attributes):
        values = sorted(vertex.attr(name))
        chunks.append(f' {name}="{escape_attribute(" ".join(values))}"')
    return "".join(chunks)


def _emit(vertex: Vertex, parts: list[str], depth: int,
          indent: int | None) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    open_tag = f"{pad}<{vertex.label}{_attributes(vertex)}"
    children = vertex.children
    if not children:
        parts.append(open_tag + "/>")
        return
    has_text = any(isinstance(c, str) for c in children)
    if has_text or indent is None:
        # Inline form: text content must not gain whitespace.
        parts.append(open_tag + ">")
        for child in children:
            if isinstance(child, str):
                parts.append(escape_text(child))
            else:
                _emit(child, parts, 0, None)
        parts.append(f"</{vertex.label}>")
        return
    parts.append(open_tag + ">")
    for child in children:
        parts.append("\n")
        _emit(child, parts, depth + 1, indent)
    parts.append(f"\n{pad}</{vertex.label}>")
