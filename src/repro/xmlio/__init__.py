"""XML and DTD text processing, implemented from scratch.

- :func:`parse_document` — XML text to a
  :class:`~repro.datamodel.tree.DataTree` (with optional DTD-driven
  splitting of set-valued attributes);
- :func:`serialize` — data tree back to XML text;
- :func:`parse_dtd` — DTD declarations to a
  :class:`~repro.dtd.structure.DTDStructure`;
- :func:`parse_dtdc` — the ``.dtdc`` format (DTD declarations plus
  constraint lines) to a :class:`~repro.dtd.dtdc.DTDC`;
- :func:`serialize_dtdc` — the reverse.
"""

from repro.xmlio.parser import parse_document, parse_document_with_dtd
from repro.xmlio.serializer import serialize
from repro.xmlio.dtdparse import parse_dtd, parse_dtdc, serialize_dtdc

__all__ = ["parse_document", "parse_document_with_dtd", "serialize",
           "parse_dtd", "parse_dtdc", "serialize_dtdc"]
