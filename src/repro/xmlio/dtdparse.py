"""Parsing DTD declarations and the ``.dtdc`` container format.

:func:`parse_dtd` reads ``<!ELEMENT ...>`` and ``<!ATTLIST ...>``
declarations and builds a :class:`~repro.dtd.structure.DTDStructure`.
Attribute type mapping:

===========  ======================================
DTD type     structure
===========  ======================================
``ID``       single-valued, kind ID
``IDREF``    single-valued, kind IDREF
``IDREFS``   set-valued, kind IDREF
``NMTOKENS`` set-valued, no kind
``ENTITIES`` set-valued, no kind
(others)     single-valued, no kind
===========  ======================================

Default specifications (``#REQUIRED``/``#IMPLIED``/``#FIXED``/literals)
are accepted and ignored: Definition 2.2 has no attribute optionality —
Definition 2.4 requires every declared attribute to be present.

:func:`parse_dtdc` additionally collects *constraint lines*.  A ``.dtdc``
file is a DTD where constraints appear either in comments of the form
``<!-- constraints: ... -->`` (one constraint per line) or after a line
containing only ``%% constraints``.  Example::

    <!ELEMENT book (entry, author*, section*, ref)>
    <!ELEMENT entry (title, publisher)>
    <!ATTLIST entry isbn CDATA #REQUIRED>
    ...
    %% constraints
    entry.isbn -> entry
    section.sid -> section
    ref.to subS entry.isbn
"""

from __future__ import annotations

import re

from repro.constraints.parser import parse_constraints
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import AttributeKind, DTDStructure
from repro.errors import DTDSyntaxError

_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+([\w:.\-]+)\s+(.*?)>", re.DOTALL)
_ATTLIST_RE = re.compile(
    r"<!ATTLIST\s+([\w:.\-]+)\s+(.*?)>", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--(.*?)-->", re.DOTALL)
_ATTDEF_RE = re.compile(
    r"\s*([\w:.\-]+)\s+"                      # attribute name
    r"(CDATA|IDREFS|IDREF|ID|NMTOKENS|NMTOKEN|ENTITIES|ENTITY|NOTATION"
    r"|\([^)]*\))\s*"                         # type or enumeration (longest first)
    r"(#REQUIRED|#IMPLIED|#FIXED\s+(?:\"[^\"]*\"|'[^']*')"
    r"|\"[^\"]*\"|'[^']*')?", re.DOTALL)

_SET_VALUED_TYPES = {"IDREFS", "NMTOKENS", "ENTITIES"}
_KIND_BY_TYPE = {"ID": AttributeKind.ID, "IDREF": AttributeKind.IDREF,
                 "IDREFS": AttributeKind.IDREF}


def parse_dtd(text: str, root: str | None = None) -> DTDStructure:
    """Parse DTD declarations into a structure.

    ``root`` defaults to the first declared element type (the usual
    convention when the DOCTYPE name is unavailable).
    """
    body = _COMMENT_RE.sub("", text)
    elements = _ELEMENT_RE.findall(body)
    if not elements:
        raise DTDSyntaxError("no <!ELEMENT> declarations found")
    structure = DTDStructure(root or elements[0][0])
    for name, model in elements:
        model = " ".join(model.split())
        if model in ("(#PCDATA)", "( #PCDATA )"):
            # Pure text content allows any number of character chunks.
            model = "(#PCDATA)*"
        if model == "ANY":
            raise DTDSyntaxError(
                f"element {name!r}: ANY content is outside the paper's "
                "grammar (Definition 2.2)")
        structure.define_element(name, model)
    for name, attdefs in _ATTLIST_RE.findall(body):
        if not structure.has_element(name):
            # Permissive like real parsers: declare with EMPTY content.
            structure.define_element(name, "EMPTY")
        pos = 0
        while pos < len(attdefs):
            m = _ATTDEF_RE.match(attdefs, pos)
            if m is None or not m.group(0).strip():
                if attdefs[pos:].strip():
                    raise DTDSyntaxError(
                        f"malformed attribute definition for {name!r}: "
                        f"{attdefs[pos:].strip()!r}")
                break
            attr, typ, _default = m.group(1), m.group(2), m.group(3)
            structure.define_attribute(
                name, attr,
                set_valued=typ in _SET_VALUED_TYPES,
                kind=_KIND_BY_TYPE.get(typ))
            pos = m.end()
    structure.check()
    return structure


_SECTION_RE = re.compile(r"^\s*%%\s*constraints\s*$", re.MULTILINE)


def parse_dtdc(text: str, root: str | None = None,
               check: bool = True) -> DTDC:
    """Parse the ``.dtdc`` format: DTD declarations + constraint lines.

    ``check=False`` skips the well-formedness verification of Σ against
    the structure — used by the lint CLI, whose job is to *report* those
    problems as diagnostics rather than raise on the first one.
    """
    constraint_lines: list[str] = []
    section = _SECTION_RE.split(text)
    dtd_text = section[0]
    if len(section) > 1:
        constraint_lines.extend(section[1].splitlines())
    for comment in _COMMENT_RE.findall(dtd_text):
        stripped = comment.strip()
        if stripped.lower().startswith("constraints:"):
            constraint_lines.extend(
                stripped.split(":", 1)[1].splitlines())
    structure = parse_dtd(dtd_text, root=root)
    constraints = parse_constraints("\n".join(constraint_lines), structure)
    return DTDC(structure, constraints, check=check)


def serialize_dtdc(dtd: DTDC) -> str:
    """Render a ``DTD^C`` in the ``.dtdc`` format (round-trips through
    :func:`parse_dtdc` up to attribute-kind spellings)."""
    s = dtd.structure
    lines: list[str] = []
    ordered = [s.root] + sorted(s.element_types - {s.root})
    for tau in ordered:
        content = s.content(tau).to_string()
        if content == "()":
            content = "EMPTY"
        elif not content.startswith("("):
            content = f"({content})"
        lines.append(f"<!ELEMENT {tau} {content}>")
        attrs = sorted(s.attributes(tau))
        if attrs:
            defs = []
            for attr in attrs:
                kind = s.kind(tau, attr)
                if kind is AttributeKind.ID:
                    typ = "ID"
                elif kind is AttributeKind.IDREF:
                    typ = "IDREFS" if s.is_set_valued(tau, attr) else "IDREF"
                else:
                    typ = "NMTOKENS" if s.is_set_valued(tau, attr) else "CDATA"
                defs.append(f"  {attr} {typ} #REQUIRED")
            lines.append(f"<!ATTLIST {tau}\n" + "\n".join(defs) + ">")
    if dtd.constraints:
        lines.append("")
        lines.append("%% constraints")
        lines.extend(str(c) for c in dtd.constraints)
    return "\n".join(lines) + "\n"
