"""A from-scratch XML tokenizer.

Produces a stream of tokens sufficient for the data model of the paper:
start tags (with attributes), end tags, empty-element tags, character
data, CDATA sections, comments, processing instructions, the XML
declaration and a DOCTYPE declaration (whose internal subset is captured
verbatim for the DTD parser).

The tokenizer tracks line numbers for error reporting and resolves
character/entity references in text and attribute values.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import unescape

_NAME_RE = re.compile(r"[A-Za-z_:][\w:.\-]*")
_ATTR_RE = re.compile(
    r"\s+([A-Za-z_:][\w:.\-]*)\s*=\s*(\"[^\"]*\"|'[^']*')")
_WS_RE = re.compile(r"\s*")


@dataclass(frozen=True)
class Token:
    """One lexical unit of the XML document."""

    kind: str  # 'start' | 'end' | 'empty' | 'text' | 'comment' | 'pi' | 'doctype'
    value: str = ""
    attributes: tuple[tuple[str, str], ...] = field(default=())
    line: int = 0


class Tokenizer:
    """Tokenize an XML document string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1

    def _advance(self, upto: int) -> str:
        chunk = self.text[self.pos:upto]
        self.line += chunk.count("\n")
        self.pos = upto
        return chunk

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, line=self.line)

    def tokens(self):
        """Yield :class:`Token` objects until end of input."""
        text = self.text
        while self.pos < len(text):
            if text[self.pos] != "<":
                end = text.find("<", self.pos)
                if end == -1:
                    end = len(text)
                line = self.line
                raw = self._advance(end)
                yield Token("text", unescape(raw, line), line=line)
                continue
            if text.startswith("<!--", self.pos):
                end = text.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                line = self.line
                body = text[self.pos + 4:end]
                self._advance(end + 3)
                yield Token("comment", body, line=line)
                continue
            if text.startswith("<![CDATA[", self.pos):
                end = text.find("]]>", self.pos + 9)
                if end == -1:
                    raise self._error("unterminated CDATA section")
                line = self.line
                body = text[self.pos + 9:end]
                self._advance(end + 3)
                yield Token("text", body, line=line)
                continue
            if text.startswith("<?", self.pos):
                end = text.find("?>", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated processing instruction")
                line = self.line
                body = text[self.pos + 2:end]
                self._advance(end + 2)
                yield Token("pi", body, line=line)
                continue
            if text.startswith("<!DOCTYPE", self.pos):
                yield self._doctype()
                continue
            if text.startswith("</", self.pos):
                yield self._end_tag()
                continue
            yield self._start_tag()

    def _doctype(self) -> Token:
        """Consume ``<!DOCTYPE name [internal subset]>``."""
        line = self.line
        depth = 0
        i = self.pos
        in_bracket = False
        while i < len(self.text):
            ch = self.text[i]
            if ch == "[":
                in_bracket = True
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    in_bracket = False
            elif ch == ">" and not in_bracket:
                body = self.text[self.pos + len("<!DOCTYPE"):i]
                self._advance(i + 1)
                return Token("doctype", body.strip(), line=line)
            i += 1
        raise self._error("unterminated DOCTYPE declaration")

    def _end_tag(self) -> Token:
        line = self.line
        m = _NAME_RE.match(self.text, self.pos + 2)
        if m is None:
            raise self._error("malformed end tag")
        # Interned: every consumer dispatches on element labels through
        # dicts, and interning makes those lookups pointer comparisons.
        name = sys.intern(m.group(0))
        i = _WS_RE.match(self.text, m.end()).end()
        if i >= len(self.text) or self.text[i] != ">":
            raise self._error(f"malformed end tag </{name}")
        self._advance(i + 1)
        return Token("end", name, line=line)

    def _start_tag(self) -> Token:
        line = self.line
        m = _NAME_RE.match(self.text, self.pos + 1)
        if m is None:
            raise self._error("malformed start tag")
        name = sys.intern(m.group(0))
        i = m.end()
        attrs: list[tuple[str, str]] = []
        while True:
            am = _ATTR_RE.match(self.text, i)
            if am is None:
                break
            raw = am.group(2)[1:-1]
            attrs.append((sys.intern(am.group(1)), unescape(raw, self.line)))
            i = am.end()
        i = _WS_RE.match(self.text, i).end()
        if self.text.startswith("/>", i):
            self._advance(i + 2)
            return Token("empty", name, tuple(attrs), line)
        if i < len(self.text) and self.text[i] == ">":
            self._advance(i + 1)
            return Token("start", name, tuple(attrs), line)
        raise self._error(f"malformed start tag <{name}")
