"""Character escaping and entity resolution for XML text."""

from __future__ import annotations

import re

from repro.errors import XMLSyntaxError

_PREDEFINED = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_ENTITY_RE = re.compile(r"&(#x[0-9A-Fa-f]+|#[0-9]+|[A-Za-z][\w.\-]*);")


def unescape(text: str, line: int | None = None) -> str:
    """Resolve predefined and numeric character references.

    Unknown named entities raise :class:`XMLSyntaxError` (the library
    does not support custom entity declarations).
    """

    def replace(m: re.Match) -> str:
        body = m.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _PREDEFINED[body]
        except KeyError:
            raise XMLSyntaxError(f"unknown entity &{body};",
                                 line=line) from None

    if "&" not in text:
        return text
    out = _ENTITY_RE.sub(replace, text)
    if "&" in _ENTITY_RE.sub("", text):
        raise XMLSyntaxError("bare '&' in character data (use &amp;)",
                             line=line)
    return out


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;") \
        .replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return escape_text(text).replace('"', "&quot;")
