"""FO² formulas: AST, evaluation and the two-variable check.

FO² is first-order logic restricted to two variable *names* (``x`` and
``y``), which may be requantified.  :func:`variables_used` verifies that
a formula stays within a given variable budget; :func:`evaluate` is a
straightforward recursive evaluator over
:class:`~repro.fo2.structures.Structure`.

:func:`key_constraint_formula` builds the paper's witness formula

    ``∀x ∀y ( ∃z (l(x,z) ∧ l(y,z)) → x = y )``

which uses **three** variables — and §1 shows no two-variable equivalent
exists (verified executably by experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fo2.structures import Structure


class Formula:
    """Base class of FO formulas."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Var:
    """A variable occurrence."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Atom(Formula):
    """``relation(args...)`` with 1 or 2 arguments."""

    relation: str
    args: tuple[Var, ...]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(map(str, self.args))})"


@dataclass(frozen=True, slots=True)
class Eq(Formula):
    """``left = right``."""

    left: Var
    right: Var

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, slots=True)
class Not(Formula):
    inner: Formula

    def __str__(self) -> str:
        return f"¬({self.inner})"


@dataclass(frozen=True, slots=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True, slots=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True, slots=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} → {self.right})"


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    var: Var
    inner: Formula

    def __str__(self) -> str:
        return f"∃{self.var}.({self.inner})"


@dataclass(frozen=True, slots=True)
class Forall(Formula):
    var: Var
    inner: Formula

    def __str__(self) -> str:
        return f"∀{self.var}.({self.inner})"


def variables_used(formula: Formula) -> frozenset[str]:
    """All variable *names* occurring in the formula — the resource FO²
    bounds (requantification is free)."""
    if isinstance(formula, Atom):
        return frozenset(v.name for v in formula.args)
    if isinstance(formula, Eq):
        return frozenset((formula.left.name, formula.right.name))
    if isinstance(formula, Not):
        return variables_used(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        return variables_used(formula.left) | variables_used(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return variables_used(formula.inner) | {formula.var.name}
    if isinstance(formula, ExistsAtLeast):
        return variables_used(formula.inner) | {formula.var.name}
    raise TypeError(f"not a formula: {formula!r}")


def is_fo2(formula: Formula) -> bool:
    """Whether the formula uses at most two variable names."""
    return len(variables_used(formula)) <= 2


def evaluate(structure: Structure, formula: Formula,
             assignment: dict[str, object] | None = None) -> bool:
    """Model checking by recursive evaluation."""
    assignment = assignment or {}
    if isinstance(formula, Atom):
        values = tuple(assignment[v.name] for v in formula.args)
        return structure.holds(formula.relation, *values)
    if isinstance(formula, Eq):
        return assignment[formula.left.name] == \
            assignment[formula.right.name]
    if isinstance(formula, Not):
        return not evaluate(structure, formula.inner, assignment)
    if isinstance(formula, And):
        return evaluate(structure, formula.left, assignment) and \
            evaluate(structure, formula.right, assignment)
    if isinstance(formula, Or):
        return evaluate(structure, formula.left, assignment) or \
            evaluate(structure, formula.right, assignment)
    if isinstance(formula, Implies):
        return (not evaluate(structure, formula.left, assignment)) or \
            evaluate(structure, formula.right, assignment)
    if isinstance(formula, Exists):
        for element in structure.universe:
            inner = dict(assignment)
            inner[formula.var.name] = element
            if evaluate(structure, formula.inner, inner):
                return True
        return False
    if isinstance(formula, Forall):
        for element in structure.universe:
            inner = dict(assignment)
            inner[formula.var.name] = element
            if not evaluate(structure, formula.inner, inner):
                return False
        return True
    if isinstance(formula, ExistsAtLeast):
        hits = 0
        for element in structure.universe:
            inner = dict(assignment)
            inner[formula.var.name] = element
            if evaluate(structure, formula.inner, inner):
                hits += 1
                if hits >= formula.count:
                    return True
        return False
    raise TypeError(f"not a formula: {formula!r}")


def key_constraint_formula(relation: str = "l") -> Formula:
    """The paper's key-constraint sentence
    ``∀x∀y(∃z(l(x,z) ∧ l(y,z)) → x = y)`` (three variables)."""
    x, y, z = Var("x"), Var("y"), Var("z")
    shared = Exists(z, And(Atom(relation, (x, z)), Atom(relation, (y, z))))
    return Forall(x, Forall(y, Implies(shared, Eq(x, y))))


@dataclass(frozen=True, slots=True)
class ExistsAtLeast(Formula):
    """Counting quantifier ``∃^{≥k} var . inner`` (C², not plain FO²).

    §1 notes that keys ARE expressible once counting quantifiers are
    added (description logics with ``at_least``/``at_most``): the key
    constraint over ``l`` is ``∀x ¬∃^{≥2} y (l(y, x))`` — still two
    variable names, but outside FO²'s game, which is the point of
    Figure 1.
    """

    count: int
    var: Var
    inner: Formula

    def __str__(self) -> str:
        return f"∃≥{self.count}{self.var}.({self.inner})"


def key_constraint_c2(relation: str = "l") -> Formula:
    """The key constraint in C² (two variables + counting):
    ``∀x ¬∃^{≥2} y l(y, x)``."""
    x, y = Var("x"), Var("y")
    return Forall(x, Not(ExistsAtLeast(2, y, Atom(relation, (y, x)))))
