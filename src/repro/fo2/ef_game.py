"""The 2-pebble Ehrenfeucht–Fraïssé game (§1, Figure 1).

Equivalence of two finite structures in FO² is characterized by the
duplicator winning the unbounded 2-pebble game.  We compute the winning
set as a greatest fixpoint: start from all configurations that are
partial isomorphisms and repeatedly discard configurations from which
some spoiler move (re-placing either pebble, on either structure) has no
surviving duplicator answer.  On finite structures the fixpoint is
reached after finitely many rounds and equals "duplicator wins every
m-round game", i.e. FO² elementary equivalence (FO² formulas have
finite quantifier rank).

:func:`figure_one_pair` reconstructs the Figure 1 witness (the image is
not recoverable from the text — DESIGN.md documents the reconstruction):
``G`` is two disjoint ``l``-edges (the key constraint holds — no two
nodes share an ``l``-value) and ``G'`` is two ``l``-edges into one
shared target (the key fails).  Experiment E12 verifies FO² equivalence
with this module and distinguishability with the key formula, and
:func:`search_indistinguishable_pair` rediscovers the pair by exhaustive
search over small digraphs, confirming minimality.
"""

from __future__ import annotations

import itertools

from repro.fo2.structures import Structure

#: A pebble placement: (element of A, element of B) or None (unplaced).
_Config = tuple  # ((a, b) | None, (a, b) | None)


def _partial_iso(a_struct: Structure, b_struct: Structure,
                 config: _Config) -> bool:
    pairs = [p for p in config if p is not None]
    # Well-defined and injective on both sides.
    for (a1, b1), (a2, b2) in itertools.combinations(pairs, 2):
        if (a1 == a2) != (b1 == b2):
            return False
    names = set(a_struct.relation_names()) | set(b_struct.relation_names())
    for name in names:
        ra = a_struct.relation(name)
        rb = b_struct.relation(name)
        arity = len(next(iter(ra | rb), (None,)))
        if arity == 1:
            for (a, b) in pairs:
                if ((a,) in ra) != ((b,) in rb):
                    return False
        else:
            for (a1, b1) in pairs:
                for (a2, b2) in pairs:
                    if ((a1, a2) in ra) != ((b1, b2) in rb):
                        return False
    return True


def winning_configurations(a_struct: Structure,
                           b_struct: Structure) -> set[_Config]:
    """The duplicator's winning set of the unbounded 2-pebble game."""
    placements = [None] + [
        (a, b) for a in sorted(a_struct.universe, key=str)
        for b in sorted(b_struct.universe, key=str)]
    candidates = {
        (p1, p2) for p1 in placements for p2 in placements
        if _partial_iso(a_struct, b_struct, (p1, p2))}

    def survives(config: _Config, alive: set[_Config]) -> bool:
        for pebble in (0, 1):
            other = config[1 - pebble]
            # Spoiler plays in A: duplicator must answer in B.
            for a in a_struct.universe:
                if not any(_replace(config, pebble, (a, b)) in alive
                           for b in b_struct.universe):
                    return False
            # Spoiler plays in B.
            for b in b_struct.universe:
                if not any(_replace(config, pebble, (a, b)) in alive
                           for a in a_struct.universe):
                    return False
            del other
        return True

    alive = set(candidates)
    while True:
        dead = {c for c in alive if not survives(c, alive)}
        if not dead:
            return alive
        alive -= dead


def _replace(config: _Config, pebble: int, placement) -> _Config:
    out = list(config)
    out[pebble] = placement
    return tuple(out)


def two_pebble_equivalent(a_struct: Structure,
                          b_struct: Structure) -> bool:
    """Whether the structures are FO²-elementarily equivalent."""
    return (None, None) in winning_configurations(a_struct, b_struct)


def figure_one_pair() -> tuple[Structure, Structure]:
    """The reconstructed Figure 1 pair ``(G, G')``: G satisfies the key
    constraint over ``l``, G' violates it, yet ``G ≡_{FO²} G'``.

    The paper's figure is an image we cannot recover, so the pair is the
    *minimal* witness found by :func:`search_indistinguishable_pair`:
    ``G`` is the symmetric 2-cycle (every node has exactly one
    ``l``-predecessor — the key holds) and ``G'`` is the complete
    loop-free symmetric digraph on three nodes (every node has two
    predecessors — the key fails).  In both structures every pair of
    distinct nodes is ``l``-related both ways and no node relates to
    itself, so with only two pebbles the spoiler can never exhibit the
    extra predecessor: seeing "two" requires a third variable.
    """
    g = Structure.build(["a", "b"],
                        l={("a", "b"), ("b", "a")})
    g_prime = Structure.build(["u", "v", "w"],
                              l={("u", "v"), ("v", "u"), ("v", "w"),
                                 ("w", "v"), ("u", "w"), ("w", "u")})
    return g, g_prime


def _all_digraphs(n: int):
    """All directed graphs with one relation ``l`` on ``n`` nodes."""
    nodes = list(range(n))
    arcs = [(i, j) for i in nodes for j in nodes]
    for bits in range(2 ** len(arcs)):
        edges = {arc for k, arc in enumerate(arcs) if bits >> k & 1}
        yield Structure.build(nodes, l=edges)


def _satisfies_key(structure: Structure) -> bool:
    """Direct check of ``∀x∀y(∃z(l(x,z) ∧ l(y,z)) → x = y)``."""
    targets: dict = {}
    for (src, dst) in structure.relation("l"):
        owners = targets.setdefault(dst, set())
        owners.add(src)
        if len(owners) > 1:
            return False
    return True


def search_indistinguishable_pair(max_size: int = 3
                                  ) -> tuple[Structure, Structure] | None:
    """Exhaustively search digraph pairs up to ``max_size`` nodes for a
    (key-satisfying, key-violating) FO²-equivalent pair.

    With ``max_size=3`` this explores all ≤3-node digraphs and finds
    the minimal witness; it confirms the Figure 1 reconstruction is not
    an accident.  Cost grows brutally with size — keep small.
    """
    structures: list[Structure] = []
    for n in range(1, max_size + 1):
        structures.extend(_all_digraphs(n))
    holds = [s for s in structures if _satisfies_key(s)]
    fails = [s for s in structures if not _satisfies_key(s)]
    for g in holds:
        for g_prime in fails:
            if two_pebble_equivalent(g, g_prime):
                return g, g_prime
    return None
