"""Two-variable first-order logic: structures, formulas, the 2-pebble
Ehrenfeucht–Fraïssé game (§1's expressiveness discussion, Figure 1).

The paper shows that unary key constraints (among others) are *not*
expressible in FO²: the structures ``G`` and ``G'`` of Figure 1 are
FO²-equivalent (duplicator wins the 2-pebble game) yet the key
constraint ``tau.l -> tau`` distinguishes them.  This package makes the
argument executable:

- :class:`Structure` — finite relational structures;
- :mod:`repro.fo2.formulas` — an FO² AST with evaluation (and a
  variable-count check);
- :func:`two_pebble_equivalent` — the greatest-fixpoint winning-set
  computation for the unbounded 2-pebble game, which on finite
  structures coincides with FO² elementary equivalence;
- :func:`figure_one_pair` — the reconstructed Figure 1 witness, and
  :func:`search_indistinguishable_pair` to rediscover it by search.
"""

from repro.fo2.structures import Structure
from repro.fo2.formulas import (
    And, Atom, Eq, Exists, Forall, Implies, Not, Or, Var,
    evaluate, key_constraint_formula, variables_used,
)
from repro.fo2.ef_game import (
    figure_one_pair, search_indistinguishable_pair, two_pebble_equivalent,
)

__all__ = [
    "Structure",
    "And", "Atom", "Eq", "Exists", "Forall", "Implies", "Not", "Or",
    "Var", "evaluate", "key_constraint_formula", "variables_used",
    "figure_one_pair", "search_indistinguishable_pair",
    "two_pebble_equivalent",
]
