"""Finite relational structures over unary and binary relations."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Structure:
    """A finite structure: a universe plus named relations.

    Relations are sets of 1- or 2-tuples over the universe.  Structures
    are immutable and hashable (used as search-space keys).
    """

    universe: frozenset
    relations: tuple[tuple[str, frozenset], ...] = field(default=())

    @staticmethod
    def build(universe: Iterable,
              **relations: Iterable[tuple]) -> "Structure":
        """Convenience constructor::

            Structure.build(range(4), l={(0, 1), (2, 3)})
        """
        uni = frozenset(universe)
        rels = []
        for name, tuples in sorted(relations.items()):
            frozen = frozenset(tuple(t) if isinstance(t, (tuple, list))
                               else (t,) for t in tuples)
            for t in frozen:
                if not all(e in uni for e in t):
                    raise ValueError(
                        f"relation {name!r} mentions elements outside "
                        "the universe")
                if len(t) not in (1, 2):
                    raise ValueError(
                        f"relation {name!r} must be unary or binary")
            rels.append((name, frozen))
        return Structure(uni, tuple(rels))

    def relation(self, name: str) -> frozenset:
        """The tuple set of the named relation (empty when undeclared)."""
        for rel_name, tuples in self.relations:
            if rel_name == name:
                return tuples
        return frozenset()

    def relation_names(self) -> tuple[str, ...]:
        """The declared relation names, in sorted declaration order."""
        return tuple(name for name, _t in self.relations)

    def holds(self, name: str, *args) -> bool:
        """Whether ``name(args)`` holds."""
        return tuple(args) in self.relation(name)

    def __str__(self) -> str:
        rels = "; ".join(
            f"{name}={{{', '.join(map(str, sorted(t, key=str)))}}}"
            for name, t in self.relations)
        return (f"Structure(|U|={len(self.universe)}, {rels})")
