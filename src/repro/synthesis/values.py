"""The value chase: make a skeleton satisfy Σ.

Given a structurally valid skeleton, assign attribute (and §3.4
sub-element text) values so every constraint of Σ holds *and* is
exercised — keys over distinct rows, foreign keys actually pointing at
targets, inverses with at least one linked pair.

The algorithm is a bounded chase: start from globally unique defaults
(which satisfy every key for free), then repeatedly fire the
value-copying consequences of the foreign-key and inverse constraints
until a fixpoint, then repair any key collisions the copying created.
A collision on a foreign-key-forced field cannot be repaired in place —
the target extension is too small — so it is returned as a
*multiplicity hint* (grow ``ext(target)`` and retry), which the
synthesis driver feeds back into the skeleton builder.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Mapping

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.dtdc import DTDC
from repro.dtd.structure import DTDStructure


def assign_values(tree: DataTree, dtd: DTDC) -> dict[str, int]:
    """Chase Σ over the skeleton's values, in place.

    Returns multiplicity hints: ``{tau: n}`` meaning the skeleton needs
    at least ``n`` vertices of ``tau`` for an in-place repair to exist.
    An empty dict does not guarantee success — the caller re-validates
    — but a non-empty one names exactly what to grow before retrying.
    """
    structure = dtd.structure
    sigma = tuple(dtd.constraints)
    _defaults(tree, structure, sigma)
    hints: dict[str, int] = {}
    for _ in range(3):
        _chase(tree, structure, sigma)
        if not _fix_keys(tree, structure, sigma, hints):
            break
    return hints


# -- defaults ---------------------------------------------------------------


def assign_defaults(tree: DataTree, structure: DTDStructure,
                    sigma: Iterable[Constraint] = ()) -> None:
    """Public face of :func:`_defaults` (used by the model lowering)."""
    _defaults(tree, structure, sigma)


def set_field(v: Vertex, f: Field, values: "str | Iterable[str]",
              structure: DTDStructure) -> bool:
    """Public face of :func:`_set` (used by the model lowering)."""
    return _set(v, f, values, structure)


def _defaults(tree: DataTree, structure: DTDStructure,
              sigma: Iterable[Constraint]) -> None:
    """Globally unique scalars on every single-valued attribute (and
    every element field Σ mentions); empty sets on set-valued ones."""
    element_fields: dict[str, set[str]] = defaultdict(set)
    for c in sigma:
        for element, f in _fields_of(c):
            if f.is_element:
                element_fields[element].add(f.name)
    for label in sorted(structure.element_types):
        for i, v in enumerate(tree.ext(label)):
            for a in sorted(structure.attributes(label)):
                if structure.is_set_valued(label, a):
                    v.set_attribute(a, frozenset())
                else:
                    v.set_attribute(a, f"{label}.{a}.{i}")
            for name in sorted(element_fields.get(label, ())):
                for child in v.children_labeled(name):
                    _set_text(child, f"{label}.{name}.{i}", structure)


def _fields_of(c: Constraint) -> "list[tuple[str, Field]]":
    """Every (element type, field) pair a constraint reads."""
    if isinstance(c, UnaryKey):
        return [(c.element, c.field)]
    if isinstance(c, Key):
        return [(c.element, f) for f in c.fields]
    if isinstance(c, (UnaryForeignKey, SetValuedForeignKey)):
        return [(c.element, c.field), (c.target, c.target_field)]
    if isinstance(c, ForeignKey):
        return [(c.element, f) for f in c.fields] + \
            [(c.target, f) for f in c.target_fields]
    if isinstance(c, Inverse):
        return [(c.element, c.key_field), (c.element, c.field),
                (c.target, c.target_key_field), (c.target, c.target_field)]
    if isinstance(c, (IDForeignKey, IDSetValuedForeignKey)):
        return [(c.element, c.field)]
    if isinstance(c, IDInverse):
        return [(c.element, c.field), (c.target, c.target_field)]
    return []  # IDConstraint: the ID attribute, already defaulted


# -- reading and writing fields ---------------------------------------------


def _get(v: Vertex, f: Field) -> frozenset[str]:
    return f.values_on(v)


def _set(v: Vertex, f: Field, values: "str | Iterable[str]",
         structure: DTDStructure) -> bool:
    """Write a field value; element fields rewrite the child's text."""
    if isinstance(values, str):
        values = (values,)
    values = frozenset(values)
    if not f.is_element:
        v.set_attribute(f.name, values)
        return True
    if len(values) != 1:
        return False
    children = v.children_labeled(f.name)
    if not children:
        return False
    return _set_text(children[0], next(iter(values)), structure)


def _set_text(child: Vertex, value: str,
              structure: DTDStructure) -> bool:
    """Replace the string children of ``child`` with ``value``."""
    if structure.has_element(child.label) \
            and not structure.allows_text(child.label):
        return False
    for s in [c for c in child.children if isinstance(c, str)]:
        child.remove_child(s)
    child.append(value)
    return True


def _id_field(structure: DTDStructure, tau: str) -> "Field | None":
    name = structure.id_attribute(tau)
    return Field(name) if name else None


# -- the chase --------------------------------------------------------------


def _chase(tree: DataTree, structure: DTDStructure,
           sigma: tuple[Constraint, ...]) -> None:
    for _ in range(len(sigma) + 8):
        changed = False
        for c in sigma:
            changed |= _enforce(c, tree, structure)
        if not changed:
            return


def _enforce(c: Constraint, tree: DataTree,
             structure: DTDStructure) -> bool:
    if isinstance(c, (UnaryForeignKey, ForeignKey, IDForeignKey)):
        if isinstance(c, UnaryForeignKey):
            src, dst = (c.field,), (c.target_field,)
        elif isinstance(c, ForeignKey):
            src, dst = c.fields, c.target_fields
        else:
            idf = _id_field(structure, c.target)
            if idf is None:
                return False
            src, dst = (c.field,), (idf,)
        return _enforce_fk(tree, structure, c.element, src,
                           c.target, dst)
    if isinstance(c, (SetValuedForeignKey, IDSetValuedForeignKey)):
        dst = c.target_field if isinstance(c, SetValuedForeignKey) \
            else _id_field(structure, c.target)
        if dst is None:
            return False
        return _enforce_sfk(tree, structure, c.element, c.field,
                            c.target, dst)
    if isinstance(c, Inverse):
        return _enforce_inverse(tree, structure, c.element, c.key_field,
                                c.field, c.target, c.target_key_field,
                                c.target_field)
    if isinstance(c, IDInverse):
        ek, tk = _id_field(structure, c.element), \
            _id_field(structure, c.target)
        if ek is None or tk is None:
            return False
        return _enforce_inverse(tree, structure, c.element, ek, c.field,
                                c.target, tk, c.target_field)
    return False  # keys: handled by _fix_keys


def _enforce_fk(tree: DataTree, structure: DTDStructure, element: str,
                src: tuple[Field, ...], target: str,
                dst: tuple[Field, ...]) -> bool:
    """Point source row ``i`` at target row ``i mod |ext(target)|`` —
    distinct targets whenever the extension is large enough, so key
    constraints on the source fields survive when they can."""
    targets = tree.ext(target)
    if not targets:
        return False
    changed = False
    rows = [tuple(sorted(_get(y, f)) for f in dst) for y in targets]
    valid_rows = {tuple(r[0] for r in row) for row in rows
                  if all(len(r) == 1 for r in row)}
    for i, x in enumerate(tree.ext(element)):
        current = tuple(sorted(_get(x, f)) for f in src)
        if all(len(cv) == 1 for cv in current) \
                and tuple(cv[0] for cv in current) in valid_rows:
            continue
        y = targets[i % len(targets)]
        for sf, df in zip(src, dst):
            want = _get(y, df)
            if len(want) == 1 and _get(x, sf) != want:
                if _set(x, sf, want, structure):
                    changed = True
    return changed


def _enforce_sfk(tree: DataTree, structure: DTDStructure, element: str,
                 field: Field, target: str, dst: Field) -> bool:
    """Trim set values to the target pool; seed one reference so the
    constraint is exercised, never just vacuously empty."""
    pool: set[str] = set()
    for y in tree.ext(target):
        pool |= _get(y, dst)
    changed = False
    for x in tree.ext(element):
        cur = set(_get(x, field))
        keep = cur & pool
        if not keep and pool:
            keep = {min(pool)}
        if keep != cur:
            x.set_attribute(field.name, keep)
            changed = True
    return changed


def _enforce_inverse(tree: DataTree, structure: DTDStructure,
                     element: str, key_field: Field, field: Field,
                     target: str, target_key_field: Field,
                     target_field: Field) -> bool:
    """Symmetrize: whenever one side references the other, add the
    back-reference; link the first pair if none is linked yet."""
    xs, ys = tree.ext(element), tree.ext(target)
    changed = False
    linked = False
    for x in xs:
        xk = _single(_get(x, key_field))
        if xk is None:
            continue
        for y in ys:
            yk = _single(_get(y, target_key_field))
            if yk is None:
                continue
            fwd = yk in _get(x, field)
            bwd = xk in _get(y, target_field)
            if fwd or bwd:
                linked = True
            if fwd and not bwd:
                y.set_attribute(target_field.name,
                                set(_get(y, target_field)) | {xk})
                changed = True
            elif bwd and not fwd:
                x.set_attribute(field.name,
                                set(_get(x, field)) | {yk})
                changed = True
    if not linked and xs and ys:
        x, y = xs[0], ys[0]
        xk = _single(_get(x, key_field))
        yk = _single(_get(y, target_key_field))
        if xk is not None and yk is not None:
            x.set_attribute(field.name, set(_get(x, field)) | {yk})
            y.set_attribute(target_field.name,
                            set(_get(y, target_field)) | {xk})
            changed = True
    return changed


def _single(values: frozenset[str]) -> "str | None":
    return next(iter(values)) if len(values) == 1 else None


# -- key repair -------------------------------------------------------------


def _forced_fields(sigma: tuple[Constraint, ...],
                   structure: DTDStructure
                   ) -> dict[tuple[str, str], set[str]]:
    """Fields whose values foreign keys force: ``(element, field name)
    -> target types``.  A collision there cannot be repaired by picking
    a fresh value — only by growing the target extension."""
    forced: dict[tuple[str, str], set[str]] = defaultdict(set)
    for c in sigma:
        if isinstance(c, (UnaryForeignKey, IDForeignKey)):
            forced[(c.element, c.field.name)].add(c.target)
        elif isinstance(c, ForeignKey):
            for f in c.fields:
                forced[(c.element, f.name)].add(c.target)
    return forced


def _fix_keys(tree: DataTree, structure: DTDStructure,
              sigma: tuple[Constraint, ...],
              hints: dict[str, int]) -> bool:
    """Repair key collisions left by the chase.

    A colliding row with at least one *free* field gets a fresh unique
    value there; a row whose every field is foreign-key-forced records
    a hint to grow the foreign keys' target type instead.  Returns
    whether anything changed (fresh values may need another chase
    round when other constraints read the same field).
    """
    forced = _forced_fields(sigma, structure)
    changed = False
    serial = 0
    for c in sigma:
        if isinstance(c, UnaryKey):
            element, fields = c.element, (c.field,)
        elif isinstance(c, Key):
            element, fields = c.element, c.fields
        elif isinstance(c, IDConstraint):
            idf = _id_field(structure, c.element)
            if idf is None:
                continue
            element, fields = c.element, (idf,)
        else:
            continue
        seen: dict[tuple, Vertex] = {}
        for v in tree.ext(element):
            row = tuple(_single(_get(v, f)) for f in fields)
            if None in row:
                continue
            if row not in seen:
                seen[row] = v
                continue
            free = [f for f in fields
                    if (element, f.name) not in forced]
            if free:
                f = free[0]
                serial += 1
                fresh = f"{element}.{f.name}.u{serial}"
                if _set(v, f, fresh, structure):
                    changed = True
                    continue
            n = len(tree.ext(element))
            for f in fields:
                for target in forced.get((element, f.name), ()):
                    hints[target] = max(hints.get(target, 0), n)
    return changed
