"""Whole-schema satisfiability and witness-document synthesis.

The constructive companion to :mod:`repro.dtd.consistency`: instead of
a bare yes/no, the pass either *builds* a minimal document proving a
``DTD^C`` satisfiable — one that parses, validates with zero
violations, and exercises every constraint of Σ — or names the minimal
set of productions and constraints that conflict (the unsat core).

Layers:

- :mod:`repro.synthesis.reachability` — reachable/generating types over
  the content models, minimal-cost expansions, and the Dijkstra word
  search behind skeleton grafting;
- :mod:`repro.synthesis.skeleton` — structurally valid trees realizing
  prescribed type multiplicities;
- :mod:`repro.synthesis.values` — the bounded chase assigning attribute
  values so Σ holds and is exercised;
- :mod:`repro.synthesis.satisfiability` — the verdict driver:
  :func:`check_satisfiability`, :func:`synthesize_witness`, unsat-core
  minimization.

The lint engine (``XIC104``, ``XIC303``) and the ``repro-xic
consistent`` / ``repro-xic synth`` subcommands all route through
:func:`check_satisfiability`, so their verdicts agree by construction.
"""

from repro.synthesis.reachability import (
    generating_types, reachable_types,
)
from repro.synthesis.satisfiability import (
    SatReport, UnsatCore, Verdict, check_satisfiability,
    per_constraint_witnesses, synthesize_witness,
)
from repro.synthesis.skeleton import SkeletonBuilder

__all__ = [
    "SatReport", "SkeletonBuilder", "UnsatCore", "Verdict",
    "check_satisfiability", "generating_types",
    "per_constraint_witnesses", "reachable_types", "synthesize_witness",
]
