"""Whole-schema satisfiability: verdict, witness, or unsat core.

``check_satisfiability`` combines three analyses into one verdict on a
``DTD^C = (S, Σ)``:

1. **structural** — every required type (mandatory containment from the
   root) must be generating; a required type that derives no finite
   tree (``<!ELEMENT a (a)>``) makes the schema UNSAT with a *production*
   core, no constraints involved;
2. **constraint** — the Σ-vacuous types (the ``L_id`` multi-target
   degeneracy of :mod:`repro.dtd.consistency`) are excluded from the
   generating fixpoint; a required type that stops generating under the
   exclusion makes the schema UNSAT with a *constraint* core — a union
   of minimal conflicting subsets of Σ whose removal provably restores
   satisfiability (satisfiability is anti-monotone in Σ, so the greedy
   deletion shrink is exact);
3. **constructive** — when neither analysis objects, a witness document
   is synthesized (skeleton + value chase), verified with the
   production validator, and shipped with the SAT verdict.  A verdict
   of SAT therefore always carries a zero-violation witness; the rare
   cardinality corners the tractable analyses cannot decide (a key over
   a foreign key into a type whose extension cannot grow) come back
   ``UNKNOWN``, never a wrong answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.constraints.base import Constraint
from repro.datamodel.tree import DataTree
from repro.dtd.consistency import required_types, vacuous_types
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import validate
from repro.obs import NULL_OBS
from repro.synthesis.reachability import generating_types, reachable_types
from repro.synthesis.skeleton import SkeletonBuilder
from repro.synthesis.values import assign_values

#: Witness synthesis retries (each retry grows the skeleton by the
#: multiplicity hints of the previous round's value chase).
MAX_ROUNDS = 4


class Verdict(enum.Enum):
    """The satisfiability verdict on a ``DTD^C``."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class UnsatCore:
    """What conflicts: a minimal set of productions and/or constraints.

    ``productions`` names required element types that cannot derive any
    finite tree; ``constraints`` is a union of minimal conflicting
    subsets of Σ — removing all of them from the schema makes it SAT,
    and each one is individually necessary for the conflict.
    """

    constraints: tuple[Constraint, ...] = ()
    productions: tuple[str, ...] = ()
    reason: str = ""

    def to_dict(self) -> dict:
        return {"constraints": [str(c) for c in self.constraints],
                "productions": list(self.productions),
                "reason": self.reason}

    def __str__(self) -> str:
        parts = []
        if self.productions:
            parts.append("productions: "
                         + ", ".join(self.productions))
        if self.constraints:
            parts.append("constraints: "
                         + "; ".join(str(c) for c in self.constraints))
        return f"unsat core ({self.reason}) — " + "; ".join(parts)


@dataclass
class SatReport:
    """The full outcome of :func:`check_satisfiability`."""

    verdict: Verdict
    witness: "DataTree | None" = None
    core: "UnsatCore | None" = None
    required: frozenset = frozenset()
    vacuous: frozenset = frozenset()
    reachable: frozenset = frozenset()
    generating: frozenset = frozenset()
    structural_generating: frozenset = frozenset()
    exercised: dict = field(default_factory=dict)
    rounds: int = 0

    @property
    def satisfiable(self) -> bool:
        """Whether some finite valid document exists (SAT only)."""
        return self.verdict is Verdict.SAT

    @property
    def conflicts(self) -> frozenset:
        """Required types that cannot occur — empty iff no conflict."""
        return self.required - self.generating

    @property
    def structural_conflicts(self) -> frozenset:
        """The conflicts already present with Σ = ∅ (pure grammar)."""
        return self.required - self.structural_generating

    @property
    def constraint_conflicts(self) -> frozenset:
        """The conflicts Σ introduces on a structurally fine grammar."""
        return self.conflicts - self.structural_conflicts

    def to_dict(self) -> dict:
        out = {
            "verdict": str(self.verdict),
            "satisfiable": self.satisfiable,
            "required": sorted(self.required),
            "vacuous": sorted(self.vacuous),
            "reachable": sorted(self.reachable),
            "generating": sorted(self.generating),
            "conflicts": sorted(self.conflicts),
            "rounds": self.rounds,
        }
        if self.core is not None:
            out["unsat_core"] = self.core.to_dict()
        if self.witness is not None:
            out["witness_vertices"] = self.witness.size()
            out["exercised"] = {c: bool(e)
                                for c, e in sorted(self.exercised.items())}
        return out

    def __str__(self) -> str:
        if self.verdict is Verdict.SAT:
            n = self.witness.size() if self.witness is not None else 0
            ex = sum(1 for e in self.exercised.values() if e)
            extra = f", witness: {n} vertices, {ex}/" \
                f"{len(self.exercised)} constraint(s) exercised" \
                if self.witness is not None else " (analytic, no witness)"
            return f"SAT{extra}"
        if self.verdict is Verdict.UNSAT:
            return f"UNSAT — {self.core}"
        return ("UNKNOWN — the tractable analyses found no conflict but "
                "witness synthesis could not verify a document")


# -- the analytic half ------------------------------------------------------


def _safe_vacuous(structure, constraints: Sequence[Constraint]) -> set:
    try:
        return vacuous_types(DTDC(structure, tuple(constraints),
                                  check=False))
    except Exception:
        return set()


def _subset_sat(structure, constraints: Sequence[Constraint]) -> bool:
    """The analytic satisfiability test used for core minimization."""
    required = required_types(structure)
    vac = _safe_vacuous(structure, constraints)
    return required <= generating_types(structure, excluded=vac)


def _shrink_mus(structure, constraints: "list[Constraint]"
                ) -> "list[Constraint]":
    """Deletion-based minimal unsatisfiable subset (assumes UNSAT)."""
    subset = list(constraints)
    for c in list(subset):
        trial = [x for x in subset if x is not c]
        if not _subset_sat(structure, trial):
            subset = trial
    return subset


def _constraint_core(structure, sigma: Sequence[Constraint]
                     ) -> "list[Constraint]":
    """A union of disjoint minimal conflicting subsets whose removal
    makes the schema SAT (each member individually necessary)."""
    core: list[Constraint] = []
    remaining = list(sigma)
    for _ in range(len(sigma) + 1):
        if _subset_sat(structure, remaining):
            break
        mus = _shrink_mus(structure, remaining)
        core.extend(mus)
        remaining = [c for c in remaining if not any(c is m for m in mus)]
    return core


# -- witness synthesis ------------------------------------------------------


def synthesize_witness(dtd: DTDC,
                       exercise: "Iterable[Constraint] | None" = None,
                       obs=None, max_rounds: int = MAX_ROUNDS
                       ) -> "tuple[DataTree | None, dict, int]":
    """Build and verify a minimal witness document for a SAT schema.

    ``exercise`` restricts which constraints' element types the witness
    must populate (default: all of Σ); the document always satisfies
    *all* of Σ either way.  Returns ``(tree, exercised, rounds)`` with
    ``tree is None`` when no verified document was found within
    ``max_rounds`` skeleton growths.
    """
    obs = obs or NULL_OBS
    structure = dtd.structure
    sigma = tuple(dtd.constraints)
    targets = tuple(exercise) if exercise is not None else sigma
    vac = frozenset(_safe_vacuous(structure, sigma))
    builder = SkeletonBuilder(structure, excluded=vac)
    wanted: set[str] = {structure.root}
    for c in targets:
        wanted.add(c.element)
        wanted.update(_fk_targets(c))
    multiplicities = {tau: 1 for tau in sorted(wanted)
                      if builder.realizable(tau)}
    with obs.span("synthesis.witness", sigma=len(sigma)) as span:
        for round_no in range(1, max_rounds + 1):
            tree = builder.build(multiplicities)
            if tree is None:
                return None, {}, round_no
            hints = assign_values(tree, dtd)
            report = validate(tree, dtd, obs=obs)
            if report.ok:
                exercised = {str(c): _is_exercised(c, tree)
                             for c in sigma}
                if obs.enabled:
                    span.set(vertices=tree.size(), rounds=round_no)
                    obs.counter(
                        "synthesis_witness_vertices",
                        help="vertices in verified witness documents",
                    ).add(tree.size())
                return tree, exercised, round_no
            grown = False
            for tau, n in hints.items():
                if n > multiplicities.get(tau, 0) \
                        and builder.realizable(tau):
                    multiplicities[tau] = n
                    grown = True
            if not grown:
                return None, {}, round_no
    return None, {}, max_rounds


def _fk_targets(c: Constraint) -> tuple[str, ...]:
    target = getattr(c, "target", None)
    return (target,) if isinstance(target, str) else ()


def _is_exercised(c: Constraint, tree: DataTree) -> bool:
    """Non-vacuous on this document: the constrained extensions are
    populated (so the evaluators actually compared something)."""
    if not tree.ext(c.element):
        return False
    return all(tree.ext(t) for t in _fk_targets(c))


# -- the driver -------------------------------------------------------------


def check_satisfiability(dtd: DTDC, synthesize: bool = True,
                         obs=None, max_rounds: int = MAX_ROUNDS
                         ) -> SatReport:
    """Decide satisfiability of the schema; see the module docstring.

    With ``synthesize=False`` the answer is analytic only (fast; SAT
    verdicts carry no witness) — the mode the lint engine and the
    ``consistent`` subcommand share, so their verdicts cannot drift.
    """
    obs = obs or NULL_OBS
    structure = dtd.structure
    sigma = tuple(dtd.constraints)
    with obs.span("synthesis.check", sigma=len(sigma)) as span:
        required = frozenset(required_types(structure))
        reachable = reachable_types(structure)
        structural_gen = generating_types(structure)
        vac = frozenset(_safe_vacuous(structure, sigma))
        gen = generating_types(structure, excluded=vac)
        report = SatReport(Verdict.SAT, required=required, vacuous=vac,
                           reachable=reachable, generating=gen,
                           structural_generating=structural_gen)
        if report.structural_conflicts:
            report.verdict = Verdict.UNSAT
            report.core = UnsatCore(
                productions=tuple(sorted(report.structural_conflicts)),
                reason="required element type(s) derive no finite tree")
        elif report.constraint_conflicts:
            with obs.span("synthesis.core"):
                core = _constraint_core(structure, sigma)
            report.verdict = Verdict.UNSAT
            report.core = UnsatCore(
                constraints=tuple(core),
                productions=tuple(sorted(report.constraint_conflicts)),
                reason="Sigma forces required element type(s) to be "
                "empty")
        elif synthesize:
            witness, exercised, rounds = synthesize_witness(
                dtd, obs=obs, max_rounds=max_rounds)
            report.rounds = rounds
            if witness is None:
                report.verdict = Verdict.UNKNOWN
            else:
                report.witness = witness
                report.exercised = exercised
        if obs.enabled:
            span.set(verdict=str(report.verdict))
            obs.counter("synthesis_verdicts",
                        {"verdict": str(report.verdict)},
                        help="satisfiability verdicts").inc()
    return report


def per_constraint_witnesses(dtd: DTDC, obs=None
                             ) -> "list[dict]":
    """One minimal witness per constraint: the smallest document that
    satisfies all of Σ while populating that constraint's extensions.
    Entries: ``{"constraint", "witness" (tree or None), "exercised"}``.
    """
    out = []
    for c in dtd.constraints:
        tree, exercised, _rounds = synthesize_witness(dtd, exercise=(c,),
                                                      obs=obs)
        out.append({"constraint": c, "witness": tree,
                    "exercised": bool(tree is not None
                                      and exercised.get(str(c)))})
    return out
