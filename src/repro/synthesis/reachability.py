"""Reachability and generating analysis over content models.

The two classical grammar facts, transplanted to DTDs (a DTD is a
regular tree grammar, Def 2.2):

- a type is **reachable** when some chain of content models from the
  root mentions it — only reachable types can occur in a document;
- a type is **generating** when it derives at least one finite tree —
  ``L(P(tau))`` must contain a word over generating symbols.  A type
  that only derives through itself (``<!ELEMENT a (a)>``) generates
  nothing, and a *required* non-generating type makes the whole schema
  unsatisfiable no matter what Σ says.

The same fixpoint, run with an exclusion set (the Σ-vacuous types of
:func:`repro.dtd.consistency.vacuous_types`), answers the combined
question: which types can occur in a document that is both structurally
valid and a model of Σ.

The word searches are the constructive half: :func:`min_cost_word`
finds the cheapest word of ``L(P(tau))`` (cost = vertices of the
minimal subtree each symbol expands to), and :func:`word_with` runs
Dijkstra over the Glushkov automaton × a required-occurrence counter to
find the cheapest accepted word containing a prescribed multiset of
symbols — the engine behind witness skeletons.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Mapping

from repro.dtd.structure import DTDStructure
from repro.regexlang.ast import (
    ATOMIC, Atom, Concat, Epsilon, Regex, Star, Union,
)
from repro.regexlang.glushkov import GlushkovNFA

#: Effectively-infinite cost for non-generating symbols.
INF = float("inf")


def reachable_types(structure: DTDStructure) -> frozenset[str]:
    """Types mentioned by some content-model chain from the root."""
    if not structure.has_element(structure.root):
        return frozenset()
    reachable = {structure.root}
    queue = deque((structure.root,))
    while queue:
        tau = queue.popleft()
        for child in structure.subelements(tau):
            if child not in reachable and structure.has_element(child):
                reachable.add(child)
                queue.append(child)
    return frozenset(reachable)


def has_word_over(regex: Regex, allowed: "frozenset[str] | set[str]"
                  ) -> bool:
    """Whether ``L(regex)`` contains a word using only ``allowed``
    symbols (the text symbol ``S`` is always allowed)."""
    if isinstance(regex, Epsilon):
        return True
    if isinstance(regex, Atom):
        return regex.symbol == ATOMIC or regex.symbol in allowed
    if isinstance(regex, Union):
        return has_word_over(regex.left, allowed) \
            or has_word_over(regex.right, allowed)
    if isinstance(regex, Concat):
        return has_word_over(regex.left, allowed) \
            and has_word_over(regex.right, allowed)
    if isinstance(regex, Star):
        return True
    raise TypeError(f"unknown regex node {regex!r}")


def generating_types(structure: DTDStructure,
                     excluded: "frozenset[str] | set[str]" = frozenset()
                     ) -> frozenset[str]:
    """Types that derive at least one finite tree, never using a type
    from ``excluded`` (pass the Σ-vacuous set to get the types that can
    occur in a *model* of Σ; pass nothing for the purely structural
    answer)."""
    generating: set[str] = set()
    changed = True
    while changed:
        changed = False
        for tau in structure.element_types:
            if tau in generating or tau in excluded:
                continue
            if has_word_over(structure.content(tau), generating):
                generating.add(tau)
                changed = True
    return frozenset(generating)


def _better(a, b):
    """Order (cost, word) candidates: cheaper, then shorter, then
    lexicographic — total, so every choice below is deterministic."""
    if b is None:
        return a
    if a is None:
        return b
    return min(a, b, key=lambda cw: (cw[0], len(cw[1]), cw[1]))


def min_cost_word(regex: Regex, costs: Mapping[str, float]
                  ) -> "tuple[float, tuple[str, ...]] | None":
    """The cheapest word of ``L(regex)`` under per-symbol costs
    (``S`` is free), or ``None`` when every word uses an
    infinite-cost symbol."""
    if isinstance(regex, Epsilon):
        return (0.0, ())
    if isinstance(regex, Atom):
        cost = 0.0 if regex.symbol == ATOMIC \
            else costs.get(regex.symbol, INF)
        return None if cost == INF else (cost, (regex.symbol,))
    if isinstance(regex, Union):
        return _better(min_cost_word(regex.left, costs),
                       min_cost_word(regex.right, costs))
    if isinstance(regex, Concat):
        left = min_cost_word(regex.left, costs)
        right = min_cost_word(regex.right, costs)
        if left is None or right is None:
            return None
        return (left[0] + right[0], left[1] + right[1])
    if isinstance(regex, Star):
        return (0.0, ())
    raise TypeError(f"unknown regex node {regex!r}")


def expansion_costs(structure: DTDStructure,
                    generating: "frozenset[str] | None" = None
                    ) -> "tuple[dict[str, float], dict[str, tuple[str, ...]]]":
    """Per-type minimal subtree sizes and the words realizing them.

    ``costs[tau]`` is the vertex count of the smallest tree rooted at
    ``tau`` (1 for a type whose content model accepts the empty word);
    ``words[tau]`` is the child word of that smallest tree.  Knuth-style
    fixpoint: relax every type against the current costs until stable.
    Non-generating types keep cost ``INF`` and get no word.
    """
    if generating is None:
        generating = generating_types(structure)
    costs: dict[str, float] = {tau: INF for tau in structure.element_types}
    words: dict[str, tuple[str, ...]] = {}
    changed = True
    while changed:
        changed = False
        for tau in sorted(generating):
            best = min_cost_word(structure.content(tau), costs)
            if best is None:
                continue
            total = 1.0 + best[0]
            if total < costs[tau]:
                costs[tau] = total
                words[tau] = best[1]
                changed = True
    return costs, words


def word_with(regex: Regex, required: Mapping[str, int],
              costs: Mapping[str, float],
              allowed: "frozenset[str] | set[str]",
              max_states: int = 200_000) -> "tuple[str, ...] | None":
    """The cheapest word of ``L(regex)`` containing every symbol of
    ``required`` at least the prescribed number of times, using only
    ``allowed`` symbols (plus ``S``, which is free).

    Dijkstra over the product of the Glushkov state set and a capped
    occurrence counter for the required symbols, with dead-state
    pruning: a state from which some still-deficient symbol can no
    longer be emitted (a skipped star, say) is dropped immediately, so
    the subset explosion of "skip one required symbol" branches never
    enters the frontier.  Returns ``None`` when no such word exists
    (the content model bounds the symbol below the requirement, say) or
    the search exceeds ``max_states``.
    """
    nfa = GlushkovNFA(regex)
    req_syms = tuple(sorted(s for s, n in required.items() if n > 0))
    caps = tuple(required[s] for s in req_syms)
    index = {s: i for i, s in enumerate(req_syms)}
    alphabet = sorted(
        s for s in nfa.alphabet()
        if s == ATOMIC or s in allowed or s in index)
    for s in req_syms:
        if s not in nfa.alphabet():
            return None

    def sym_cost(s: str) -> float:
        return 0.0 if s == ATOMIC else costs.get(s, INF)

    if any(sym_cost(s) == INF for s in req_syms):
        return None
    # emittable[p]: bitmask of required symbols some continuation from
    # position p can still produce (position 0 = before any symbol).
    bit = {s: 1 << i for s, i in index.items()}
    emittable = {p: 0 for p in nfa.symbols}
    emittable[0] = 0
    changed = True
    while changed:
        changed = False
        for p in emittable:
            mask = emittable[p]
            for q in (nfa.first if p == 0 else nfa.follow.get(p, ())):
                mask |= bit.get(nfa.symbols[q], 0) | emittable[q]
            if mask != emittable[p]:
                emittable[p] = mask
                changed = True
    full = (1 << len(req_syms)) - 1
    if emittable[0] != full:
        return None  # some required symbol is bounded to zero

    def alive(states, counts) -> bool:
        deficit = 0
        for j in range(len(caps)):
            if counts[j] < caps[j]:
                deficit |= 1 << j
        if not deficit:
            return True
        mask = 0
        for q in states:
            mask |= emittable[q]
            if deficit & ~mask == 0:
                return True
        return deficit & ~mask == 0

    start = (nfa.initial(), (0,) * len(req_syms))
    # heap entries: (cost, word, states, counts) — the word tiebreaks
    # (shorter/lexicographically-smaller first), so output is stable.
    heap: list = [(0.0, (), start[0], start[1])]
    seen: set = set()
    while heap:
        cost, word, states, counts = heapq.heappop(heap)
        key = (states, counts)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > max_states:
            return None
        if counts == caps and nfa.is_accepting(states):
            return word
        for s in alphabet:
            c = sym_cost(s)
            if c == INF:
                continue
            nxt = nfa.step(states, s)
            if not nxt:
                continue
            i = index.get(s)
            nxt_counts = counts if i is None else tuple(
                min(caps[j], counts[j] + 1) if j == i else counts[j]
                for j in range(len(counts)))
            if (nxt, nxt_counts) not in seen \
                    and alive(nxt, nxt_counts):
                heapq.heappush(heap, (cost + c, word + (s,), nxt,
                                      nxt_counts))
    return None


def can_contain(structure: DTDStructure, parent: str, child: str,
                costs: Mapping[str, float],
                allowed: "frozenset[str] | set[str]") -> bool:
    """Whether some word of ``L(P(parent))`` over ``allowed`` contains
    ``child`` — i.e. the edge parent → child survives the exclusions."""
    return word_with(structure.content(parent), {child: 1}, costs,
                     allowed) is not None


def viable_paths(structure: DTDStructure,
                 allowed: "frozenset[str] | set[str]",
                 costs: Mapping[str, float]
                 ) -> dict[str, tuple[str, ...]]:
    """For every type realizable *in context*: a shortest root path
    ``(root, ..., tau)`` whose every edge is witnessed by a word over
    ``allowed``.  Types absent from the result cannot occur in any
    document restricted to ``allowed`` types.
    """
    root = structure.root
    if not structure.has_element(root) or root not in allowed:
        return {}
    paths: dict[str, tuple[str, ...]] = {root: (root,)}
    queue = deque((root,))
    while queue:
        tau = queue.popleft()
        for child in sorted(structure.subelements(tau)):
            if child in paths or child not in allowed \
                    or not structure.has_element(child):
                continue
            if can_contain(structure, tau, child, costs, allowed):
                paths[child] = paths[tau] + (child,)
                queue.append(child)
    return paths
