"""Witness skeletons: minimal structurally-valid trees on demand.

A *skeleton* is a data tree that validates against ``S`` structurally
and realizes a prescribed multiplicity per element type (at least ``n``
vertices of type ``tau``) — the shape on which the value chase of
:mod:`repro.synthesis.values` then satisfies Σ.  Construction is
greedy-minimal: every vertex expands to the cheapest word of its
content model (:func:`~repro.synthesis.reachability.expansion_costs`),
and extra occurrences are grafted along shortest viable root paths by
re-solving the parent's child word with
:func:`~repro.synthesis.reachability.word_with` (existing subtrees are
reused, never discarded).
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict, deque
from collections.abc import Mapping

from repro.datamodel.tree import DataTree, Vertex
from repro.dtd.structure import DTDStructure
from repro.regexlang.ast import (
    ATOMIC, Atom, Concat, Epsilon, Regex, Star, Union,
)
from repro.synthesis.reachability import (
    expansion_costs, generating_types, has_word_over, viable_paths,
    word_with,
)

#: Placeholder text content; the value chase overwrites it when a
#: constraint field reads it.
_TEXT = "text"


def random_word_over(regex: Regex, rng: random.Random,
                     allowed: "frozenset[str] | set[str]",
                     max_star: int = 2) -> "tuple[str, ...] | None":
    """A random word of ``L(regex)`` using only ``allowed`` symbols
    (``S`` always allowed), or ``None`` when the restriction empties
    the language.  Star bodies repeat 0..``max_star`` times."""
    if isinstance(regex, Epsilon):
        return ()
    if isinstance(regex, Atom):
        if regex.symbol == ATOMIC or regex.symbol in allowed:
            return (regex.symbol,)
        return None
    if isinstance(regex, Union):
        sides = [s for s in (regex.left, regex.right)
                 if has_word_over(s, allowed)]
        if not sides:
            return None
        return random_word_over(rng.choice(sides), rng, allowed, max_star)
    if isinstance(regex, Concat):
        left = random_word_over(regex.left, rng, allowed, max_star)
        right = random_word_over(regex.right, rng, allowed, max_star)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(regex, Star):
        if not has_word_over(regex.inner, allowed):
            return ()
        word: tuple[str, ...] = ()
        for _ in range(rng.randint(0, max_star)):
            part = random_word_over(regex.inner, rng, allowed, max_star)
            if part is None:
                return word
            word += part
        return word
    raise TypeError(f"unknown regex node {regex!r}")


class SkeletonBuilder:
    """Builds minimal valid-shape trees over one structure.

    ``excluded`` types (the Σ-vacuous set) never appear in any built
    tree; all analyses are precomputed once, so building many skeletons
    over the same schema is cheap.
    """

    def __init__(self, structure: DTDStructure,
                 excluded: "frozenset[str] | set[str]" = frozenset()):
        self.structure = structure
        self.allowed = generating_types(structure, excluded)
        self.costs, self.min_words = expansion_costs(structure,
                                                     self.allowed)
        self.paths = viable_paths(structure, self.allowed, self.costs)

    def realizable(self, tau: str) -> bool:
        """Whether ``tau`` can occur in some tree this builder makes."""
        return tau in self.paths

    def build(self, multiplicities: Mapping[str, int],
              rng: "random.Random | None" = None,
              budget: int = 0) -> "DataTree | None":
        """A tree with at least ``multiplicities[tau]`` vertices of each
        type, or ``None`` when the content models forbid it (a type
        occurring exactly once in its only parent cannot be doubled).

        With ``rng``, initial expansions draw random content-model
        words (bounded by ``budget`` extra vertices) instead of minimal
        ones — the workload generators' valid-document mode."""
        root = self.structure.root
        if root not in self.paths:
            return None
        mult = {t: n for t, n in multiplicities.items() if n > 0}
        if mult.get(root, 1) > 1:
            return None  # documents have one root
        tree = DataTree(root)
        state = _BuildState(rng, budget)
        self._expand(tree, tree.root, state)
        for tau in sorted(mult):
            if tau not in self.paths:
                return None
            while len(tree.ext(tau)) < mult[tau]:
                before = len(tree.ext(tau))
                if self._add_one(tree, tau, state) is None:
                    return None
                if len(tree.ext(tau)) <= before:  # pragma: no cover
                    return None
        return tree

    # -- internals ----------------------------------------------------------

    def _expand(self, tree: DataTree, vertex: Vertex,
                state: "_BuildState") -> None:
        """Grow ``vertex`` with a cheapest (or random) child word,
        recursively, until the subtree is structurally complete."""
        word = None
        if state.rng is not None and state.budget > 0:
            word = random_word_over(self.structure.content(vertex.label),
                                    state.rng, self.allowed)
        if word is None:
            word = self.min_words.get(vertex.label)
        if word is None:  # pragma: no cover — callers stay in `allowed`
            return
        state.budget -= len(word)
        for sym in word:
            if sym == ATOMIC:
                vertex.append(_TEXT)
            else:
                self._expand(tree, tree.create_under(vertex, sym), state)

    def _add_one(self, tree: DataTree, tau: str,
                 state: "_BuildState") -> "Vertex | None":
        """Graft one more ``tau`` vertex: along its root path first, and
        failing that (the path's final edge saturated — e.g. ``tau``
        occurring exactly once in that parent's model) under *any*
        existing vertex whose content model admits another ``tau``
        child, which covers recursive occurrences like ``tau*`` inside
        ``tau`` itself."""
        path = self.paths[tau]
        if len(path) > 1:
            cur: Vertex | None = tree.root
            for i, step in enumerate(path[1:], start=1):
                last = i == len(path) - 1
                if not last:
                    existing = cur.first_child_labeled(step)
                    if existing is not None:
                        cur = existing
                        continue
                cur = self._force_child(tree, cur, step, state)
                if cur is None:
                    break
            if cur is not None:
                return cur
        for parent in tree.vertices():
            v = self._force_child(tree, parent, tau, state)
            if v is not None:
                return v
        return None

    def _force_child(self, tree: DataTree, parent: Vertex, label: str,
                     state: "_BuildState") -> "Vertex | None":
        """Rebuild ``parent``'s child word so it carries one *more*
        child labeled ``label``, reusing every existing subtree."""
        existing = Counter(parent.child_labels)
        required = dict(existing)
        required[label] = required.get(label, 0) + 1
        word = word_with(self.structure.content(parent.label), required,
                         self.costs, self.allowed)
        if word is None:
            return None
        pools: dict[str, deque] = defaultdict(deque)
        texts: deque[str] = deque()
        for child in list(parent.children):
            parent.remove_child(child)
            if isinstance(child, str):
                texts.append(child)
            else:
                pools[child.label].append(child)
        new_vertex: Vertex | None = None
        for sym in word:
            if sym == ATOMIC:
                parent.append(texts.popleft() if texts else _TEXT)
            elif pools[sym]:
                parent.append(pools[sym].popleft())
            else:
                v = tree.create_under(parent, sym)
                self._expand(tree, v, state)
                if sym == label:
                    new_vertex = v
        return new_vertex


class _BuildState:
    """Mutable randomness/budget bundle threaded through one build."""

    __slots__ = ("rng", "budget")

    def __init__(self, rng: "random.Random | None", budget: int):
        self.rng = rng
        self.budget = budget
