"""Schema-specialized validator codegen.

Compiles a ``DTD^C`` all the way to Python source — per-label DFA
transitions inlined as dict literals, constraint bookkeeping specialized
to the attributes Σ actually watches, Σ-irrelevant element runs consumed
by single regex matches — ``exec``'d once per schema fingerprint per
process and cached on disk so server restarts and corpus worker fleets
compile once per machine.  Reports are byte-identical (``to_json()``)
to the batch and streaming validators; see
:mod:`repro.codegen.generate` for the determinism contract and
:mod:`repro.codegen.cache` for the integrity-checked source cache.

Select it through the unified engine API::

    validator.check("doc.xml", engine="codegen")   # or engine="auto"
"""

from repro.codegen.cache import (
    CACHE_ENV, cache_dir, cache_path, load_source, store_source,
)
from repro.codegen.engine import (
    CodegenValidator, CompiledSchema, compile_schema, load_compiled,
)
from repro.codegen.generate import (
    GENERATOR_VERSION, CompileError, generate_source,
)
from repro.codegen.runtime import RunState

__all__ = [
    "CACHE_ENV",
    "CodegenValidator",
    "CompileError",
    "CompiledSchema",
    "GENERATOR_VERSION",
    "RunState",
    "cache_dir",
    "cache_path",
    "compile_schema",
    "generate_source",
    "load_compiled",
    "load_source",
    "store_source",
]
