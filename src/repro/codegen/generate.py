"""Compile a ``DTD^C`` to Python source.

:func:`generate_source` turns a compiled
:class:`~repro.stream.plan.StreamPlan` into the text of a standalone
Python module whose ``bind(plan)`` entry point returns two scanners —
one over ``str`` buffers, one over ``bytes``/``mmap`` buffers — each a
single closure that parses, checks structure, and feeds Σ-relevant
vertices into a :class:`~repro.codegen.runtime.RunState`.

What gets specialized into the source (all of it emitted in sorted
order, so the text is a pure function of the schema fingerprint):

- **per-label DFA tables** — every content model is eagerly
  determinized (fresh :class:`~repro.regexlang.automaton.Matcher`, BFS
  over the sorted alphabet, so state numbering never depends on
  validation history) and inlined as ``{state: {symbol: next}}`` dict
  transitions plus precomputed accepting sets and sorted
  expected-symbol diagnostics;
- **watched attributes** — only the attribute names Σ actually reads
  (constraint field sites plus declared-ID attributes) are materialized
  on retained vertices; every other attribute costs one membership test
  for the undeclared/missing structural checks and is never copied;
- **Σ-irrelevant run patterns** — labels no constraint watches, with no
  declared attributes and a text-or-empty content model, are consumed
  in whole runs by one compiled regex (``<item>…</item><item>…`` …),
  advancing the parent DFA arithmetically (cycle detection) instead of
  per-event.  On the bytes scanner this is the zero-copy path: the
  buffer (usually an ``mmap``) is scanned without decoding, and only
  watched slices are ever turned into strings.

What deliberately is *not* baked into the source: the declared-attribute
iteration order (``structure.attributes`` returns a frozenset whose
order is hash-seed dependent — the missing-attribute violation order
must match the in-process batch/stream validators, so ``bind(plan)``
reads it from the live plan), and all evaluator machinery (reused from
the host package via :class:`~repro.codegen.runtime.RunState`).
"""

from __future__ import annotations

import re

from repro.constraints.evaluators import evaluator_for
from repro.errors import ReproError
from repro.regexlang.automaton import Matcher
from repro.stream.plan import StreamPlan, _field_sites

__all__ = ["CompileError", "GENERATOR_VERSION", "generate_source"]

#: bumped whenever the emitted source shape changes; part of the on-disk
#: cache key so stale entries from older generators are never reused
GENERATOR_VERSION = 1

#: eager determinization bound: content models whose DFA exceeds this
#: are rejected (callers fall back to the lazy streaming interpreter)
_STATE_CAP = 4096


class CompileError(ReproError):
    """The schema cannot be compiled by the codegen engine."""


def _require_ascii(name: str, what: str) -> None:
    try:
        name.encode("ascii")
    except UnicodeEncodeError:
        raise CompileError(
            f"{what} {name!r} is not ASCII; the codegen engine supports "
            "ASCII names only (use engine='stream')") from None


def _dfa_tables(regex, label: str):
    """Eagerly determinize one content model, deterministically.

    A fresh :class:`Matcher` is used (never the shared ``matcher_for``
    cache, whose state numbering depends on what has been validated so
    far this process) and states are explored breadth-first over the
    sorted alphabet, so the numbering — and therefore the emitted
    source — is a pure function of the regex.
    """
    m = Matcher(regex)
    alphabet = sorted(m.nfa.alphabet())
    st = 0
    while st < len(m._state_list):
        if len(m._state_list) > _STATE_CAP:
            raise CompileError(
                f"content model of {label!r} exceeds the codegen DFA "
                f"state cap ({_STATE_CAP} states); use engine='stream'")
        for sym in alphabet:
            m._successor(st, sym)
        st += 1
    n = len(m._state_list)
    trans = {s: {sym: nx for sym, nx in m._trans[s].items()
                 if nx is not None} for s in range(n)}
    acc = tuple(s for s in range(n) if m._accepting[s])
    expected = {s: sorted(m.expected_from(s)) for s in range(n)}
    return trans, acc, expected


def _watched_attributes(plan: StreamPlan) -> dict[str, list[str]]:
    """Attribute names per label that Σ can actually read: constraint
    field sites (probed exactly like the plan compiler) plus declared-ID
    attributes (``StreamIndex`` reads them for ``id_owners``)."""
    probes = [evaluator_for(c, None, plan.id_map)
              for c in plan.constraints]
    watched: dict[str, set[str]] = {}
    for ev in probes:
        for owner, f in _field_sites(ev):
            if not f.is_element:
                watched.setdefault(owner, set()).add(f.name)
    for label, id_attr in plan.id_map.items():
        watched.setdefault(label, set()).add(id_attr)
    return {label: sorted(names) for label, names in watched.items()}


def _skip_entry(label: str, plan: StreamPlan, trans, acc):
    """The run-fast-path pattern for ``label``, or None.

    Skippable means: no constraint retains vertices of this label, no
    parent captures its text, it declares no attributes, and its content
    model accepts exactly what the pattern admits — the empty word
    (``<L/>``, ``<L></L>``) and, when text is legal, one text chunk
    (``<L>text</L>``).  Elements matched by the pattern can contribute
    nothing to the report beyond a vid and one parent-DFA step, which
    the scanner applies arithmetically.
    """
    lp = plan.labels[label]
    if (label in plan.relevant or label in plan.text_fields
            or lp.declared_attrs):
        return None
    accepting = set(acc)
    if 0 not in accepting:
        return None
    e = re.escape(label)
    s_next = trans[0].get("S")
    if s_next is not None and s_next in accepting:
        unit = f"<{e}>[^<&]*</{e}>|<{e}/>"
        tokens = (f"<{label}>", f"<{label}/>")
    else:
        unit = f"<{e}/>|<{e}></{e}>"
        tokens = (f"<{label}/>", f"<{label}></{label}>")
    pattern = f"(?:{unit})(?:\\s*(?:{unit}))*\\s*"
    return pattern, tokens


def generate_source(plan: StreamPlan, fingerprint: str = "") -> str:
    """The deterministic Python source for ``plan``'s schema.

    Byte-identical output for equal schemas regardless of process,
    ``PYTHONHASHSEED``, or prior validation activity — the property the
    on-disk source cache and its integrity hash depend on.
    """
    structure = plan.structure
    _require_ascii(plan.root, "root element type")
    for label in plan.relevant:
        _require_ascii(label, "element type")
    for label in sorted(plan.labels):
        _require_ascii(label, "element type")
        for attr in plan.labels[label].declared_attrs:
            _require_ascii(attr, "attribute")
    watched = _watched_attributes(plan)
    for label, names in watched.items():
        _require_ascii(label, "element type")
        for attr in names:
            _require_ascii(attr, "attribute")

    cm_lines = ["CM = {"]
    skip_lines = ["SKIP = {"]
    for label in sorted(plan.labels):
        trans, acc, expected = _dfa_tables(structure.content(label), label)
        for row in trans.values():
            for sym in row:
                _require_ascii(sym, "content-model symbol")
        trans_src = "{" + ", ".join(
            f"{st}: " + "{" + ", ".join(
                f"{sym!r}: {nx}" for sym, nx in sorted(row.items()))
            + "}" for st, row in sorted(trans.items())) + "}"
        exp_src = "{" + ", ".join(
            f"{st}: {expected[st]!r}" for st in sorted(expected)) + "}"
        cm_lines.append(f"    {label!r}: ({trans_src}, {acc!r}, {exp_src}),")
        skip = _skip_entry(label, plan, trans, acc)
        if skip is not None:
            skip_lines.append(f"    {label!r}: ({skip[0]!r}, {skip[1]!r}),")
    cm_lines.append("}")
    skip_lines.append("}")

    watched_src = "{" + ", ".join(
        f"{label!r}: {tuple(names)!r}"
        for label, names in sorted(watched.items())) + "}"
    wants_src = "{" + ", ".join(
        f"{label!r}: {tuple(sorted(plan.labels[label].elem_fields))!r}"
        for label in sorted(plan.labels)
        if plan.labels[label].elem_fields) + "}"

    parts = [
        f'"""Generated by repro-codegen v{GENERATOR_VERSION}; '
        'do not edit.\n\n'
        'Deterministically derived from one schema; regenerate with\n'
        'repro.codegen.generate_source().\n'
        '"""\n\n'
        "import re\n\n"
        "from repro.errors import XMLSyntaxError\n"
        "from repro.stream.validator import StreamVertex\n"
        "from repro.xmlio.escape import unescape\n\n"
        f"GENERATOR_VERSION = {GENERATOR_VERSION}\n"
        f"FINGERPRINT = {fingerprint!r}\n"
        f"ROOT = {plan.root!r}\n"
        f"RELEVANT = frozenset({sorted(plan.relevant)!r})\n",
        "\n".join(cm_lines) + "\n",
        f"WATCHED = {watched_src}\n",
        f"WANTS = {wants_src}\n",
        "\n".join(skip_lines) + "\n",
        _RUNTIME,
    ]
    return "".join(parts)


# The fixed half of every generated module.  It reads the literals above
# it through ``_tables`` (which also folds in runtime plan data whose
# iteration order must match the live process — see the module
# docstring) and builds one scanner closure per buffer mode.
_RUNTIME = r'''
_EMPTY_FS = frozenset()

# rec tuple layout (one per declared label, per mode)
# 0 slabel  1 trans  2 accepting  3 expected  4 declared (mode, str) pairs
# 5 declared set  6 set-valued set  7 watched {mode: str}  8 relevant
# 9 wants  10 skip regex  11 skip count tokens  12 own symbol


def _tables(plan, as_bytes):
    if as_bytes:
        def M(s):
            return s.encode("ascii")

        def dec(s):
            return s.decode()

        def R(p):
            return re.compile(p.encode("ascii"))
    else:
        def M(s):
            return s

        def dec(s):
            return s
        R = re.compile
    labels = {}
    for slabel in CM:
        trans, acc, exp = CM[slabel]
        lp = plan.labels[slabel]
        skip = SKIP.get(slabel)
        labels[M(slabel)] = (
            slabel,
            {st: {M(sym): nx for sym, nx in row.items()}
             for st, row in trans.items()},
            frozenset(acc),
            exp,
            tuple((M(a), a) for a in lp.declared_attrs),
            frozenset(M(a) for a in lp.declared_attrs),
            frozenset(M(a) for a in lp.set_valued),
            {M(a): a for a in WATCHED.get(slabel, ())},
            slabel in RELEVANT,
            frozenset(WANTS.get(slabel, ())),
            R(skip[0]) if skip is not None else None,
            tuple(M(t) for t in skip[1]) if skip is not None else (),
            M(slabel),
        )
    return {
        "labels": labels,
        "relevant": frozenset(M(s) for s in RELEVANT),
        "dec": dec,
        "lt": M("<"), "amp": M("&"), "nl": M("\n"),
        "gt": M(">"), "sym_s": M("S"),
        "start_re": R(r"<([A-Za-z_:][\w:.\-]*)"),
        "attr_re": R(r"\s+([A-Za-z_:][\w:.\-]*)\s*=\s*(\"[^\"]*\"|'[^']*')"),
        "tagend_re": R(r"\s*(/>|>)"),
        "name_re": R(r"[A-Za-z_:][\w:.\-]*"),
        "wsgt_re": R(r"\s*>"),
        "doct_re": R(r"[\[\]>]"),
        "comment_open": M("<!--"), "comment_close": M("-->"),
        "cdata_open": M("<![CDATA["), "cdata_close": M("]]>"),
        "pi_open": M("<?"), "pi_close": M("?>"),
        "doctype_open": M("<!DOCTYPE"), "end_open": M("</"),
        "lbrack": M("["), "rbrack": M("]"),
    }


def _make_scanner(T):
    LABELS = T["labels"]
    REL = T["relevant"]
    dec = T["dec"]
    LT = T["lt"]
    AMP = T["amp"]
    NL = T["nl"]
    GT = T["gt"]
    SYM_S = T["sym_s"]
    START_RE = T["start_re"]
    ATTR_RE = T["attr_re"]
    TAGEND_RE = T["tagend_re"]
    NAME_RE = T["name_re"]
    WSGT_RE = T["wsgt_re"]
    DOCT_RE = T["doct_re"]
    COMMENT_OPEN = T["comment_open"]
    COMMENT_CLOSE = T["comment_close"]
    CDATA_OPEN = T["cdata_open"]
    CDATA_CLOSE = T["cdata_close"]
    PI_OPEN = T["pi_open"]
    PI_CLOSE = T["pi_close"]
    DOCTYPE_OPEN = T["doctype_open"]
    END_OPEN = T["end_open"]
    LBRACK = T["lbrack"]
    RBRACK = T["rbrack"]

    def scan(buf, rs):
        n = len(buf)
        pos = 0
        find = buf.find
        structural = rs.structural
        region = rs.region
        flush_region = rs.flush_region
        stack = []
        # frame layout: 0 mode label  1 str label  2 vid  3 trans
        # 4 state  5 viable  6 dead state  7 vertex  8 wants  9 texts
        # 10 rec
        pending = []
        next_vid = 0
        n_skipped = 0
        root_seen = False
        open_relevant = 0

        def line_at(p):
            # error paths only: mmap has no .count, so copy there
            try:
                return buf.count(NL, 0, p) + 1
            except (AttributeError, TypeError):
                return bytes(buf[:p]).count(b"\n") + 1

        def cook(raw, p):
            # unescape with the error line computed lazily — the happy
            # path never pays a line count
            try:
                return unescape(dec(raw), 1)
            except XMLSyntaxError:
                unescape(dec(raw), line_at(p))
                raise

        def flush():
            for chunk, cpos, cooked in pending:
                s = chunk if cooked is None else cooked
                if not stack:
                    if s.strip():
                        raise XMLSyntaxError(
                            "character data outside the root element",
                            line=line_at(cpos))
                    continue
                if s.strip():
                    top = stack[-1]
                    state = top[4]
                    if state is not None:
                        nxt = top[3][state].get(SYM_S)
                        if nxt is None:
                            top[6] = state
                            top[4] = None
                        else:
                            top[4] = nxt
                            top[5] += 1
                    if top[9] is not None:
                        top[9].append(dec(chunk) if cooked is None
                                      else cooked)
            del pending[:]

        def close(frame):
            nonlocal open_relevant
            rec = frame[10]
            if rec is not None:
                state = frame[4]
                if state is None or state not in rec[2]:
                    expected = rec[3][frame[6] if state is None else state]
                    structural.append((
                        (frame[2], 0), "content-model",
                        f"children of {frame[1]!r} do not match its "
                        f"content model (stuck after {frame[5]} "
                        f"child(ren); expected one of {expected})",
                        (frame[2],)))
            texts = frame[9]
            if texts is not None:
                psv = stack[-1][7]
                if psv is not None:
                    psv._add_elem_child(frame[1], "".join(texts))
            sv = frame[7]
            if sv is not None:
                region.append(sv)
                open_relevant -= 1
                if not open_relevant:
                    flush_region()

        while pos < n:
            i = find(LT, pos)
            if i != pos:
                end = n if i < 0 else i
                chunk = buf[pos:end]
                cooked = cook(chunk, pos) if AMP in chunk else None
                pending.append((chunk, pos, cooked))
                if i < 0:
                    pos = n
                    break
                pos = i
                continue
            m = START_RE.match(buf, pos)
            if m is not None:
                label = m.group(1)
                rec = LABELS.get(label)
                if stack and rec is not None and rec[10] is not None:
                    # a run of Σ-irrelevant leaves: consume it whole
                    sm = rec[10].match(buf, pos)
                    if sm is not None:
                        if pending:
                            flush()
                        chunk = sm.group(0)
                        cnt = 0
                        for tok in rec[11]:
                            cnt += chunk.count(tok)
                        parent = stack[-1]
                        state = parent[4]
                        if state is not None:
                            trans = parent[3]
                            sym = rec[12]
                            seen = {}
                            k = 0
                            while k < cnt:
                                at = seen.get(state)
                                if at is not None:
                                    # periodic: remaining steps all live
                                    rem = (cnt - k) % (k - at)
                                    for _ in range(rem):
                                        state = trans[state][sym]
                                    k = cnt
                                    break
                                seen[state] = k
                                nxt = trans[state].get(sym)
                                if nxt is None:
                                    parent[6] = state
                                    state = None
                                    break
                                state = nxt
                                k += 1
                            if state is None:
                                parent[4] = None
                                parent[5] += k
                            else:
                                parent[4] = state
                                parent[5] += cnt
                        next_vid += cnt
                        n_skipped += cnt
                        pos = sm.end()
                        continue
                slabel = rec[0] if rec is not None else dec(label)
                j = m.end()
                amap = {}
                while True:
                    am = ATTR_RE.match(buf, j)
                    if am is None:
                        break
                    raw = am.group(2)[1:-1]
                    amap[am.group(1)] = (
                        raw, cook(raw, pos) if AMP in raw else None)
                    j = am.end()
                tm = TAGEND_RE.match(buf, j)
                if tm is None:
                    raise XMLSyntaxError(
                        f"malformed start tag <{slabel}",
                        line=line_at(pos))
                if pending:
                    flush()
                if not root_seen:
                    root_seen = True
                    if slabel != ROOT:
                        structural.append((
                            (0, -1), "root",
                            f"root is {slabel!r}, expected {ROOT!r}",
                            (0,)))
                elif not stack:
                    raise XMLSyntaxError(
                        f"second root element {slabel!r}",
                        line=line_at(pos))
                vid = next_vid
                next_vid = vid + 1
                parent = stack[-1] if stack else None
                if parent is not None:
                    state = parent[4]
                    if state is not None:
                        nxt = parent[3][state].get(label)
                        if nxt is None:
                            parent[6] = state
                            parent[4] = None
                        else:
                            parent[4] = nxt
                            parent[5] += 1
                if rec is None:
                    structural.append((
                        (vid, 0), "element",
                        f"undeclared element type {slabel!r}", (vid,)))
                else:
                    declset = rec[5]
                    for mname in amap:
                        if mname not in declset:
                            structural.append((
                                (vid, 1), "attribute",
                                f"undeclared attribute "
                                f"{slabel}.{dec(mname)}", (vid,)))
                    # (the batch/stream single-valued multiplicity check
                    # cannot fire on parsed input: a parsed attribute
                    # always carries exactly one value)
                    for mname, sname in rec[4]:
                        if mname not in amap:
                            structural.append((
                                (vid, 1), "attribute",
                                f"missing attribute {slabel}.{sname}",
                                (vid,)))
                sv = None
                wants = _EMPTY_FS
                if rec[8] if rec is not None else label in REL:
                    if rec is None:
                        attrs = {
                            dec(nm): frozenset(
                                (dec(rw) if ck is None else ck,))
                            for nm, (rw, ck) in amap.items()}
                    else:
                        watched = rec[7]
                        setv = rec[6]
                        attrs = {}
                        for nm, (rw, ck) in amap.items():
                            sname = watched.get(nm)
                            if sname is not None:
                                val = dec(rw) if ck is None else ck
                                attrs[sname] = (
                                    frozenset(val.split())
                                    if nm in setv
                                    else frozenset((val,)))
                        wants = rec[9]
                    sv = StreamVertex(vid, slabel, attrs)
                    open_relevant += 1
                texts = ([] if parent is not None and parent[8]
                         and slabel in parent[8] else None)
                frame = [label, slabel, vid,
                         rec[1] if rec is not None else None,
                         0 if rec is not None else None,
                         0, -1, sv, wants, texts, rec]
                if tm.group(1) == GT:
                    stack.append(frame)
                else:
                    close(frame)
                pos = tm.end()
                continue
            if buf[pos:pos + 4] == COMMENT_OPEN:
                e = find(COMMENT_CLOSE, pos + 4)
                if e < 0:
                    raise XMLSyntaxError("unterminated comment",
                                         line=line_at(pos))
                pos = e + 3
                continue
            if buf[pos:pos + 9] == CDATA_OPEN:
                e = find(CDATA_CLOSE, pos + 9)
                if e < 0:
                    raise XMLSyntaxError("unterminated CDATA section",
                                         line=line_at(pos))
                # CDATA is a text chunk, never unescaped
                pending.append((buf[pos + 9:e], pos, None))
                pos = e + 3
                continue
            if buf[pos:pos + 2] == PI_OPEN:
                e = find(PI_CLOSE, pos + 2)
                if e < 0:
                    raise XMLSyntaxError(
                        "unterminated processing instruction",
                        line=line_at(pos))
                pos = e + 2
                continue
            if buf[pos:pos + 9] == DOCTYPE_OPEN:
                depth = 0
                in_bracket = False
                j = pos
                while True:
                    dm = DOCT_RE.search(buf, j)
                    if dm is None:
                        raise XMLSyntaxError(
                            "unterminated DOCTYPE declaration",
                            line=line_at(pos))
                    ch = dm.group(0)
                    j = dm.end()
                    if ch == LBRACK:
                        in_bracket = True
                        depth += 1
                    elif ch == RBRACK:
                        depth -= 1
                        if depth == 0:
                            in_bracket = False
                    elif not in_bracket:
                        pos = j
                        break
                continue
            if buf[pos:pos + 2] == END_OPEN:
                em = NAME_RE.match(buf, pos + 2)
                if em is None:
                    raise XMLSyntaxError("malformed end tag",
                                         line=line_at(pos))
                elabel = em.group(0)
                wm = WSGT_RE.match(buf, em.end())
                if wm is None:
                    raise XMLSyntaxError(
                        f"malformed end tag </{dec(elabel)}",
                        line=line_at(pos))
                if pending:
                    flush()
                if not stack:
                    raise XMLSyntaxError(
                        f"unexpected end tag </{dec(elabel)}>",
                        line=line_at(pos))
                top = stack.pop()
                if top[0] != elabel:
                    raise XMLSyntaxError(
                        f"end tag </{dec(elabel)}> does not match open "
                        f"element <{top[1]}>", line=line_at(pos))
                close(top)
                pos = wm.end()
                continue
            raise XMLSyntaxError("malformed start tag", line=line_at(pos))

        if pending:
            flush()
        if not root_seen:
            raise XMLSyntaxError("document has no root element")
        if stack:
            raise XMLSyntaxError(
                f"unclosed element <{stack[-1][1]}> at end of input")
        rs.next_vid = next_vid
        rs.n_skipped = n_skipped
        return rs.finish()

    return scan


def bind(plan):
    """Build the (str scanner, bytes scanner) pair over the live plan."""
    return (_make_scanner(_tables(plan, False)),
            _make_scanner(_tables(plan, True)))
'''
