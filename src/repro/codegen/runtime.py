"""Per-document constraint state shared by all generated scanners.

A generated module (see :mod:`repro.codegen.generate`) inlines only the
*schema-specialized* half of validation: DFA transition tables, watched
attribute sets, and the Σ-irrelevant run fast path.  Everything whose
byte-exact behaviour is owned by the existing machinery — evaluator
dispatch, the pre-order region buffer, deferred ``full()`` passes, and
report assembly — lives here, reusing the same
:class:`~repro.stream.validator.StreamIndex` /
:func:`~repro.constraints.evaluators.evaluator_for` code paths the
streaming interpreter runs, so the :class:`ValidationReport` stays
byte-identical (``to_json()``) across batch, stream and codegen engines.
"""

from __future__ import annotations

from operator import attrgetter, itemgetter

from repro.constraints.evaluators import IDConstraintEvaluator, evaluator_for
from repro.dtd.validate import ValidationReport
from repro.obs import NULL_OBS
from repro.stream.validator import StreamIndex


class RunState:
    """Mutable constraint-side state of one generated-scanner pass.

    The scanner owns parsing, structural checks and vertex construction;
    it appends closed Σ-relevant vertices to :attr:`region`, calls
    :meth:`flush_region` whenever no relevant element remains open, and
    finishes with :meth:`finish`.  The flush/finish logic mirrors
    ``repro.stream.validator._Run`` exactly — same vid ordering, same
    evaluator ``add()`` sequence, same deferred ``full()`` set — which
    is what makes the reports byte-identical.
    """

    __slots__ = ("plan", "obs", "structural", "region", "index",
                 "evaluators", "dispatch", "id_listeners", "next_vid",
                 "n_skipped")

    def __init__(self, plan, obs=None):
        obs = obs or NULL_OBS
        self.plan = plan
        self.obs = obs
        #: ((vid, rank), code, message, vids) — the same stable-sort keys
        #: the streaming validator uses to recover batch sweep order
        self.structural: list[tuple] = []
        self.index = StreamIndex(plan.id_map)
        self.evaluators = [evaluator_for(c, self.index, plan.id_map,
                                         obs=obs if obs.enabled else None)
                           for c in plan.constraints]
        self.dispatch = {
            label: tuple(self.evaluators[i] for i in lp.evaluators)
            for label, lp in plan.labels.items() if lp.evaluators}
        self.id_listeners = tuple(
            ev for i, ev in enumerate(self.evaluators)
            if isinstance(ev, IDConstraintEvaluator)
            and i not in plan.deferred)
        self.region: list = []
        self.next_vid = 0
        #: elements admitted through the Σ-irrelevant run fast path
        #: (never individually materialized)
        self.n_skipped = 0

    def flush_region(self) -> None:
        """Feed buffered closed vertices to the evaluators in vid order
        (drained only while no Σ-relevant element is open, so the
        concatenation of flushes is globally vid-sorted)."""
        region = self.region
        if len(region) > 1:
            region.sort(key=attrgetter("vid"))
        index = self.index
        dispatch = self.dispatch
        id_listeners = self.id_listeners
        for v in region:
            gained = index.index_vertex(v)
            interested = dispatch.get(v.label)
            if interested is not None:
                for ev in interested:
                    ev.add(v)
            if gained and id_listeners:
                for ev in id_listeners:
                    ev.id_values_changed(gained)
        region.clear()

    def finish(self) -> ValidationReport:
        """Assemble the report: structural violations in batch sweep
        order, then every evaluator's emit (deferred ones run their
        end-of-document ``full()`` first)."""
        obs = self.obs
        report = ValidationReport()
        self.structural.sort(key=itemgetter(0))
        for _key, code, message, vids in self.structural:
            report.add(code, message, vertices=vids)
        deferred = self.plan.deferred
        for i, ev in enumerate(self.evaluators):
            if obs.enabled:
                with obs.span("codegen.emit",
                              constraint=str(ev.constraint)):
                    if i in deferred:
                        ev.full()
                    ev.emit(report)
            else:
                if i in deferred:
                    ev.full()
                ev.emit(report)
        if obs.enabled:
            obs.counter("codegen_elements",
                        help="element vertices seen by the codegen "
                        "engine").add(self.next_vid)
            obs.counter("codegen_skipped_elements",
                        help="elements admitted through the codegen "
                        "sigma-irrelevant run fast path").add(self.n_skipped)
            for label, members in self.index._ext.items():
                obs.counter("codegen_dispatch_vertices", {"label": label},
                            help="closed vertices dispatched to "
                            "constraint evaluators by the codegen "
                            "engine, per label").add(len(members))
        return report
