"""Execute generated validators: compile, cache, and run documents.

:func:`compile_schema` is the one producer of
:class:`CompiledSchema` objects: source from the on-disk cache (or
freshly generated and stored), ``exec``'d once per fingerprint per
process, then bound to the live plan.  :class:`CodegenValidator` is the
document-facing wrapper with the same ``validate``/``validate_text``/
``validate_path`` surface as
:class:`~repro.stream.validator.StreamValidator`, plus the zero-copy
``validate_bytes``/``mmap`` file path: pure-ASCII input (checked with
one C-level scan) is validated directly over the byte buffer without
decoding; anything else falls back to a full UTF-8 decode so reports —
including error messages and line numbers — stay byte-identical to the
streaming interpreter.
"""

from __future__ import annotations

import mmap
import os
import re
import threading

from repro.codegen import cache as _disk
from repro.codegen.generate import CompileError, generate_source
from repro.codegen.runtime import RunState
from repro.obs import NULL_OBS

__all__ = ["CodegenValidator", "CompiledSchema", "compile_schema",
           "load_compiled"]

#: any byte outside ASCII forces the decoded-str scanner (regex \w and
#: str.strip() Unicode semantics, and UnicodeDecodeError parity)
_NON_ASCII_RE = re.compile(rb"[\x80-\xff]")

#: fingerprint -> exec'd module namespace (one exec per process)
_MODULES: dict[str, dict] = {}
_MODULES_LOCK = threading.Lock()


class CompiledSchema:
    """One schema's generated validator, bound to its live plan."""

    __slots__ = ("fingerprint", "source", "plan", "scan_str", "scan_bytes")

    def __init__(self, fingerprint: str, source: str, plan,
                 scan_str, scan_bytes):
        self.fingerprint = fingerprint
        #: the generated module text (what the on-disk cache stores)
        self.source = source
        self.plan = plan
        self.scan_str = scan_str
        self.scan_bytes = scan_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<CompiledSchema {self.fingerprint[:12]} "
                f"{len(self.source)} chars>")


def _namespace(fingerprint: str, source: str) -> dict:
    ns = _MODULES.get(fingerprint)
    if ns is None:
        code = compile(source, f"<repro-codegen {fingerprint[:12]}>",
                       "exec")
        ns = {}
        exec(code, ns)
        with _MODULES_LOCK:
            _MODULES.setdefault(fingerprint, ns)
            ns = _MODULES[fingerprint]
    return ns


def compile_schema(plan, fingerprint: str, obs=None) -> CompiledSchema:
    """Source for ``fingerprint`` (disk cache or fresh), exec'd and
    bound to ``plan``.

    Raises :class:`CompileError` when the schema is outside the codegen
    subset (non-ASCII names, content-model DFA blowup) — callers fall
    back to the streaming interpreter.
    """
    obs = obs or NULL_OBS
    if not obs.enabled:
        return _compile(plan, fingerprint, obs)
    with obs.span("codegen.compile", fingerprint=fingerprint[:12]):
        return _compile(plan, fingerprint, obs)


def _compile(plan, fingerprint: str, obs) -> CompiledSchema:
    source = _disk.load_source(fingerprint)
    origin = "disk-cache"
    if source is None:
        source = generate_source(plan, fingerprint)
        _disk.store_source(fingerprint, source)
        origin = "generated"
    compiled = load_compiled(fingerprint, source, plan)
    if obs.enabled:
        obs.counter("codegen_compilations", {"origin": origin},
                    help="codegen engine compilations, by source origin "
                    "(generated vs the on-disk source cache)").add(1)
    return compiled


def load_compiled(fingerprint: str, source: str, plan) -> CompiledSchema:
    """Bind already-obtained source to a plan (corpus workers receive
    the text via ``initargs`` and skip cache and generator entirely)."""
    ns = _namespace(fingerprint, source)
    scan_str, scan_bytes = ns["bind"](plan)
    return CompiledSchema(fingerprint, source, plan, scan_str, scan_bytes)


class CodegenValidator:
    """Validate documents through one compiled schema, one pass each.

    ``schema`` is a :class:`~repro.server.registry.SchemaHandle`, a
    ``DTDC``, or a prebound :class:`CompiledSchema`.  Construction
    triggers (cached) compilation and raises :class:`CompileError` for
    schemas outside the codegen subset.
    """

    def __init__(self, schema, obs=None):
        self.obs = obs or NULL_OBS
        if isinstance(schema, CompiledSchema):
            self.compiled = schema
        else:
            from repro.server.registry import as_handle

            self.compiled = as_handle(schema).codegen

    def validate(self, source):
        """Validate a path (:class:`os.PathLike`) or a string that is
        either XML text (starts with ``<``) or a filesystem path."""
        if isinstance(source, os.PathLike):
            return self.validate_path(os.fspath(source))
        if source.lstrip().startswith("<"):
            return self.validate_text(source)
        return self.validate_path(source)

    def _finish_span(self, span, rs, report):
        span.set(elements=rs.next_vid, skipped=rs.n_skipped,
                 violations=len(report))

    def validate_text(self, text: str):
        obs = self.obs
        rs = RunState(self.compiled.plan, obs)
        if not obs.enabled:
            return self.compiled.scan_str(text, rs)
        with obs.span("codegen.validate", chars=len(text)) as span:
            report = self.compiled.scan_str(text, rs)
            self._finish_span(span, rs, report)
        return report

    def validate_bytes(self, data):
        """Validate raw document bytes; pure-ASCII input never decodes."""
        if _NON_ASCII_RE.search(data) is not None:
            return self.validate_text(bytes(data).decode("utf-8"))
        obs = self.obs
        rs = RunState(self.compiled.plan, obs)
        if not obs.enabled:
            return self.compiled.scan_bytes(data, rs)
        with obs.span("codegen.validate", chars=len(data)) as span:
            report = self.compiled.scan_bytes(data, rs)
            self._finish_span(span, rs, report)
        return report

    def validate_path(self, path: str):
        """Validate a file via ``mmap`` — the zero-copy path: the kernel
        pages the document in, the scanner skips Σ-irrelevant runs
        without decoding, and only watched slices become strings."""
        with open(path, "rb") as fh:
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                # empty files and exotic filesystems cannot be mapped
                return self.validate_bytes(fh.read())
            with mm:
                if _NON_ASCII_RE.search(mm) is not None:
                    return self.validate_text(mm[:].decode("utf-8"))
                obs = self.obs
                rs = RunState(self.compiled.plan, obs)
                if not obs.enabled:
                    return self.compiled.scan_bytes(mm, rs)
                with obs.span("codegen.validate", chars=len(mm)) as span:
                    report = self.compiled.scan_bytes(mm, rs)
                    self._finish_span(span, rs, report)
                return report
