"""On-disk cache for generated validator source.

Generated source is a pure function of the schema fingerprint (see
:func:`repro.codegen.generate.generate_source`), so it is cached on disk
keyed by fingerprint + generator version: a server restart or a corpus
worker fleet compiles each schema once per *machine*, not per process.

Entries are self-verifying: the first line records a SHA-256 over the
body, checked on every read.  A corrupted or truncated entry — or one
whose header does not parse — is treated as a miss and regenerated; the
stored text is never ``exec``'d without the hash matching.  (The hash
is an integrity check against torn writes and bit rot, not an
authentication boundary: the cache directory has the same trust level
as the installed package source.)

The location honours ``$REPRO_CODEGEN_CACHE`` (a directory, or one of
``0``/``off``/``none`` to disable caching entirely) and falls back to
``$XDG_CACHE_HOME/repro/codegen`` or ``~/.cache/repro/codegen``.  All
I/O failures degrade to cache misses — a read-only home directory must
never break validation.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from typing import Optional

from repro.codegen.generate import GENERATOR_VERSION

__all__ = ["CACHE_ENV", "cache_dir", "cache_path", "load_source",
           "store_source"]

CACHE_ENV = "REPRO_CODEGEN_CACHE"

_HEADER_RE = re.compile(r"# repro-codegen v(\d+) sha256=([0-9a-f]{64})\n")
_SAFE_RE = re.compile(r"[^A-Za-z0-9._-]")


def cache_dir() -> Optional[str]:
    """The cache directory, or None when caching is disabled."""
    override = os.environ.get(CACHE_ENV)
    if override is not None:
        if override.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "codegen")


def cache_path(fingerprint: str) -> Optional[str]:
    """Where ``fingerprint``'s source lives (None when disabled)."""
    d = cache_dir()
    if d is None:
        return None
    name = _SAFE_RE.sub("_", fingerprint)
    return os.path.join(d, f"{name}.g{GENERATOR_VERSION}.py")


def load_source(fingerprint: str) -> Optional[str]:
    """The cached source for ``fingerprint``, or None on miss.

    Missing, disabled, unreadable, badly-versioned and hash-mismatched
    entries all report a miss — the caller regenerates and (re)stores.
    """
    path = cache_path(fingerprint)
    if path is None:
        return None
    try:
        with open(path, encoding="utf-8") as fh:
            blob = fh.read()
    except (OSError, UnicodeDecodeError):
        return None
    nl = blob.find("\n")
    if nl < 0:
        return None
    m = _HEADER_RE.fullmatch(blob[:nl + 1])
    if m is None or int(m.group(1)) != GENERATOR_VERSION:
        return None
    body = blob[nl + 1:]
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != m.group(2):
        return None
    return body


def store_source(fingerprint: str, source: str) -> bool:
    """Persist ``source`` under ``fingerprint`` (atomic write).

    Returns False — without raising — when caching is disabled or the
    filesystem refuses.
    """
    path = cache_path(fingerprint)
    if path is None:
        return False
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    blob = f"# repro-codegen v{GENERATOR_VERSION} sha256={digest}\n{source}"
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True
