"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The sub-hierarchy mirrors the
package layout: parsing problems, schema (DTD) problems, constraint
well-formedness problems, validation failures, and implication-engine
problems each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Parsing (XML text, DTD text, constraint syntax, path syntax)
# ---------------------------------------------------------------------------


class ParseError(ReproError):
    """A textual input could not be parsed.

    Attributes
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based position of the offending input, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        if line is not None:
            where = f" at line {line}"
            if column is not None:
                where += f", column {column}"
            message = message + where
        super().__init__(message)


class XMLSyntaxError(ParseError):
    """The XML document text is not well-formed."""


class DTDSyntaxError(ParseError):
    """The DTD text (``<!ELEMENT ...>`` / ``<!ATTLIST ...>``) is malformed."""


class ConstraintSyntaxError(ParseError):
    """A textual constraint (e.g. ``entry.isbn -> entry``) is malformed."""


class RegexSyntaxError(ParseError):
    """A content-model regular expression could not be parsed."""


class PathSyntaxError(ParseError):
    """A navigation path expression could not be parsed."""


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


class DataModelError(ReproError):
    """A data tree violates a structural invariant of Definition 2.1."""


class DuplicateVertexError(DataModelError):
    """A vertex was attached to more than one parent."""


class UnknownVertexError(DataModelError):
    """An operation referred to a vertex that is not part of the tree."""


# ---------------------------------------------------------------------------
# Schemas (DTD structures) and constraint well-formedness
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A DTD structure (Definition 2.2) is internally inconsistent."""


class ConstraintError(ReproError):
    """A constraint is not well-formed with respect to a DTD structure.

    Examples: a key over a set-valued attribute, a foreign key whose
    target is not a key, an ``L_id`` foreign key whose attribute is not
    of IDREF kind.
    """


class PrimaryKeyRestrictionError(ConstraintError):
    """A constraint set violates the primary-key restriction of §3.2/§3.3."""


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


class ValidationError(ReproError):
    """A document failed validation and the caller asked for an exception.

    Most validation APIs return a report object instead of raising; this
    is used by the strict entry points (and the CLI with ``--strict``).
    """

    def __init__(self, report):
        self.report = report
        super().__init__(str(report))


# ---------------------------------------------------------------------------
# Implication engines
# ---------------------------------------------------------------------------


class ImplicationError(ReproError):
    """An implication query was malformed for the chosen engine."""


class LanguageMismatchError(ImplicationError):
    """A constraint of the wrong language was passed to a decider."""


class UndecidableProblemError(ImplicationError):
    """The exact question posed is undecidable (Theorem 3.6).

    Raised by the general-``L`` engine when the caller requests an exact
    answer without allowing the bounded (sound-but-incomplete) modes.
    """
