"""repro: a reproduction of "Integrity Constraints for XML"
(Wenfei Fan and Jerome Simeon, PODS 2000).

The package implements the paper end-to-end:

- the XML data model and DTDs with constraints (§2):
  :mod:`repro.datamodel`, :mod:`repro.xmlio`, :mod:`repro.regexlang`,
  :mod:`repro.dtd`, :mod:`repro.constraints`;
- implication and finite implication of the basic constraint languages
  ``L``, ``L_u``, ``L_id`` (§3): :mod:`repro.implication`;
- path constraints and their implication (§4): :mod:`repro.paths`;
- the relational and object-database substrates the paper draws on,
  with semantics-preserving exports to XML: :mod:`repro.relational`,
  :mod:`repro.oodb`;
- the FO2 expressiveness argument (§1, Figure 1): :mod:`repro.fo2`;
- the paper's running examples and seeded workload generators:
  :mod:`repro.workloads`;
- static analysis of ``DTD^C`` schemas (the ``repro-xic lint``
  engine): :mod:`repro.analysis`.

Quickstart::

    from repro import Validator, book_dtdc, book_document
    validator = Validator(book_dtdc())
    assert validator.validate(book_document()).ok

    session = validator.session(book_document())   # incremental
    assert session.revalidate().ok

    from repro import LuEngine, parse_constraint
    sigma = [parse_constraint(s) for s in (
        "tau.a -> tau", "tau.b -> tau", "tau.a sub tau.b")]
    engine = LuEngine(sigma)
    phi = parse_constraint("tau.b sub tau.a")
    assert not engine.implies(phi)          # Cor 3.3: not implied ...
    assert engine.finitely_implies(phi)     # ... but finitely implied.
"""

from repro.analysis import (
    AnalysisReport, Diagnostic, LintConfig, Severity, analyze,
)
from repro.constraints import (
    Constraint, Field, ForeignKey, IDConstraint, IDForeignKey, IDInverse,
    IDSetValuedForeignKey, Inverse, Key, Language, SetValuedForeignKey,
    UnaryForeignKey, UnaryKey, attr, check, check_constraint, elem,
    parse_constraint, parse_constraints, well_formed,
)
from repro.datamodel import DataTree, TreeBuilder, Vertex
from repro.dtd import DTDC, DTDStructure, ValidationReport, validate
from repro.errors import ReproError
from repro.implication import (
    Derivation, ImplicationResult, LGeneralEngine, LidEngine,
    LPrimaryEngine, LuEngine, LuPrimaryEngine,
)
from repro.paths import (
    Path, PathFunctional, PathImplicationEngine, PathInclusion,
    PathInverse, parse_path, type_of,
)
from repro.incremental import DocumentSession
from repro.obs import NULL_OBS, Observability
from repro.validator import Validator
from repro.workloads import book_document, book_dtdc
from repro.xmlio import parse_document, parse_dtd, parse_dtdc, serialize

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport", "Diagnostic", "LintConfig", "Severity", "analyze",
    "Constraint", "Field", "ForeignKey", "IDConstraint", "IDForeignKey",
    "IDInverse", "IDSetValuedForeignKey", "Inverse", "Key", "Language",
    "SetValuedForeignKey", "UnaryForeignKey", "UnaryKey", "attr", "check",
    "check_constraint", "elem", "parse_constraint", "parse_constraints",
    "well_formed",
    "DataTree", "TreeBuilder", "Vertex",
    "DTDC", "DTDStructure", "ValidationReport", "validate",
    "ReproError",
    "Derivation", "ImplicationResult", "LGeneralEngine", "LidEngine",
    "LPrimaryEngine", "LuEngine", "LuPrimaryEngine",
    "Path", "PathFunctional", "PathImplicationEngine", "PathInclusion",
    "PathInverse", "parse_path", "type_of",
    "DocumentSession", "NULL_OBS", "Observability", "Validator",
    "book_document", "book_dtdc",
    "parse_document", "parse_dtd", "parse_dtdc", "serialize",
    "__version__",
]
