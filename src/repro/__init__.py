"""repro: a reproduction of "Integrity Constraints for XML"
(Wenfei Fan and Jerome Simeon, PODS 2000).

The package implements the paper end-to-end:

- the XML data model and DTDs with constraints (§2):
  :mod:`repro.datamodel`, :mod:`repro.xmlio`, :mod:`repro.regexlang`,
  :mod:`repro.dtd`, :mod:`repro.constraints`;
- implication and finite implication of the basic constraint languages
  ``L``, ``L_u``, ``L_id`` (§3): :mod:`repro.implication`;
- path constraints and their implication (§4): :mod:`repro.paths`;
- the relational and object-database substrates the paper draws on,
  with semantics-preserving exports to XML: :mod:`repro.relational`,
  :mod:`repro.oodb`;
- the FO2 expressiveness argument (§1, Figure 1): :mod:`repro.fo2`;
- the paper's running examples and seeded workload generators:
  :mod:`repro.workloads`;
- static analysis of ``DTD^C`` schemas (the ``repro-xic lint``
  engine): :mod:`repro.analysis`;
- whole-schema satisfiability with witness-document synthesis (the
  ``repro-xic synth`` engine): :mod:`repro.synthesis`;
- pluggable validation backends behind the unified
  ``Validator.check(doc, engine=...)`` API, including the
  schema-specialized codegen engine: :mod:`repro.engines`,
  :mod:`repro.codegen`.

Quickstart::

    from repro import Validator, book_dtdc, book_document
    validator = Validator(book_dtdc())
    assert validator.validate(book_document()).ok

    registry = SchemaRegistry()              # the long-lived pivot:
    registry.load("book", "book.dtdc")       # compile once, serve hot,
    registry.get("book").validator()         # hot-swap via reload()

    session = validator.session(book_document())   # incremental
    assert session.revalidate().ok

    from repro import LuEngine, parse_constraint
    sigma = [parse_constraint(s) for s in (
        "tau.a -> tau", "tau.b -> tau", "tau.a sub tau.b")]
    engine = LuEngine(sigma)
    phi = parse_constraint("tau.b sub tau.a")
    assert not engine.implies(phi)          # Cor 3.3: not implied ...
    assert engine.finitely_implies(phi)     # ... but finitely implied.
"""

import warnings as _warnings

from repro.analysis import (
    AnalysisReport, Diagnostic, LintConfig, Severity, analyze,
)
from repro.constraints import (
    Constraint, Field, ForeignKey, IDConstraint, IDForeignKey, IDInverse,
    IDSetValuedForeignKey, Inverse, Key, Language, SetValuedForeignKey,
    UnaryForeignKey, UnaryKey, attr, elem,
    parse_constraint, parse_constraints, well_formed,
)
from repro import engines
from repro.corpus import CorpusReport, CorpusValidator, ResultCache
from repro.datamodel import DataTree, TreeBuilder, Vertex
from repro.dtd import DTDC, DTDStructure, ValidationReport
from repro.errors import ReproError
from repro.implication import (
    Derivation, ImplicationResult, LGeneralEngine, LidEngine,
    LPrimaryEngine, LuEngine, LuPrimaryEngine,
)
from repro.paths import (
    Path, PathFunctional, PathImplicationEngine, PathInclusion,
    PathInverse, parse_path, type_of,
)
from repro.incremental import DocumentSession
from repro.obs import (
    NULL_OBS, EventLog, Observability, TraceContext,
)
from repro.server import (
    SchemaHandle, SchemaRegistry, ValidationServer,
)
from repro.shard import (
    Locality, ShardReport, ShardedCorpusValidator, WatchSession,
)
from repro.synthesis import (
    SatReport, UnsatCore, Verdict, check_satisfiability,
    synthesize_witness,
)
from repro.validator import Validator
from repro.workloads import book_document, book_dtdc
from repro.xmlio import parse_document, parse_dtd, parse_dtdc, serialize

__version__ = "1.5.0"

__all__ = [
    "AnalysisReport", "Diagnostic", "LintConfig", "Severity", "analyze",
    "Constraint", "Field", "ForeignKey", "IDConstraint", "IDForeignKey",
    "IDInverse", "IDSetValuedForeignKey", "Inverse", "Key", "Language",
    "SetValuedForeignKey", "UnaryForeignKey", "UnaryKey", "attr", "check",
    "check_constraint", "elem", "parse_constraint", "parse_constraints",
    "well_formed",
    "CorpusReport", "CorpusValidator", "ResultCache",
    "DataTree", "TreeBuilder", "Vertex",
    "DTDC", "DTDStructure", "ValidationReport", "validate",
    "ReproError",
    "Derivation", "ImplicationResult", "LGeneralEngine", "LidEngine",
    "LPrimaryEngine", "LuEngine", "LuPrimaryEngine",
    "Path", "PathFunctional", "PathImplicationEngine", "PathInclusion",
    "PathInverse", "parse_path", "type_of",
    "DocumentSession", "EventLog", "NULL_OBS", "Observability",
    "TraceContext", "Validator", "engines",
    "SchemaHandle", "SchemaRegistry", "ValidationServer",
    "Locality", "ShardReport", "ShardedCorpusValidator", "WatchSession",
    "SatReport", "UnsatCore", "Verdict", "check_satisfiability",
    "synthesize_witness",
    "book_document", "book_dtdc",
    "parse_document", "parse_dtd", "parse_dtdc", "serialize",
    "__version__",
]

#: Legacy top-level entry points, kept importable through the module
#: ``__getattr__`` below.  Each maps to its lazy import and the
#: Validator-facade replacement named in the DeprecationWarning; the
#: removal version makes the schedule part of the contract.
_DEPRECATED = {
    "validate": ("repro.dtd", "validate",
                 "Validator(dtd).validate(doc)"),
    "check": ("repro.constraints", "check",
              "Validator(dtd).check(doc)"),
    "check_constraint": ("repro.constraints", "check_constraint",
                         "Validator(dtd).check(doc, [phi])"),
}

#: The release that will drop the deprecated entry points above.
_REMOVAL_VERSION = "2.0"


def __getattr__(name: str):
    """PEP 562 hook: serve the deprecated entry points with a warning.

    The names stay in ``__all__`` (they are still public, just
    discouraged), but they are no longer imported eagerly, so touching
    them — by attribute access or ``from repro import validate`` —
    funnels through here exactly once per access site.
    """
    if name in _DEPRECATED:
        module, attr_name, replacement = _DEPRECATED[name]
        _warnings.warn(
            f"repro.{name} is deprecated and will be removed in repro "
            f"{_REMOVAL_VERSION}; use repro.{replacement} — or bind the "
            "schema once via repro.SchemaRegistry and use "
            "Validator.from_registry — instead (see the migration "
            "table in README.md)",
            DeprecationWarning, stacklevel=2)
        import importlib

        return getattr(importlib.import_module(module), attr_name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
