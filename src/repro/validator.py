"""The unified validation facade.

Historically the package grew three differently-shaped entry points:
``validate(doc, dtd)`` (argument order document-first),
``check(tree, constraints, structure=None)`` (constraint-set-first
concerns), and ``analyze(dtd, config)`` (schema-only).  The
:class:`Validator` facade normalizes them around the one object they all
share — the ``DTD^C`` — so a schema is configured once and every
question about it reads the same way::

    from repro import Validator, book_dtdc, book_document

    validator = Validator(book_dtdc())
    validator.validate(doc)          # Definition 2.4: structure + G |= Sigma
    validator.check(doc)             # G |= Sigma only
    validator.check(doc, sigma)      # ... against an explicit Sigma
    validator.analyze()              # static schema analysis (lint)
    validator.session(doc)           # incremental revalidation session
    validator.check_stream("doc.xml")    # single-pass, O(depth) memory
    validator.check_corpus(docs, jobs=8, cache="~/.cache/repro")
                                     # parallel corpus validation

Since the :class:`~repro.server.registry.SchemaRegistry` became the
public-API pivot, the facade follows the uniform
``schema: DTDC | SchemaHandle`` contract: it wraps a bare ``DTDC`` in a
process-wide memoized handle (so the compiled
:class:`~repro.stream.StreamPlan` and schema fingerprint are built once
per schema per process, shared with corpus and server call sites), or
binds directly to a registry entry::

    registry = repro.SchemaRegistry()
    registry.load("book", "book.dtdc", root="book")
    validator = repro.Validator.from_registry(registry, "book")
    validator.check_stream("doc.xml")    # follows hot reloads

A registry-bound validator re-resolves its handle per call, so a
``registry.reload`` is picked up by the *next* operation while any
operation already running finishes on the handle it resolved at entry.

The legacy functions remain as thin delegating shims (see their
docstrings for the mapping); new code should prefer the facade.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Optional

from repro.constraints.base import Constraint
from repro.constraints.checker import check as _check
from repro.constraints.violations import ViolationReport
from repro.datamodel.tree import DataTree
from repro.dtd.dtdc import DTDC
from repro.dtd.validate import (
    ValidationReport, validate as _validate, validate_strict as _strict,
)
from repro.incremental.session import DocumentSession
from repro.server.registry import SchemaHandle, SchemaRegistry, as_handle

if TYPE_CHECKING:
    from repro.analysis import AnalysisReport, LintConfig
    from repro.corpus import CorpusReport


class Validator:
    """All validation services of one ``DTD^C``, behind one object.

    ``schema`` is a :class:`DTDC` or a
    :class:`~repro.server.registry.SchemaHandle`; construction is cheap
    and per-call costs match the underlying functions (each documented
    on its method).  Use :meth:`from_registry` for a validator that
    names a registry entry and follows hot reloads.
    """

    def __init__(self, schema: "DTDC | SchemaHandle", obs=None):
        try:
            self._handle = as_handle(schema)
        except TypeError:
            raise TypeError(
                f"Validator needs a DTDC or SchemaHandle, got "
                f"{type(schema)!r}") from None
        #: optional :class:`repro.obs.Observability` handle threaded
        #: into every method; None/falsy means the no-op path
        self.obs = obs
        self._registry: Optional[SchemaRegistry] = None
        self._schema_name: Optional[str] = None

    @classmethod
    def from_registry(cls, registry: SchemaRegistry, name: str,
                      obs=None) -> "Validator":
        """A validator bound to ``registry``'s entry for ``name``.

        The handle is re-resolved on every operation, so hot reloads
        take effect between calls with zero downtime: a running call
        keeps the handle it resolved at entry.
        """
        validator = cls(registry.get(name), obs=obs)
        validator._registry = registry
        validator._schema_name = name
        return validator

    # -- the uniform schema accessors ------------------------------------------

    @property
    def registry(self) -> Optional[SchemaRegistry]:
        """The owning registry (None for a standalone validator)."""
        return self._registry

    @property
    def schema_name(self) -> Optional[str]:
        """The registry name this validator follows, if any."""
        return self._schema_name

    @property
    def handle(self) -> SchemaHandle:
        """The current compiled-schema handle (re-resolved through the
        registry when bound to one)."""
        if self._registry is not None:
            return self._registry.get(self._schema_name)
        return self._handle

    @property
    def dtd(self) -> DTDC:
        """The current schema (follows registry reloads)."""
        return self.handle.dtd

    @property
    def _stream_plan(self):
        """Backward-compatible view of the compiled plan (None until
        the first streaming call compiled it)."""
        handle = self.handle
        return handle._plan

    # -- Definition 2.4 --------------------------------------------------------

    def validate(self, doc: DataTree) -> ValidationReport:
        """Full validity of ``doc``: structure plus ``G ⊨ Σ``.

        Equivalent to the legacy ``repro.validate(doc, self.dtd)``.
        """
        return _validate(doc, self.dtd, obs=self.obs)

    def validate_strict(self, doc: DataTree) -> None:
        """Like :meth:`validate` but raises
        :class:`~repro.errors.ValidationError` on any violation."""
        _strict(doc, self.dtd, obs=self.obs)

    def check(self, doc, sigma: Iterable[Constraint] | None = None, *,
              engine: "str | None" = None):
        """Constraint checking (legacy form) or full engine-selected
        validation.

        With ``engine=None`` (the historical signature) this is
        ``G ⊨ Σ`` only — no structural pass: ``doc`` is a parsed
        :class:`DataTree`, ``sigma`` defaults to the schema's own
        constraint set, and the result is a :class:`ViolationReport`
        (equivalent to the legacy
        ``repro.check(doc, sigma, self.dtd.structure)``).

        With ``engine=`` set, ``doc`` is a filesystem path or XML text
        (text is recognized by a leading ``<``; ``engine="batch"`` also
        accepts a :class:`DataTree`) and the full Definition 2.4
        validity is computed by the named backend — ``"batch"``,
        ``"stream"``, ``"codegen"``, ``"auto"``, or any engine
        registered through :func:`repro.engines.register` — returning a
        :class:`ValidationReport` that is byte-identical (``to_json()``)
        across the built-in engines.
        """
        if engine is None:
            dtd = self.dtd
            constraints = dtd.constraints if sigma is None else tuple(sigma)
            return _check(doc, constraints, dtd.structure, obs=self.obs)
        if sigma is not None:
            raise TypeError(
                "check(engine=...) validates against the schema's own "
                "Sigma; an explicit sigma only applies to the legacy "
                "constraint-only form (engine=None)")
        from repro import engines

        return engines.create(engine, self.handle,
                              obs=self.obs).validate(doc)

    # -- streaming (deprecated alias) ------------------------------------------

    def check_stream(self, source) -> ValidationReport:
        """Deprecated alias for ``check(source, engine="stream")``.

        Retained for one major cycle; will be removed in repro 2.0.
        """
        import warnings

        warnings.warn(
            "Validator.check_stream() is deprecated and will be removed "
            "in repro 2.0; use check(source, engine='stream') — or "
            "engine='auto' for the fastest available backend (see the "
            "engine table in README.md)",
            DeprecationWarning, stacklevel=2)
        return self.check(source, engine="stream")

    # -- corpus ----------------------------------------------------------------

    def check_corpus(self, docs, jobs: int = 1, cache=None,
                     chunk_size: "int | None" = None,
                     stream: bool = False,
                     engine: "str | None" = None,
                     shards: "int | None" = None) -> "CorpusReport":
        """Validate many documents against this schema, optionally in
        parallel and against a persistent result cache.

        ``docs`` is any iterable of filesystem paths, ``DataTree``
        objects, or explicit ``(doc_id, xml_text)`` pairs.  ``jobs``
        sets the worker process count (``1`` stays in-process with
        bit-identical verdicts, ``0`` means one per CPU); ``cache`` is
        a :class:`~repro.corpus.ResultCache`, a directory path for a
        persistent store, or ``None``.  ``engine`` selects the
        per-document backend (``"batch"``, ``"stream"``, ``"codegen"``
        or ``"auto"``; default batch); verdicts are byte-identical
        across engines.  ``stream=True`` is the deprecated spelling of
        ``engine="stream"``.  Returns a
        :class:`~repro.corpus.CorpusReport` with per-document verdicts
        in input order.

        ``shards=N`` routes the run through the sharded coordinator
        (:class:`~repro.shard.ShardedCorpusValidator`, in-process
        nodes) instead of worker processes: same verdicts, plus the
        corpus-level ``L_id`` findings on the returned
        :class:`~repro.shard.ShardReport`.
        """
        if shards is not None:
            from repro.shard import ShardedCorpusValidator

            if stream:
                raise ValueError(
                    "stream=True is not supported with shards=; pass "
                    "engine='stream'")
            with ShardedCorpusValidator(
                    self.handle, shards=shards, cache=cache,
                    obs=self.obs, engine=engine) as validator:
                return validator.validate(docs)
        from repro.corpus import CorpusValidator

        return CorpusValidator(self.handle, jobs=jobs, cache=cache,
                               chunk_size=chunk_size, obs=self.obs,
                               stream=stream,
                               engine=engine).validate(docs)

    # -- static analysis -------------------------------------------------------

    def analyze(self, config: "LintConfig | None" = None) -> "AnalysisReport":
        """Static analysis (lint) of the schema itself — no document.

        Equivalent to the legacy ``repro.analyze(self.dtd, config)``.
        """
        from repro.analysis import analyze as _analyze

        return _analyze(self.dtd, config, obs=self.obs)

    # -- incremental -----------------------------------------------------------

    def session(self, doc: DataTree,
                sigma: Iterable[Constraint] | None = None) -> DocumentSession:
        """Open an incremental :class:`~repro.incremental.DocumentSession`
        maintaining Σ (default: the schema's own) over ``doc``.

        Construction costs one full pass; every later
        ``session.revalidate()`` costs O(|Δ|).
        """
        dtd = self.dtd
        constraints = dtd.constraints if sigma is None else tuple(sigma)
        return DocumentSession(doc, constraints, dtd.structure,
                               obs=self.obs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = f" schema={self._schema_name!r}" if self._schema_name \
            else ""
        return (f"<Validator root={self.dtd.structure.root!r} "
                f"|Sigma|={len(self.dtd.constraints)}{name}>")
