"""Language L: multi-attribute keys and foreign keys (§2.2).

- ``Key(tau, X)``            asserts  ``∀ x,y ∈ ext(tau): x[X]=y[X] → x=y``.
- ``ForeignKey(tau, X, tau', Y)`` asserts
  ``∀ x ∈ ext(tau) ∃ y ∈ ext(tau'): x[X] = y[Y]`` — and is well-formed
  only when ``tau'[Y] → tau'`` is among the stated constraints
  (checked by :func:`repro.constraints.wellformed.well_formed`).

``X`` in a key is a *set* of fields; in a foreign key ``X`` and ``Y`` are
*sequences* of equal length (order aligns the components).  Unary
constraints of L are the special case ``len(X) == 1``; the ``L_u``
classes in :mod:`repro.constraints.lang_lu` are the preferred
representation for those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.base import Constraint, Field, Language, fields_tuple


@dataclass(frozen=True)
class Key(Constraint):
    """``tau[X] -> tau``: the field set ``X`` is a key for ``tau``."""

    element: str
    fields: tuple[Field, ...]

    languages = Language.L

    def __post_init__(self):
        object.__setattr__(self, "fields", fields_tuple(self.fields))
        if not self.fields:
            raise ValueError("a key needs at least one field")
        if len(set(self.fields)) != len(self.fields):
            raise ValueError(f"duplicate fields in key for {self.element!r}")

    @property
    def field_set(self) -> frozenset[Field]:
        """The key as a set (keys are order-insensitive)."""
        return frozenset(self.fields)

    def is_unary(self) -> bool:
        """Whether the key has exactly one field (the L_u fragment)."""
        return len(self.fields) == 1

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in sorted(self.fields, key=str))
        return f"{self.element}[{inner}] -> {self.element}"


@dataclass(frozen=True)
class ForeignKey(Constraint):
    """``tau[X] ⊆ tau'[Y]``: ``X`` is a foreign key referencing the key
    ``Y`` of ``tau'``."""

    element: str
    fields: tuple[Field, ...]
    target: str
    target_fields: tuple[Field, ...]

    languages = Language.L

    def __post_init__(self):
        object.__setattr__(self, "fields", fields_tuple(self.fields))
        object.__setattr__(self, "target_fields",
                           fields_tuple(self.target_fields))
        if not self.fields:
            raise ValueError("a foreign key needs at least one field")
        if len(self.fields) != len(self.target_fields):
            raise ValueError(
                f"foreign key arity mismatch: {len(self.fields)} vs "
                f"{len(self.target_fields)}")
        if len(set(self.fields)) != len(self.fields):
            raise ValueError("duplicate source fields in foreign key")
        if len(set(self.target_fields)) != len(self.target_fields):
            raise ValueError("duplicate target fields in foreign key")

    def is_unary(self) -> bool:
        """Whether the foreign key has exactly one field."""
        return len(self.fields) == 1

    def implied_target_key(self) -> Key:
        """The key ``tau'[Y] → tau'`` that well-formedness requires
        (rule PFK-K derives it)."""
        return Key(self.target, self.target_fields)

    def permuted(self, order: tuple[int, ...]) -> "ForeignKey":
        """Apply rule PFK-perm: permute both sides simultaneously."""
        if sorted(order) != list(range(len(self.fields))):
            raise ValueError(f"not a permutation of positions: {order!r}")
        return ForeignKey(
            self.element, tuple(self.fields[i] for i in order),
            self.target, tuple(self.target_fields[i] for i in order))

    def canonical(self) -> "ForeignKey":
        """The permutation-normal form: positions sorted by source field.

        Two foreign keys are perm-equivalent iff their canonical forms
        are equal; the I_p closure works on canonical forms.
        """
        order = tuple(sorted(range(len(self.fields)),
                             key=lambda i: (str(self.fields[i]),
                                            str(self.target_fields[i]))))
        return self.permuted(order)

    def alignment(self) -> dict[Field, Field]:
        """The source-field -> target-field mapping the sequence encodes."""
        return dict(zip(self.fields, self.target_fields))

    def __str__(self) -> str:
        src = ", ".join(str(f) for f in self.fields)
        dst = ", ".join(str(f) for f in self.target_fields)
        return f"{self.element}[{src}] sub {self.target}[{dst}]"
