"""Language L_u: unary keys/foreign keys, set-valued foreign keys, and
inverse constraints (§2.2).

``L_u`` is the paper's minimal extension of plain DTDs for native XML
documents: keys are scoped per element type (not document-wide like ID),
references may be set-valued (IDREFS-style), and inverse relationships
are expressible.  Unary keys and unary foreign keys double as the unary
fragment of ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.base import Constraint, Field, Language, one_field


@dataclass(frozen=True)
class UnaryKey(Constraint):
    """``tau.l -> tau``: field ``l`` is a key for ``tau``-elements.

    Belongs to L (unary case), L_u and L_id.
    """

    element: str
    field: Field

    languages = Language.L | Language.LU | Language.LID

    def __post_init__(self):
        object.__setattr__(self, "field", one_field(self.field))

    def __str__(self) -> str:
        return f"{self.element}.{self.field} -> {self.element}"


@dataclass(frozen=True)
class UnaryForeignKey(Constraint):
    """``tau.l ⊆ tau'.l'``: single-valued foreign key; requires
    ``tau'.l' -> tau'`` among the stated constraints."""

    element: str
    field: Field
    target: str
    target_field: Field

    languages = Language.L | Language.LU

    def __post_init__(self):
        object.__setattr__(self, "field", one_field(self.field))
        object.__setattr__(self, "target_field", one_field(self.target_field))

    def implied_target_key(self) -> UnaryKey:
        """The key that rule UFK-K derives."""
        return UnaryKey(self.target, self.target_field)

    def __str__(self) -> str:
        return (f"{self.element}.{self.field} sub "
                f"{self.target}.{self.target_field}")


@dataclass(frozen=True)
class SetValuedForeignKey(Constraint):
    """``tau.l ⊆_S tau'.l'``: each value in the *set-valued* attribute
    ``l`` of every ``tau``-element occurs as an ``l'`` value of some
    ``tau'``-element; requires ``tau'.l' -> tau'``."""

    element: str
    field: Field
    target: str
    target_field: Field

    languages = Language.LU

    def __post_init__(self):
        object.__setattr__(self, "field", one_field(self.field))
        object.__setattr__(self, "target_field", one_field(self.target_field))

    def implied_target_key(self) -> UnaryKey:
        """The key that rule SFK-K derives."""
        return UnaryKey(self.target, self.target_field)

    def __str__(self) -> str:
        return (f"{self.element}.{self.field} subS "
                f"{self.target}.{self.target_field}")


@dataclass(frozen=True)
class Inverse(Constraint):
    """``tau(l_k).l ⇌ tau'(l_k').l'``: inverse relationship between the
    set-valued attributes ``l`` and ``l'``, mediated by the keys ``l_k``
    of ``tau`` and ``l_k'`` of ``tau'``.

    Semantics: for all ``x ∈ ext(tau)``, ``y ∈ ext(tau')``::

        x.l_k  ∈ y.l'  →  y.l_k' ∈ x.l
        y.l_k' ∈ x.l   →  x.l_k  ∈ y.l'

    The designated key attributes must be stated keys (the Inv-SFK rule
    takes them as premises).
    """

    element: str
    key_field: Field
    field: Field
    target: str
    target_key_field: Field
    target_field: Field

    languages = Language.LU

    def __post_init__(self):
        object.__setattr__(self, "key_field", one_field(self.key_field))
        object.__setattr__(self, "field", one_field(self.field))
        object.__setattr__(self, "target_key_field",
                           one_field(self.target_key_field))
        object.__setattr__(self, "target_field", one_field(self.target_field))

    def flipped(self) -> "Inverse":
        """The same constraint written from the other side (symmetric)."""
        return Inverse(self.target, self.target_key_field, self.target_field,
                       self.element, self.key_field, self.field)

    def implied_foreign_keys(self) -> tuple[SetValuedForeignKey,
                                            SetValuedForeignKey]:
        """Rule Inv-SFK: the two set-valued foreign keys an inverse (plus
        its designated keys) yields:
        ``tau.l ⊆_S tau'.l_k'`` and ``tau'.l' ⊆_S tau.l_k``."""
        return (
            SetValuedForeignKey(self.element, self.field,
                                self.target, self.target_key_field),
            SetValuedForeignKey(self.target, self.target_field,
                                self.element, self.key_field),
        )

    def required_keys(self) -> tuple[UnaryKey, UnaryKey]:
        """The key premises of the Inv-SFK rule."""
        return (UnaryKey(self.element, self.key_field),
                UnaryKey(self.target, self.target_key_field))

    def __str__(self) -> str:
        return (f"{self.element}({self.key_field}).{self.field} inv "
                f"{self.target}({self.target_key_field}).{self.target_field}")
