"""Language L_id: object-style references through document-wide IDs (§2.2).

``L_id`` keeps XML's original ID semantics — an ID value identifies its
element within the *whole document* — and adds typing/scoping to IDREF
references, per-type unary keys, and inverse constraints.

Because ``tau.id`` denotes *the* ID attribute of ``tau`` (the unique
attribute with ``kind = ID``), the constraint objects below do not carry
the ID attribute's name: it is resolved against the DTD structure when
checking documents, and is irrelevant for implication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.base import Constraint, Field, Language, one_field


@dataclass(frozen=True)
class IDConstraint(Constraint):
    """``tau.id →_id tau``: every ``tau``-element has an ID value that is
    unique among *all* ID values in the document."""

    element: str

    languages = Language.LID

    def __str__(self) -> str:
        return f"{self.element}.id ->id {self.element}"


@dataclass(frozen=True)
class IDForeignKey(Constraint):
    """``tau.l ⊆ tau'.id``: the single-valued IDREF attribute ``l`` of
    every ``tau``-element holds the ID of some ``tau'``-element; requires
    ``tau'.id →_id tau'``."""

    element: str
    field: Field
    target: str

    languages = Language.LID

    def __post_init__(self):
        object.__setattr__(self, "field", one_field(self.field))

    def implied_id(self) -> IDConstraint:
        """Rule FK-ID: the target's ID constraint."""
        return IDConstraint(self.target)

    def __str__(self) -> str:
        return f"{self.element}.{self.field} sub {self.target}.id"


@dataclass(frozen=True)
class IDSetValuedForeignKey(Constraint):
    """``tau.l ⊆_S tau'.id``: the set-valued IDREF(S) attribute ``l``
    holds IDs of ``tau'``-elements only; requires ``tau'.id →_id tau'``."""

    element: str
    field: Field
    target: str

    languages = Language.LID

    def __post_init__(self):
        object.__setattr__(self, "field", one_field(self.field))

    def implied_id(self) -> IDConstraint:
        """Rule SFK-ID: the target's ID constraint."""
        return IDConstraint(self.target)

    def __str__(self) -> str:
        return f"{self.element}.{self.field} subS {self.target}.id"


@dataclass(frozen=True)
class IDInverse(Constraint):
    """``tau.l ⇌ tau'.l'``: inverse relationship between the set-valued
    IDREF attributes ``l`` of ``tau`` and ``l'`` of ``tau'``; both types
    must carry ID constraints.

    Semantics: for all ``x ∈ ext(tau)``, ``y ∈ ext(tau')``::

        x.id ∈ y.l'  →  y.id ∈ x.l
        y.id ∈ x.l   →  x.id ∈ y.l'
    """

    element: str
    field: Field
    target: str
    target_field: Field

    languages = Language.LID

    def __post_init__(self):
        object.__setattr__(self, "field", one_field(self.field))
        object.__setattr__(self, "target_field", one_field(self.target_field))

    def flipped(self) -> "IDInverse":
        """The same constraint written from the other side (symmetric)."""
        return IDInverse(self.target, self.target_field,
                         self.element, self.field)

    def implied_foreign_keys(self) -> tuple[IDSetValuedForeignKey,
                                            IDSetValuedForeignKey]:
        """Rule Inv-SFK-ID: ``tau.l ⊆_S tau'.id`` and
        ``tau'.l' ⊆_S tau.id``."""
        return (IDSetValuedForeignKey(self.element, self.field, self.target),
                IDSetValuedForeignKey(self.target, self.target_field,
                                      self.element))

    def __str__(self) -> str:
        return (f"{self.element}.{self.field} inv "
                f"{self.target}.{self.target_field}")
