"""Violation reporting for constraint checking and validation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datamodel.tree import Vertex


@dataclass(frozen=True)
class Violation:
    """One concrete constraint (or structural) violation.

    Attributes
    ----------
    code:
        A stable machine-readable identifier, e.g. ``"key"``,
        ``"foreign-key"``, ``"id-clash"``, ``"content-model"``.
    message:
        Human-readable description.
    constraint:
        String form of the violated constraint, when applicable.
    vertices:
        ``vid``s of the offending vertices (possibly empty).
    """

    code: str
    message: str
    constraint: str = ""
    vertices: tuple[int, ...] = ()

    def __str__(self) -> str:
        where = f" (vertices {', '.join(map(str, self.vertices))})" \
            if self.vertices else ""
        which = f" [{self.constraint}]" if self.constraint else ""
        return f"{self.code}: {self.message}{which}{where}"


@dataclass
class ViolationReport:
    """The outcome of checking a document: a list of violations.

    Truthiness follows success: ``bool(report)`` is ``True`` when the
    document is clean.
    """

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no violation was recorded."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def add(self, code: str, message: str, constraint: str = "",
            vertices: "tuple[Vertex, ...] | list[Vertex] | tuple[int, ...]" = ()
            ) -> None:
        """Record a violation; ``vertices`` may be Vertex objects or vids."""
        vids = tuple(v.vid if isinstance(v, Vertex) else int(v)
                     for v in vertices)
        self.violations.append(Violation(code, message, constraint, vids))

    def merge(self, other: "ViolationReport") -> None:
        """Append all violations from ``other``."""
        self.violations.extend(other.violations)

    def by_code(self, code: str) -> list[Violation]:
        """The violations with the given code."""
        return [v for v in self.violations if v.code == code]

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def __str__(self) -> str:
        if self.ok:
            return "OK (no violations)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)
