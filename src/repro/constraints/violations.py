"""Violation reporting for constraint checking and validation."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.datamodel.tree import Vertex


@dataclass(frozen=True)
class Violation:
    """One concrete constraint (or structural) violation.

    Attributes
    ----------
    code:
        A stable machine-readable identifier, e.g. ``"key"``,
        ``"foreign-key"``, ``"id-clash"``, ``"content-model"``.
    message:
        Human-readable description.
    constraint:
        String form of the violated constraint, when applicable.
    vertices:
        ``vid``s of the offending vertices (possibly empty).
    """

    code: str
    message: str
    constraint: str = ""
    vertices: tuple[int, ...] = ()

    def __str__(self) -> str:
        where = f" (vertices {', '.join(map(str, self.vertices))})" \
            if self.vertices else ""
        which = f" [{self.constraint}]" if self.constraint else ""
        return f"{self.code}: {self.message}{which}{where}"

    def to_dict(self) -> dict:
        """A JSON-safe dict; inverse of :meth:`from_dict`."""
        return {"code": self.code, "message": self.message,
                "constraint": self.constraint,
                "vertices": list(self.vertices)}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(data["code"], data["message"],
                   data.get("constraint", ""),
                   tuple(data.get("vertices", ())))


@dataclass
class ViolationReport:
    """The outcome of checking a document: a list of violations.

    Truthiness follows success: ``bool(report)`` is ``True`` when the
    document is clean.
    """

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no violation was recorded."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def add(self, code: str, message: str, constraint: str = "",
            vertices: "tuple[Vertex, ...] | list[Vertex] | tuple[int, ...]" = ()
            ) -> None:
        """Record a violation; ``vertices`` may be Vertex objects or vids."""
        vids = tuple(v.vid if isinstance(v, Vertex) else int(v)
                     for v in vertices)
        self.violations.append(Violation(code, message, constraint, vids))

    def merge(self, other: "ViolationReport") -> None:
        """Append all violations from ``other``."""
        self.violations.extend(other.violations)

    def by_code(self, code: str) -> list[Violation]:
        """The violations with the given code."""
        return [v for v in self.violations if v.code == code]

    def to_dict(self) -> dict:
        """A JSON-safe dict; inverse of :meth:`from_dict`.

        This is the persistence format of the corpus result cache, so
        it must stay loss-free for ``code``/``message``/``constraint``/
        ``vertices`` — a cached report has to be indistinguishable from
        a freshly computed one.
        """
        return {"ok": self.ok,
                "violations": [v.to_dict() for v in self.violations]}

    @classmethod
    def from_dict(cls, data: dict) -> "ViolationReport":
        """Rebuild a report (or subclass: ``cls()`` is used) from
        :meth:`to_dict` output."""
        report = cls()
        for v in data.get("violations", ()):
            report.violations.append(Violation.from_dict(v))
        return report

    def to_json(self, indent: "int | None" = None) -> str:
        """Deterministic (sorted-key) JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def __str__(self) -> str:
        if self.ok:
            return "OK (no violations)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)
