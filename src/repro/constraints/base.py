"""Common machinery for constraint classes.

A :class:`Field` names one component of a key / foreign key: either an
attribute of the element type or — per the §3.4 extension — a *unique
sub-element*, whose value on a vertex is the text content of its single
child with that label.  Fields print as ``isbn`` (attribute) or
``<name>`` (sub-element).

Every concrete constraint derives from :class:`Constraint` and declares
which languages it belongs to via :attr:`Constraint.languages`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.datamodel.tree import Vertex


class Language(enum.Flag):
    """The three basic constraint languages of the paper."""

    L = enum.auto()
    LU = enum.auto()
    LID = enum.auto()


@dataclass(frozen=True, slots=True)
class Field:
    """One key/foreign-key component: an attribute or a unique sub-element."""

    name: str
    is_element: bool = False

    def __str__(self) -> str:
        return f"<{self.name}>" if self.is_element else self.name

    def values_on(self, vertex: Vertex) -> frozenset[str]:
        """The value set of this field on ``vertex``.

        For an attribute this is ``att(vertex, name)`` (empty when
        undefined).  For a sub-element field it is the set of text
        contents of the children labeled ``name`` — on a structurally
        valid document where ``name`` is a unique sub-element this is a
        singleton.
        """
        if not self.is_element:
            return vertex.attr_or_empty(self.name)
        return frozenset(child.text
                         for child in vertex.children_labeled(self.name))

    def single_on(self, vertex: Vertex) -> str | None:
        """The single value of this field, or ``None`` when it does not
        hold exactly one value on ``vertex``."""
        values = self.values_on(vertex)
        if len(values) != 1:
            return None
        return next(iter(values))


def attr(name: str) -> Field:
    """An attribute field."""
    return Field(name, is_element=False)


def elem(name: str) -> Field:
    """A unique-sub-element field (§3.4)."""
    return Field(name, is_element=True)


def fields_tuple(fields) -> tuple[Field, ...]:
    """Normalize a field specification to a tuple of :class:`Field`.

    Accepts :class:`Field` objects or bare strings (interpreted as
    attribute fields, with a ``<name>`` string form for sub-elements).
    """
    out: list[Field] = []
    for f in fields:
        if isinstance(f, Field):
            out.append(f)
        elif isinstance(f, str):
            if f.startswith("<") and f.endswith(">"):
                out.append(Field(f[1:-1], is_element=True))
            else:
                out.append(Field(f))
        else:
            raise TypeError(f"field must be Field or str, got {f!r}")
    return tuple(out)


def one_field(field) -> Field:
    """Normalize a single field specification."""
    (f,) = fields_tuple((field,))
    return f


class Constraint:
    """Base class of all basic XML constraints.

    Concrete subclasses are frozen dataclasses; they all expose

    - :attr:`languages` — the :class:`Language` flags this syntactic form
      belongs to,
    - ``element`` — the element type the constraint ranges over,
    - ``__str__`` — the paper's notation in ASCII.
    """

    languages: Language = Language(0)

    def in_language(self, language: Language) -> bool:
        """Whether the constraint's syntactic form belongs to ``language``."""
        return bool(self.languages & language)
