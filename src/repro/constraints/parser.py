"""Textual syntax for basic XML constraints.

The syntax follows the paper's notation, ASCII-fied::

    entry.isbn -> entry                          unary key
    person.<name> -> person                      unary key over a sub-element
    publisher[pname, country] -> publisher       multi-attribute key (L)
    editor[pname, country] sub publisher[pname, country]   foreign key (L)
    book.ref sub entry.isbn                      unary foreign key (L_u)
    ref.to subS entry.isbn                       set-valued foreign key (L_u)
    dept(dname).has_staff inv person(name).in_dept         inverse (L_u)
    person.oid ->id person                       ID constraint (L_id)
    dept.manager sub person.id                   foreign key into an ID (L_id)
    dept.has_staff subS person.id                set-valued FK into an ID (L_id)
    dept.has_staff inv person.in_dept            inverse (L_id)

Notes:

- ``.id`` on the right-hand side of ``sub`` / ``subS`` is *notation* for
  "the ID attribute of that type" (as in the paper), so those lines
  produce ``L_id`` constraints.  ``<=`` and ``<=s`` are accepted as
  synonyms of ``sub`` / ``subS``, and ``<->`` of ``inv``.
- Bare field names denote attributes.  With a DTD structure supplied,
  a name that is not a declared attribute but is a sub-element of the
  type resolves to a sub-element field; ``<name>`` forces sub-element.
- :func:`parse_constraints` reads multiple lines, ignoring blanks and
  ``#`` comments.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.errors import ConstraintSyntaxError

if TYPE_CHECKING:  # layering: constraints must not import dtd at runtime
    from repro.dtd.structure import DTDStructure

_NAME = r"[A-Za-z_][\w.\-]*"
_FIELD = rf"(?:<{_NAME}>|{_NAME})"

_KEY_UNARY = re.compile(
    rf"^({_NAME})\.({_FIELD})\s*->\s*({_NAME})$")
_KEY_ID = re.compile(
    rf"^({_NAME})\.({_FIELD})\s*->id\s*({_NAME})$")
_KEY_MULTI = re.compile(
    rf"^({_NAME})\s*\[([^\]]+)\]\s*->\s*({_NAME})$")
_FK_MULTI = re.compile(
    rf"^({_NAME})\s*\[([^\]]+)\]\s*(?:sub|<=)\s*({_NAME})\s*\[([^\]]+)\]$")
_FK_UNARY = re.compile(
    rf"^({_NAME})\.({_FIELD})\s*(?:subS|<=s)\s*({_NAME})\.({_FIELD})$"
    rf"|^({_NAME})\.({_FIELD})\s*(?:sub|<=)\s*({_NAME})\.({_FIELD})$")
_INV_LU = re.compile(
    rf"^({_NAME})\(({_FIELD})\)\.({_FIELD})\s*(?:inv|<->)\s*"
    rf"({_NAME})\(({_FIELD})\)\.({_FIELD})$")
_INV_LID = re.compile(
    rf"^({_NAME})\.({_FIELD})\s*(?:inv|<->)\s*({_NAME})\.({_FIELD})$")


def _field(token: str, element: str,
           structure: "DTDStructure | None") -> Field:
    token = token.strip()
    if token.startswith("<") and token.endswith(">"):
        return Field(token[1:-1], is_element=True)
    if structure is not None and structure.has_element(element) and \
            not structure.has_attribute(element, token) and \
            token in structure.subelements(element):
        return Field(token, is_element=True)
    return Field(token)


def _fields(tokens: str, element: str,
            structure: "DTDStructure | None") -> tuple[Field, ...]:
    return tuple(_field(t, element, structure)
                 for t in tokens.split(",") if t.strip())


def parse_constraint(text: str,
                     structure: "DTDStructure | None" = None) -> Constraint:
    """Parse one constraint line; see the module docstring for syntax."""
    line = text.strip()
    if not line:
        raise ConstraintSyntaxError("empty constraint")

    m = _KEY_ID.match(line)
    if m:
        element, _attr, target = m.groups()
        if element != target:
            raise ConstraintSyntaxError(
                f"ID constraint must mention the same type twice: {line!r}")
        return IDConstraint(element)

    m = _KEY_UNARY.match(line)
    if m:
        element, field, target = m.groups()
        if element != target:
            raise ConstraintSyntaxError(
                f"key constraint must mention the same type twice: {line!r}")
        return UnaryKey(element, _field(field, element, structure))

    m = _KEY_MULTI.match(line)
    if m:
        element, fields, target = m.groups()
        if element != target:
            raise ConstraintSyntaxError(
                f"key constraint must mention the same type twice: {line!r}")
        parsed = _fields(fields, element, structure)
        if len(parsed) == 1:
            return UnaryKey(element, parsed[0])
        return Key(element, parsed)

    m = _FK_MULTI.match(line)
    if m:
        element, fields, target, target_fields = m.groups()
        src = _fields(fields, element, structure)
        dst = _fields(target_fields, target, structure)
        if len(src) == 1 and len(dst) == 1:
            return UnaryForeignKey(element, src[0], target, dst[0])
        return ForeignKey(element, src, target, dst)

    m = _FK_UNARY.match(line)
    if m:
        groups = m.groups()
        if groups[0] is not None:  # subS branch
            element, field, target, target_field = groups[:4]
            set_valued = True
        else:
            element, field, target, target_field = groups[4:]
            set_valued = False
        src = _field(field, element, structure)
        if target_field == "id":
            if set_valued:
                return IDSetValuedForeignKey(element, src, target)
            return IDForeignKey(element, src, target)
        dst = _field(target_field, target, structure)
        if set_valued:
            return SetValuedForeignKey(element, src, target, dst)
        return UnaryForeignKey(element, src, target, dst)

    m = _INV_LU.match(line)
    if m:
        element, key_field, field, target, target_key, target_field = \
            m.groups()
        return Inverse(element,
                       _field(key_field, element, structure),
                       _field(field, element, structure),
                       target,
                       _field(target_key, target, structure),
                       _field(target_field, target, structure))

    m = _INV_LID.match(line)
    if m:
        element, field, target, target_field = m.groups()
        return IDInverse(element, _field(field, element, structure),
                         target, _field(target_field, target, structure))

    raise ConstraintSyntaxError(f"cannot parse constraint: {line!r}")


def parse_constraints(text: str,
                      structure: "DTDStructure | None" = None
                      ) -> list[Constraint]:
    """Parse a block of constraint lines (blank lines and ``#`` comments
    are ignored)."""
    out: list[Constraint] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            out.append(parse_constraint(line, structure))
        except ConstraintSyntaxError as exc:
            raise ConstraintSyntaxError(exc.message, line=lineno) from None
    return out
