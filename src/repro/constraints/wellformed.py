"""Well-formedness of constraint sets against a DTD structure.

The constraint definitions in §2.2 carry side conditions — keys range
over single-valued attributes (or unique sub-elements, §3.4), foreign-key
targets must be stated keys, ``L_id`` references must be IDREF attributes
pointing at types with ID constraints, and so on.  :func:`well_formed`
verifies all of them and returns a list of problems (empty = ok);
:func:`require_well_formed` raises :class:`ConstraintError` instead.

:func:`well_formed_problems` is the structured face of the same check:
each problem carries a stable diagnostic code (the ``XIC2xx`` family of
:mod:`repro.analysis`) and the constraint it anchors to, so tooling can
filter and render findings without parsing message strings.

Code taxonomy (shared with the analysis engine):

=======  ==========================================================
XIC201   constraint references an undeclared element type
XIC202   constraint references an undeclared attribute
XIC203   field arity mismatch (single/set-valued, unique sub-element)
XIC204   foreign-key target fields are not a stated key
XIC205   ``L_id`` side condition (ID constraint / ID attribute / IDREF)
XIC206   foreign-key target key crosses constraint languages
=======  ==========================================================
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.constraints.base import Constraint, Field, Language
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.errors import ConstraintError

if TYPE_CHECKING:  # layering: constraints must not import dtd at runtime
    from repro.dtd.structure import DTDStructure


@dataclass(frozen=True)
class WellFormednessProblem:
    """One well-formedness violation, with a stable diagnostic code."""

    code: str
    message: str
    constraint: str
    element: str | None = None

    def __str__(self) -> str:
        return f"{self.constraint}: {self.message}"


def well_formed_problems(constraints: Iterable[Constraint],
                         structure: "DTDStructure"
                         ) -> list[WellFormednessProblem]:
    """All well-formedness problems of Σ, as structured records."""
    sigma = list(constraints)
    problems: list[WellFormednessProblem] = []
    stated_keys = _stated_keys(sigma)
    stated_ids = {c.element for c in sigma if isinstance(c, IDConstraint)}
    for c in sigma:
        problems.extend(_check_one(c, structure, stated_keys, stated_ids))
    problems.extend(_cross_language_targets(sigma, stated_ids))
    return problems


def well_formed(constraints: Iterable[Constraint],
                structure: "DTDStructure") -> list[str]:
    """All well-formedness problems of Σ against the structure."""
    return [str(p) for p in well_formed_problems(constraints, structure)]


def require_well_formed(constraints: Iterable[Constraint],
                        structure: "DTDStructure") -> None:
    """Raise :class:`ConstraintError` on the first well-formedness problem."""
    problems = well_formed(constraints, structure)
    if problems:
        raise ConstraintError("; ".join(problems))


def language_of(constraints: Iterable[Constraint]) -> Language:
    """The largest language containing every constraint of Σ.

    Raises :class:`ConstraintError` when Σ mixes languages (e.g. an
    ``L_id`` ID constraint with an ``L`` multi-attribute key).
    """
    common = Language.L | Language.LU | Language.LID
    for c in constraints:
        common &= c.languages
        if not common:
            raise ConstraintError(
                "constraint set mixes languages; no single language of "
                "the paper contains all of them")
    return common


def _stated_keys(sigma: list[Constraint]) -> set[tuple[str, frozenset[Field]]]:
    keys: set[tuple[str, frozenset[Field]]] = set()
    for c in sigma:
        if isinstance(c, Key):
            keys.add((c.element, c.field_set))
        elif isinstance(c, UnaryKey):
            keys.add((c.element, frozenset((c.field,))))
    return keys


def _field_ok(structure: "DTDStructure", element: str, field: Field,
              need_single: bool, need_set: bool = False
              ) -> tuple[str, str] | None:
    """Check one field reference; return ``(code, problem)`` or ``None``."""
    if not structure.has_element(element):
        return "XIC201", f"undeclared element type {element!r}"
    if field.is_element:
        if need_set:
            return ("XIC203",
                    f"{element}.{field} must be a set-valued attribute, "
                    "not a sub-element")
        if field.name not in structure.unique_subelements(element):
            return ("XIC203",
                    f"{field.name!r} is not a unique sub-element of "
                    f"{element!r} (§3.4 requires exactly one occurrence "
                    "in every word of the content model)")
        return None
    if not structure.has_attribute(element, field.name):
        return "XIC202", f"undeclared attribute {element}.{field.name}"
    set_valued = structure.is_set_valued(element, field.name)
    if need_single and set_valued:
        return "XIC203", f"{element}.{field.name} must be single-valued"
    if need_set and not set_valued:
        return "XIC203", f"{element}.{field.name} must be set-valued"
    return None


def _cross_language_targets(sigma: list[Constraint], stated_ids: set[str]
                            ) -> list[WellFormednessProblem]:
    """The explicit cross-language target check (code ``XIC206``).

    An ``L_id`` foreign key is justified by the *stated ID constraint*
    of its target; that justification is an ``L_id`` statement.  When Σ
    as a whole fits no single language of the paper, the foreign key and
    its target key live in different fragments, every implication engine
    rejects Σ, and the paper's semantics (which is per-language) no
    longer covers the pair.  Historically this combination was accepted
    silently; it is now reported on each affected foreign key.
    """
    try:
        language_of(sigma)
    except ConstraintError:
        pass
    else:
        return []
    problems: list[WellFormednessProblem] = []
    for c in sigma:
        if isinstance(c, (IDForeignKey, IDSetValuedForeignKey)):
            targets = (c.target,)
        elif isinstance(c, IDInverse):
            targets = (c.element, c.target)
        else:
            continue
        for target in targets:
            if target in stated_ids:
                problems.append(WellFormednessProblem(
                    "XIC206",
                    f"target key of {target!r} is stated only as an L_id "
                    "ID constraint, but Sigma mixes constraint languages; "
                    "the foreign key and its target key must fit one "
                    "language of the paper", str(c), c.element))
    return problems


def _check_one(c: Constraint, s: "DTDStructure",
               stated_keys: set[tuple[str, frozenset[Field]]],
               stated_ids: set[str]) -> list[WellFormednessProblem]:
    problems: list[WellFormednessProblem] = []

    def report(code: str, message: str) -> None:
        problems.append(WellFormednessProblem(code, message, str(c),
                                              c.element))

    def field(element: str, f: Field, *, single: bool = False,
              setv: bool = False) -> None:
        p = _field_ok(s, element, f, need_single=single, need_set=setv)
        if p is not None:
            report(*p)

    def target_key(element: str, fs: frozenset[Field]) -> None:
        if (element, fs) in stated_keys:
            return
        inner = ", ".join(str(f) for f in sorted(fs, key=str))
        report("XIC204",
               f"referenced fields [{inner}] are not a stated key "
               f"of {element!r}")
        # Cross-language near-miss: the referenced field is the target's
        # ID attribute and an L_id ID constraint is stated for it.  The
        # ID constraint does not make the attribute a stated key in the
        # foreign key's own language (L / L_u); say so explicitly.
        if len(fs) == 1 and element in stated_ids:
            (f,) = fs
            if not f.is_element and s.has_element(element) and \
                    s.id_attribute(element) == f.name:
                report("XIC206",
                       f"{element}.{f.name} is covered only by the L_id "
                       f"ID constraint of {element!r}, a different "
                       f"constraint language; state "
                       f"{element}.{f.name} -> {element} explicitly")

    def target_id(element: str) -> None:
        if element not in stated_ids:
            report("XIC205",
                   f"target {element!r} has no stated ID constraint")
        if s.has_element(element) and s.id_attribute(element) is None:
            report("XIC205",
                   f"target {element!r} has no declared ID attribute")

    if isinstance(c, Key):
        for f in c.fields:
            field(c.element, f, single=True)
    elif isinstance(c, UnaryKey):
        field(c.element, c.field, single=True)
    elif isinstance(c, ForeignKey):
        for f in c.fields:
            field(c.element, f, single=True)
        for f in c.target_fields:
            field(c.target, f, single=True)
        target_key(c.target, frozenset(c.target_fields))
    elif isinstance(c, UnaryForeignKey):
        field(c.element, c.field, single=True)
        field(c.target, c.target_field, single=True)
        target_key(c.target, frozenset((c.target_field,)))
    elif isinstance(c, SetValuedForeignKey):
        field(c.element, c.field, setv=True)
        field(c.target, c.target_field, single=True)
        target_key(c.target, frozenset((c.target_field,)))
    elif isinstance(c, Inverse):
        field(c.element, c.field, setv=True)
        field(c.target, c.target_field, setv=True)
        field(c.element, c.key_field, single=True)
        field(c.target, c.target_key_field, single=True)
        target_key(c.element, frozenset((c.key_field,)))
        target_key(c.target, frozenset((c.target_key_field,)))
    elif isinstance(c, IDConstraint):
        if not s.has_element(c.element):
            report("XIC201", f"undeclared element type {c.element!r}")
        elif s.id_attribute(c.element) is None:
            report("XIC205",
                   f"element type {c.element!r} has no attribute of "
                   "kind ID")
    elif isinstance(c, IDForeignKey):
        field(c.element, c.field, single=True)
        _require_idref(s, c, c.element, c.field, problems)
        target_id(c.target)
    elif isinstance(c, IDSetValuedForeignKey):
        field(c.element, c.field, setv=True)
        _require_idref(s, c, c.element, c.field, problems)
        target_id(c.target)
    elif isinstance(c, IDInverse):
        field(c.element, c.field, setv=True)
        field(c.target, c.target_field, setv=True)
        _require_idref(s, c, c.element, c.field, problems)
        _require_idref(s, c, c.target, c.target_field, problems)
        target_id(c.element)
        target_id(c.target)
    else:
        raise ConstraintError(f"unknown constraint type {c!r}")
    return problems


def _require_idref(s: "DTDStructure", c: Constraint, element: str,
                   field: Field,
                   problems: list[WellFormednessProblem]) -> None:
    # Deferred import keeps the constraints package independent of dtd
    # at import time (dtd depends on constraints, not vice versa).
    from repro.dtd.structure import AttributeKind

    if field.is_element:
        problems.append(WellFormednessProblem(
            "XIC205", "L_id references must be attributes", str(c),
            c.element))
        return
    if s.has_element(element) and s.has_attribute(element, field.name) and \
            s.kind(element, field.name) is not AttributeKind.IDREF:
        problems.append(WellFormednessProblem(
            "XIC205", f"kind({element}, {field.name}) must be IDREF",
            str(c), c.element))
