"""Well-formedness of constraint sets against a DTD structure.

The constraint definitions in §2.2 carry side conditions — keys range
over single-valued attributes (or unique sub-elements, §3.4), foreign-key
targets must be stated keys, ``L_id`` references must be IDREF attributes
pointing at types with ID constraints, and so on.  :func:`well_formed`
verifies all of them and returns a list of problems (empty = ok);
:func:`require_well_formed` raises :class:`ConstraintError` instead.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.constraints.base import Constraint, Field, Language
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.errors import ConstraintError

if TYPE_CHECKING:  # layering: constraints must not import dtd at runtime
    from repro.dtd.structure import DTDStructure


def well_formed(constraints: Iterable[Constraint],
                structure: "DTDStructure") -> list[str]:
    """All well-formedness problems of Σ against the structure."""
    sigma = list(constraints)
    problems: list[str] = []
    stated_keys = _stated_keys(sigma)
    stated_ids = {c.element for c in sigma if isinstance(c, IDConstraint)}
    for c in sigma:
        problems.extend(_check_one(c, structure, stated_keys, stated_ids))
    return problems


def require_well_formed(constraints: Iterable[Constraint],
                        structure: "DTDStructure") -> None:
    """Raise :class:`ConstraintError` on the first well-formedness problem."""
    problems = well_formed(constraints, structure)
    if problems:
        raise ConstraintError("; ".join(problems))


def language_of(constraints: Iterable[Constraint]) -> Language:
    """The largest language containing every constraint of Σ.

    Raises :class:`ConstraintError` when Σ mixes languages (e.g. an
    ``L_id`` ID constraint with an ``L`` multi-attribute key).
    """
    common = Language.L | Language.LU | Language.LID
    for c in constraints:
        common &= c.languages
        if not common:
            raise ConstraintError(
                "constraint set mixes languages; no single language of "
                "the paper contains all of them")
    return common


def _stated_keys(sigma: list[Constraint]) -> set[tuple[str, frozenset[Field]]]:
    keys: set[tuple[str, frozenset[Field]]] = set()
    for c in sigma:
        if isinstance(c, Key):
            keys.add((c.element, c.field_set))
        elif isinstance(c, UnaryKey):
            keys.add((c.element, frozenset((c.field,))))
    return keys


def _field_ok(structure: "DTDStructure", element: str, field: Field,
              need_single: bool, need_set: bool = False) -> str | None:
    """Check one field reference; return a problem string or ``None``."""
    if not structure.has_element(element):
        return f"undeclared element type {element!r}"
    if field.is_element:
        if need_set:
            return (f"{element}.{field} must be a set-valued attribute, "
                    "not a sub-element")
        if field.name not in structure.unique_subelements(element):
            return (f"{field.name!r} is not a unique sub-element of "
                    f"{element!r} (§3.4 requires exactly one occurrence "
                    "in every word of the content model)")
        return None
    if not structure.has_attribute(element, field.name):
        return f"undeclared attribute {element}.{field.name}"
    set_valued = structure.is_set_valued(element, field.name)
    if need_single and set_valued:
        return f"{element}.{field.name} must be single-valued"
    if need_set and not set_valued:
        return f"{element}.{field.name} must be set-valued"
    return None


def _check_one(c: Constraint, s: "DTDStructure",
               stated_keys: set[tuple[str, frozenset[Field]]],
               stated_ids: set[str]) -> list[str]:
    problems: list[str] = []

    def field(element: str, f: Field, *, single: bool = False,
              setv: bool = False) -> None:
        p = _field_ok(s, element, f, need_single=single, need_set=setv)
        if p is not None:
            problems.append(f"{c}: {p}")

    def target_key(element: str, fs: frozenset[Field]) -> None:
        if (element, fs) not in stated_keys:
            inner = ", ".join(str(f) for f in sorted(fs, key=str))
            problems.append(
                f"{c}: referenced fields [{inner}] are not a stated key "
                f"of {element!r}")

    def target_id(element: str) -> None:
        if element not in stated_ids:
            problems.append(
                f"{c}: target {element!r} has no stated ID constraint")
        if s.has_element(element) and s.id_attribute(element) is None:
            problems.append(
                f"{c}: target {element!r} has no declared ID attribute")

    if isinstance(c, Key):
        for f in c.fields:
            field(c.element, f, single=True)
    elif isinstance(c, UnaryKey):
        field(c.element, c.field, single=True)
    elif isinstance(c, ForeignKey):
        for f in c.fields:
            field(c.element, f, single=True)
        for f in c.target_fields:
            field(c.target, f, single=True)
        target_key(c.target, frozenset(c.target_fields))
    elif isinstance(c, UnaryForeignKey):
        field(c.element, c.field, single=True)
        field(c.target, c.target_field, single=True)
        target_key(c.target, frozenset((c.target_field,)))
    elif isinstance(c, SetValuedForeignKey):
        field(c.element, c.field, setv=True)
        field(c.target, c.target_field, single=True)
        target_key(c.target, frozenset((c.target_field,)))
    elif isinstance(c, Inverse):
        field(c.element, c.field, setv=True)
        field(c.target, c.target_field, setv=True)
        field(c.element, c.key_field, single=True)
        field(c.target, c.target_key_field, single=True)
        target_key(c.element, frozenset((c.key_field,)))
        target_key(c.target, frozenset((c.target_key_field,)))
    elif isinstance(c, IDConstraint):
        if not s.has_element(c.element):
            problems.append(f"{c}: undeclared element type {c.element!r}")
        elif s.id_attribute(c.element) is None:
            problems.append(
                f"{c}: element type {c.element!r} has no attribute of "
                "kind ID")
    elif isinstance(c, IDForeignKey):
        field(c.element, c.field, single=True)
        _require_idref(s, c, c.element, c.field, problems)
        target_id(c.target)
    elif isinstance(c, IDSetValuedForeignKey):
        field(c.element, c.field, setv=True)
        _require_idref(s, c, c.element, c.field, problems)
        target_id(c.target)
    elif isinstance(c, IDInverse):
        field(c.element, c.field, setv=True)
        field(c.target, c.target_field, setv=True)
        _require_idref(s, c, c.element, c.field, problems)
        _require_idref(s, c, c.target, c.target_field, problems)
        target_id(c.element)
        target_id(c.target)
    else:
        raise ConstraintError(f"unknown constraint type {c!r}")
    return problems


def _require_idref(s: "DTDStructure", c: Constraint, element: str,
                   field: Field, problems: list[str]) -> None:
    # Deferred import keeps the constraints package independent of dtd
    # at import time (dtd depends on constraints, not vice versa).
    from repro.dtd.structure import AttributeKind

    if field.is_element:
        problems.append(f"{c}: L_id references must be attributes")
        return
    if s.has_element(element) and s.has_attribute(element, field.name) and \
            s.kind(element, field.name) is not AttributeKind.IDREF:
        problems.append(
            f"{c}: kind({element}, {field.name}) must be IDREF")
