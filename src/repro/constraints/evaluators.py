"""Per-constraint evaluators: one object per constraint in Σ, shared by
the batch checker and the incremental revalidation engine.

Each evaluator owns *residual state* in the style of counting-based
incremental view maintenance (Gupta–Mumick): key evaluators keep
key-value multiplicity counts, foreign-key evaluators keep reference
counts of target values/rows, inverse evaluators keep the set of
violated pairings.  Two entry points drive them:

- :meth:`ConstraintEvaluator.full` — (re)build the state from an
  :class:`~repro.datamodel.indexes.AttributeIndex` in one pass over the
  relevant extensions; this is what :func:`repro.constraints.checker.check`
  does for the batch path.
- :meth:`ConstraintEvaluator.apply_delta` — fold a :class:`Delta` (added
  / removed / attribute-touched vertices) into the state in time
  proportional to the delta and its incident references, never the
  document.  This is what
  :class:`repro.incremental.DocumentSession.revalidate` builds on.

:meth:`ConstraintEvaluator.emit` reports the *current* violations; after
any sequence of deltas the emitted set equals what a from-scratch
:func:`~repro.constraints.checker.check` would produce (the property
tests replay random edit scripts to assert exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.constraints.violations import ViolationReport
from repro.datamodel.indexes import AttributeIndex
from repro.datamodel.tree import Vertex
from repro.errors import ConstraintError
from repro.obs.metrics import NULL_INSTRUMENT


@dataclass
class Delta:
    """One batch of document changes, as seen by the evaluators.

    ``added``/``removed`` list whole vertices entering/leaving the
    attached tree; ``touched`` lists vertices that stayed but whose
    attributes or child text (the value source of §3.4 sub-element
    fields) changed; ``id_values`` collects every declared-ID value
    gained or lost anywhere in the batch, for the document-wide clash
    bookkeeping of ``L_id``.
    """

    added: list[Vertex] = dataclass_field(default_factory=list)
    removed: list[Vertex] = dataclass_field(default_factory=list)
    touched: list[Vertex] = dataclass_field(default_factory=list)
    id_values: set[str] = dataclass_field(default_factory=set)


class FieldIndex:
    """``value -> owners`` for one (label, field), with per-vertex cache.

    Unlike the tree-wide :class:`AttributeIndex` this also covers
    §3.4 *sub-element* fields, whose values live in child text rather
    than attributes.  The per-vertex cache makes removal independent of
    the vertex's current (possibly already mutated) state.
    """

    __slots__ = ("label", "field", "cached", "owners")

    def __init__(self, label: str, field: Field):
        self.label = label
        self.field = field
        self.cached: dict[int, frozenset[str]] = {}
        self.owners: dict[str, dict[int, Vertex]] = {}

    def add(self, v: Vertex) -> tuple[frozenset[str], set[str]]:
        """Index ``v``; returns (its values, the values newly owned)."""
        values = self.field.values_on(v)
        self.cached[v.vid] = values
        appeared: set[str] = set()
        for value in values:
            if value not in self.owners:
                appeared.add(value)
            self.owners.setdefault(value, {})[v.vid] = v
        return values, appeared

    def remove(self, v: Vertex) -> tuple[frozenset[str], set[str]]:
        """Unindex ``v``; returns (its cached values, the values orphaned)."""
        values = self.cached.pop(v.vid, frozenset())
        disappeared: set[str] = set()
        for value in values:
            owners = self.owners.get(value)
            if owners is None:
                continue
            owners.pop(v.vid, None)
            if not owners:
                del self.owners[value]
                disappeared.add(value)
        return values, disappeared

    def refresh(self, v: Vertex) -> tuple[frozenset[str], frozenset[str],
                                          set[str], set[str]]:
        """Re-read ``v``; returns (old, new, appeared, disappeared)."""
        old = self.cached.get(v.vid, frozenset())
        new = self.field.values_on(v)
        if new == old:
            return old, new, set(), set()
        self.cached[v.vid] = new
        appeared: set[str] = set()
        disappeared: set[str] = set()
        for value in old - new:
            owners = self.owners.get(value)
            if owners is not None:
                owners.pop(v.vid, None)
                if not owners:
                    del self.owners[value]
                    disappeared.add(value)
        for value in new - old:
            if value not in self.owners:
                appeared.add(value)
            self.owners.setdefault(value, {})[v.vid] = v
        return old, new, appeared, disappeared

    def values_of(self, vid: int) -> frozenset[str]:
        return self.cached.get(vid, frozenset())

    def count(self, value: str) -> int:
        return len(self.owners.get(value, {}))

    def owners_of(self, value: str) -> list[Vertex]:
        return list(self.owners.get(value, {}).values())

    def clear(self) -> None:
        self.cached.clear()
        self.owners.clear()


class ConstraintEvaluator:
    """Base class: state shared by the batch and incremental paths."""

    #: Shard locality (*Distributed XML Design*): ``"local"`` when the
    #: constraint is fully decided inside one document — every ``L`` /
    #: ``L_u`` constraint quantifies over one document's extensions —
    #: and ``"merge"`` when corpus-wide semantics need a coordinator
    #: fold over per-document aggregates (the ``L_id`` classes: ID
    #: uniqueness and IDREF reference resolution span documents).
    locality: str = "local"

    def __init__(self, constraint: Constraint, index: AttributeIndex,
                 id_map: dict[str, str]):
        self.constraint = constraint
        self.index = index
        self.id_map = id_map
        #: the element labels whose vertices can affect this constraint
        self.labels: frozenset[str] = frozenset()
        # Observability is off by default; attach_obs() swaps the null
        # instruments for live per-constraint counters.  Hot paths gate
        # on the plain bool so the disabled path costs one branch.
        self._count = False
        self.c_visited = NULL_INSTRUMENT
        self.c_hits = NULL_INSTRUMENT
        self.c_misses = NULL_INSTRUMENT
        self.c_violations = NULL_INSTRUMENT

    def attach_obs(self, obs) -> None:
        """Bind per-constraint counters (label: ``constraint``).

        Counter semantics, kept exact so tests can assert ground truth:

        - ``evaluator_vertices_visited`` — vertices folded into the
          residual state: every extension member during :meth:`full`,
          every label-relevant vertex of each :class:`Delta`.
        - ``evaluator_index_hits`` / ``_misses`` — lookups of a source
          value/row against the maintained target-side (or key-group /
          ``id_owners``) index: hit when the value was already present.
        - ``evaluator_violations`` — violations emitted, cumulative
          across :meth:`emit` calls.
        """
        if not obs:
            return
        labels = {"constraint": str(self.constraint)}
        self._count = True
        self.c_visited = obs.counter(
            "evaluator_vertices_visited", labels,
            help="vertices folded into per-constraint residual state")
        self.c_hits = obs.counter(
            "evaluator_index_hits", labels,
            help="source-value lookups that found the value indexed")
        self.c_misses = obs.counter(
            "evaluator_index_misses", labels,
            help="source-value lookups that found nothing")
        self.c_violations = obs.counter(
            "evaluator_violations", labels,
            help="violations emitted, cumulative across emits")

    # -- delta protocol -------------------------------------------------------

    def full(self) -> None:
        """(Re)build the residual state from the index, one ext pass."""
        raise NotImplementedError

    def add(self, v: Vertex) -> None:
        """A vertex entered the attached tree."""

    def remove(self, v: Vertex) -> None:
        """A vertex left the attached tree."""

    def refresh(self, v: Vertex) -> None:
        """An attached vertex's attributes or child text changed."""

    def id_values_changed(self, values: set[str]) -> None:
        """Declared-ID values changed ownership somewhere in the tree."""

    def apply_delta(self, delta: Delta) -> None:
        """Fold one batch of changes into the residual state."""
        n = 0
        for v in delta.removed:
            if v.label in self.labels:
                self.remove(v)
                n += 1
        for v in delta.added:
            if v.label in self.labels:
                self.add(v)
                n += 1
        for v in delta.touched:
            if v.label in self.labels:
                self.refresh(v)
                n += 1
        if delta.id_values:
            self.id_values_changed(delta.id_values)
        if self._count and n:
            self.c_visited.add(n)

    def emit(self, report: ViolationReport) -> None:
        """Append the current violations to ``report``."""
        before = len(report)
        self._emit(report)
        if self._count:
            self.c_violations.add(len(report) - before)

    def _emit(self, report: ViolationReport) -> None:
        raise NotImplementedError

    def corpus_aggregate(self) -> "dict | None":
        """The JSON-safe partial aggregate a shard node exports for the
        coordinator's merge fold, or None for shard-local constraints.

        Only meaningful after :meth:`full`; merge-class evaluators
        override this.  The aggregate must be a deterministic function
        of the document (sorted values, document-order vertices) so the
        coordinator fold is identical across shard counts.
        """
        return None


def _row_of(v: Vertex, fields: tuple[Field, ...]) -> tuple[str, ...] | None:
    """The value row of ``v`` along ``fields``; None unless all single."""
    row: list[str] = []
    for f in fields:
        value = f.single_on(v)
        if value is None:
            return None
        row.append(value)
    return tuple(row)


class KeyEvaluator(ConstraintEvaluator):
    """``tau[X] -> tau`` via key-value multiplicity counts.

    ``groups`` maps each complete value row to its owners; ``dups``
    tracks (in first-violated order) the rows owned more than once.
    """

    def __init__(self, constraint, index, id_map,
                 fields: tuple[Field, ...]):
        super().__init__(constraint, index, id_map)
        self.element: str = constraint.element
        self.fields = fields
        self.labels = frozenset((self.element,))
        self.rows: dict[int, tuple[str, ...] | None] = {}
        self.groups: dict[tuple[str, ...], dict[int, Vertex]] = {}
        self.dups: dict[tuple[str, ...], None] = {}

    def full(self) -> None:
        self.rows.clear()
        self.groups.clear()
        self.dups.clear()
        ext = self.index.extension(self.element)
        for v in ext:
            self.add(v)
        if self._count:
            self.c_visited.add(len(ext))

    def add(self, v: Vertex) -> None:
        row = _row_of(v, self.fields)
        self.rows[v.vid] = row
        if row is None:
            return
        if self._count:
            (self.c_hits if row in self.groups else self.c_misses).inc()
        group = self.groups.setdefault(row, {})
        group[v.vid] = v
        if len(group) == 2:
            self.dups[row] = None

    def remove(self, v: Vertex) -> None:
        row = self.rows.pop(v.vid, None)
        if row is None:
            return
        group = self.groups.get(row)
        if group is None:
            return
        group.pop(v.vid, None)
        if len(group) < 2:
            self.dups.pop(row, None)
        if not group:
            del self.groups[row]

    def refresh(self, v: Vertex) -> None:
        if v.vid not in self.rows:
            self.add(v)
            return
        if _row_of(v, self.fields) == self.rows[v.vid]:
            return
        self.remove(v)
        self.add(v)

    def _emit(self, report: ViolationReport) -> None:
        for row in self.dups:
            group = self.groups[row]
            report.add(
                "key",
                f"{len(group)} {self.element!r} elements share key value "
                f"{row!r}", str(self.constraint), tuple(group.values()))


class ForeignKeyEvaluator(ConstraintEvaluator):
    """``tau[X] ⊆ tau'[Y]`` via reference counts of target key rows."""

    def __init__(self, constraint: ForeignKey, index, id_map):
        super().__init__(constraint, index, id_map)
        self.element = constraint.element
        self.fields = constraint.fields
        self.target = constraint.target
        self.target_fields = constraint.target_fields
        self.labels = frozenset((self.element, self.target))
        self.src_rows: dict[int, tuple[str, ...] | None] = {}
        self.src_by_row: dict[tuple[str, ...], dict[int, Vertex]] = {}
        self.incomplete: dict[int, Vertex] = {}
        self.dangling: dict[int, Vertex] = {}
        self.target_rows: dict[int, tuple[str, ...] | None] = {}
        self.target_count: dict[tuple[str, ...], int] = {}

    def full(self) -> None:
        for store in (self.src_rows, self.src_by_row, self.incomplete,
                      self.dangling, self.target_rows, self.target_count):
            store.clear()
        targets = self.index.extension(self.target)
        for v in targets:
            self._add_target(v)
        sources = self.index.extension(self.element)
        for v in sources:
            self._add_source(v)
        if self._count:
            self.c_visited.add(len(targets) + len(sources))

    def add(self, v: Vertex) -> None:
        if v.label == self.target:
            self._add_target(v)
        if v.label == self.element:
            self._add_source(v)

    def remove(self, v: Vertex) -> None:
        if v.label == self.element:
            self._remove_source(v)
        if v.label == self.target:
            self._remove_target(v)

    def refresh(self, v: Vertex) -> None:
        if v.label == self.target:
            if v.vid not in self.target_rows:
                self._add_target(v)
            elif _row_of(v, self.target_fields) != self.target_rows[v.vid]:
                self._remove_target(v)
                self._add_target(v)
        if v.label == self.element:
            if v.vid not in self.src_rows:
                self._add_source(v)
            elif _row_of(v, self.fields) != self.src_rows[v.vid]:
                self._remove_source(v)
                self._add_source(v)

    def _add_target(self, v: Vertex) -> None:
        row = _row_of(v, self.target_fields)
        self.target_rows[v.vid] = row
        if row is None:
            return
        n = self.target_count.get(row, 0)
        self.target_count[row] = n + 1
        if n == 0:  # the row just became available: resolve its references
            for vid in self.src_by_row.get(row, {}):
                self.dangling.pop(vid, None)

    def _remove_target(self, v: Vertex) -> None:
        row = self.target_rows.pop(v.vid, None)
        if row is None:
            return
        n = self.target_count[row] - 1
        if n:
            self.target_count[row] = n
        else:
            del self.target_count[row]
            for vid, sv in self.src_by_row.get(row, {}).items():
                self.dangling[vid] = sv

    def _add_source(self, v: Vertex) -> None:
        row = _row_of(v, self.fields)
        self.src_rows[v.vid] = row
        if row is None:
            self.incomplete[v.vid] = v
            return
        self.src_by_row.setdefault(row, {})[v.vid] = v
        resolved = bool(self.target_count.get(row))
        if self._count:
            (self.c_hits if resolved else self.c_misses).inc()
        if not resolved:
            self.dangling[v.vid] = v

    def _remove_source(self, v: Vertex) -> None:
        if v.vid not in self.src_rows:
            return
        row = self.src_rows.pop(v.vid)
        if row is None:
            self.incomplete.pop(v.vid, None)
            return
        by_row = self.src_by_row.get(row)
        if by_row is not None:
            by_row.pop(v.vid, None)
            if not by_row:
                del self.src_by_row[row]
        self.dangling.pop(v.vid, None)

    def _emit(self, report: ViolationReport) -> None:
        for vid, v in self.dangling.items():
            report.add(
                "foreign-key",
                f"{self.element!r} element has {self.src_rows[vid]!r} with "
                f"no matching {self.target!r} key",
                str(self.constraint), (v,))
        for v in self.incomplete.values():
            report.add(
                "foreign-key",
                f"{self.element!r} element lacks single values for "
                "the foreign-key fields", str(self.constraint), (v,))


class ValueForeignKeyEvaluator(ConstraintEvaluator):
    """Unary / set-valued / ID foreign keys via target value counts.

    ``missing`` counts, per source vertex, how many of its values have no
    owner on the target side; transitions of a target value between zero
    and positive ownership adjust exactly the sources indexed under that
    value in ``src_by_value``.
    """

    def __init__(self, constraint, index, id_map, *, set_valued: bool,
                 target_field: Field, id_style: bool):
        super().__init__(constraint, index, id_map)
        self.element = constraint.element
        self.field: Field = constraint.field
        self.target = constraint.target
        self.set_valued = set_valued
        self.id_style = id_style
        # L_id reference constraints resolve against corpus-wide IDs
        self.locality = "merge" if id_style else "local"
        self.code = "set-foreign-key" if set_valued else "foreign-key"
        self.labels = frozenset((self.element, self.target))
        self.targets = FieldIndex(self.target, target_field)
        self.src_values: dict[int, frozenset[str]] = {}
        self.src_by_value: dict[str, dict[int, Vertex]] = {}
        self.not_single: set[int] = set()
        self.missing: dict[int, int] = {}
        self.violating: dict[int, Vertex] = {}

    def full(self) -> None:
        self.targets.clear()
        for store in (self.src_values, self.src_by_value, self.missing,
                      self.violating):
            store.clear()
        self.not_single.clear()
        targets = self.index.extension(self.target)
        for v in targets:
            self.targets.add(v)
        sources = self.index.extension(self.element)
        for v in sources:
            self._add_source(v)
        if self._count:
            self.c_visited.add(len(targets) + len(sources))

    def add(self, v: Vertex) -> None:
        if v.label == self.target:
            _values, appeared = self.targets.add(v)
            self._cover(appeared)
        if v.label == self.element:
            self._add_source(v)

    def remove(self, v: Vertex) -> None:
        if v.label == self.element:
            self._remove_source(v)
        if v.label == self.target:
            _values, disappeared = self.targets.remove(v)
            self._uncover(disappeared)

    def refresh(self, v: Vertex) -> None:
        if v.label == self.target:
            _old, _new, appeared, disappeared = self.targets.refresh(v)
            self._cover(appeared)
            self._uncover(disappeared)
        if v.label == self.element:
            if v.vid not in self.src_values:
                self._add_source(v)
            elif self.field.values_on(v) != self.src_values[v.vid]:
                self._remove_source(v)
                self._add_source(v)

    def _cover(self, appeared: set[str]) -> None:
        for value in appeared:
            for vid in self.src_by_value.get(value, {}):
                self.missing[vid] -= 1
                if not self.missing[vid] and vid not in self.not_single:
                    self.violating.pop(vid, None)

    def _uncover(self, disappeared: set[str]) -> None:
        for value in disappeared:
            for vid, sv in self.src_by_value.get(value, {}).items():
                self.missing[vid] += 1
                self.violating.setdefault(vid, sv)

    def _add_source(self, v: Vertex) -> None:
        values = self.field.values_on(v)
        self.src_values[v.vid] = values
        miss = 0
        for value in values:
            self.src_by_value.setdefault(value, {})[v.vid] = v
            if not self.targets.count(value):
                miss += 1
        if self._count and values:
            self.c_misses.add(miss)
            self.c_hits.add(len(values) - miss)
        self.missing[v.vid] = miss
        bad = miss > 0
        if not self.set_valued and len(values) != 1:
            self.not_single.add(v.vid)
            bad = True
        if bad:
            self.violating[v.vid] = v

    def _remove_source(self, v: Vertex) -> None:
        values = self.src_values.pop(v.vid, None)
        if values is None:
            return
        for value in values:
            by_value = self.src_by_value.get(value)
            if by_value is not None:
                by_value.pop(v.vid, None)
                if not by_value:
                    del self.src_by_value[value]
        self.missing.pop(v.vid, None)
        self.not_single.discard(v.vid)
        self.violating.pop(v.vid, None)

    def _emit(self, report: ViolationReport) -> None:
        for vid, v in self.violating.items():
            if vid in self.not_single:
                report.add(
                    self.code,
                    f"{self.element!r} element lacks a single "
                    f"{self.field} value", str(self.constraint), (v,))
                continue
            missing = sorted(value for value in self.src_values[vid]
                             if not self.targets.count(value))
            if self.id_style:
                message = (f"value(s) {missing!r} are not IDs of "
                           f"{self.target!r} elements")
            else:
                message = (f"value(s) {missing!r} not among "
                           f"{self.target}.{self.targets.field} values")
            report.add(self.code, message, str(self.constraint), (v,))

    def corpus_aggregate(self) -> "dict | None":
        if not self.id_style:
            return None
        missing = sorted(value for value in self.src_by_value
                         if not self.targets.count(value))
        return {"kind": "ref",
                "missing": missing,
                "targets": sorted(self.targets.owners)}


class _InverseDirection:
    """One implication direction of an inverse constraint:

    ``∀x ∈ ext(a), y ∈ ext(b): x.key_a ∈ y.field_b → y.key_b ∈ x.field_a``

    ``pairs`` holds the violated (x, y) pairings; any change to x or y
    triggers recomputation of exactly the pairs incident to it, found
    through the two value->owners indexes.
    """

    __slots__ = ("a_label", "key_a", "field_a", "b_label", "key_b",
                 "field_b", "key_a_index", "field_b_index", "pairs",
                 "by_x", "by_y", "_count", "c_hits", "c_misses")

    def __init__(self, a_label: str, key_a: Field, field_a: Field,
                 b_label: str, key_b: Field, field_b: Field):
        self.a_label = a_label
        self.key_a = key_a
        self.field_a = field_a
        self.b_label = b_label
        self.key_b = key_b
        self.field_b = field_b
        self.key_a_index = FieldIndex(a_label, key_a)
        self.field_b_index = FieldIndex(b_label, field_b)
        self.pairs: dict[tuple[int, int], tuple[Vertex, Vertex, str]] = {}
        self.by_x: dict[int, set[int]] = {}
        self.by_y: dict[int, set[int]] = {}
        self._count = False
        self.c_hits = NULL_INSTRUMENT
        self.c_misses = NULL_INSTRUMENT

    def clear(self) -> None:
        self.key_a_index.clear()
        self.field_b_index.clear()
        self.pairs.clear()
        self.by_x.clear()
        self.by_y.clear()

    def index_vertex(self, v: Vertex) -> None:
        if v.label == self.a_label:
            self.key_a_index.add(v)
        if v.label == self.b_label:
            self.field_b_index.add(v)

    def unindex_vertex(self, v: Vertex) -> None:
        if v.label == self.a_label:
            self.key_a_index.remove(v)
            self.drop_x(v.vid)
        if v.label == self.b_label:
            self.field_b_index.remove(v)
            self.drop_y(v.vid)

    def refresh_vertex(self, v: Vertex) -> None:
        if v.label == self.a_label:
            self.key_a_index.refresh(v)
        if v.label == self.b_label:
            self.field_b_index.refresh(v)

    def drop_x(self, vid: int) -> None:
        for yvid in self.by_x.pop(vid, ()):
            self.pairs.pop((vid, yvid), None)
            peers = self.by_y.get(yvid)
            if peers is not None:
                peers.discard(vid)
                if not peers:
                    del self.by_y[yvid]

    def drop_y(self, vid: int) -> None:
        for xvid in self.by_y.pop(vid, ()):
            self.pairs.pop((xvid, vid), None)
            peers = self.by_x.get(xvid)
            if peers is not None:
                peers.discard(vid)
                if not peers:
                    del self.by_x[xvid]

    def recompute_x(self, x: Vertex) -> None:
        """Re-derive every pair whose key-owning side is ``x``."""
        self.drop_x(x.vid)
        key_value = self.key_a.single_on(x)
        if key_value is None:
            return
        for y in self.field_b_index.owners_of(key_value):
            self._judge(x, key_value, y)

    def recompute_y(self, y: Vertex) -> None:
        """Re-derive every pair whose mentioning side is ``y``."""
        self.drop_y(y.vid)
        for value in self.field_b_index.values_of(y.vid):
            for x in self.key_a_index.owners_of(value):
                if self.key_a.single_on(x) == value:
                    self._judge(x, value, y)

    def _judge(self, x: Vertex, key_value: str, y: Vertex) -> None:
        back = self.key_b.single_on(y)
        if back is not None and back in self.field_a.values_on(x):
            if self._count:
                self.c_hits.inc()
            return
        if self._count:
            self.c_misses.inc()
        self.pairs[(x.vid, y.vid)] = (x, y, key_value)
        self.by_x.setdefault(x.vid, set()).add(y.vid)
        self.by_y.setdefault(y.vid, set()).add(x.vid)


class InverseEvaluator(ConstraintEvaluator):
    """``L_u`` / ``L_id`` inverse constraints via violated-pair state."""

    def __init__(self, constraint, index, id_map, *,
                 element: str, key_field: Field, field: Field,
                 target: str, target_key_field: Field, target_field: Field,
                 word: str):
        super().__init__(constraint, index, id_map)
        self.word = word  # "key" for L_u inverses, "ID" for L_id ones
        # ID inverses pair elements through corpus-wide ID values
        self.locality = "merge" if word == "ID" else "local"
        self.labels = frozenset((element, target))
        self.directions = (
            _InverseDirection(element, key_field, field,
                              target, target_key_field, target_field),
            _InverseDirection(target, target_key_field, target_field,
                              element, key_field, field),
        )

    def attach_obs(self, obs) -> None:
        super().attach_obs(obs)
        for d in self.directions:
            d._count = self._count
            d.c_hits = self.c_hits
            d.c_misses = self.c_misses

    def full(self) -> None:
        for d in self.directions:
            d.clear()
        n = 0
        for label in sorted(self.labels):
            ext = self.index.extension(label)
            n += len(ext)
            for v in ext:
                for d in self.directions:
                    d.index_vertex(v)
        for d in self.directions:
            for x in self.index.extension(d.a_label):
                d.recompute_x(x)
        if self._count:
            self.c_visited.add(n)

    def add(self, v: Vertex) -> None:
        for d in self.directions:
            d.index_vertex(v)
        self._recompute(v)

    def remove(self, v: Vertex) -> None:
        for d in self.directions:
            d.unindex_vertex(v)

    def refresh(self, v: Vertex) -> None:
        for d in self.directions:
            d.refresh_vertex(v)
        self._recompute(v)

    def _recompute(self, v: Vertex) -> None:
        for d in self.directions:
            if v.label == d.a_label:
                d.recompute_x(v)
            if v.label == d.b_label:
                d.recompute_y(v)

    def _emit(self, report: ViolationReport) -> None:
        for d in self.directions:
            for x, y, key_value in d.pairs.values():
                report.add(
                    "inverse",
                    f"{d.b_label!r} element references {d.a_label!r} "
                    f"{self.word} {key_value!r} but is not referenced back",
                    str(self.constraint), (x, y))

    def corpus_aggregate(self) -> "dict | None":
        if self.word != "ID":
            return None
        d = self.directions[0]

        def side(label: str, key_field: Field, ref_field: Field) -> list:
            return [[key_field.single_on(v),
                     sorted(ref_field.values_on(v))]
                    for v in self.index.extension(label)]

        return {"kind": "inverse",
                "element": side(d.a_label, d.key_a, d.field_a),
                "target": side(d.b_label, d.key_b, d.field_b)}


class IDConstraintEvaluator(ConstraintEvaluator):
    """``tau.id ->id tau``: document-wide uniqueness of ID values.

    Clash status is re-derived per changed ID value from the tree-wide
    ``id_owners`` index, which the caller keeps current.
    """

    locality = "merge"  # ID uniqueness is corpus-wide, not per-document

    def __init__(self, constraint: IDConstraint, index, id_map,
                 id_attr: str):
        super().__init__(constraint, index, id_map)
        self.element = constraint.element
        self.id_attr = id_attr
        self.labels = frozenset((self.element,))
        self.members: dict[int, Vertex] = {}
        self.not_single: dict[int, Vertex] = {}
        self.id_of: dict[int, str] = {}
        self.clashing: dict[int, Vertex] = {}

    def full(self) -> None:
        for store in (self.members, self.not_single, self.id_of,
                      self.clashing):
            store.clear()
        ext = self.index.extension(self.element)
        for v in ext:
            self.add(v)
        if self._count:
            self.c_visited.add(len(ext))

    def add(self, v: Vertex) -> None:
        self.members[v.vid] = v
        values = v.attr_or_empty(self.id_attr)
        if len(values) != 1:
            self.not_single[v.vid] = v
            return
        (value,) = values
        self.id_of[v.vid] = value
        if self._count:
            # id_owners already contains v itself; a second owner means
            # the document-wide index knew this value before v claimed it
            owners = self.index.id_owners.get(value)
            (self.c_hits if owners and len(owners) > 1
             else self.c_misses).inc()
        self._recheck_value(value)

    def remove(self, v: Vertex) -> None:
        self.members.pop(v.vid, None)
        self.not_single.pop(v.vid, None)
        self.clashing.pop(v.vid, None)
        value = self.id_of.pop(v.vid, None)
        if value is not None:
            self._recheck_value(value)

    def refresh(self, v: Vertex) -> None:
        if v.vid not in self.members:
            self.add(v)
            return
        values = v.attr_or_empty(self.id_attr)
        if len(values) == 1 and self.id_of.get(v.vid) == next(iter(values)):
            return
        self.remove(v)
        self.add(v)

    def id_values_changed(self, values: set[str]) -> None:
        for value in values:
            self._recheck_value(value)

    def _recheck_value(self, value: str) -> None:
        owners = self.index.id_owners.get(value, {})
        clash = len(owners) > 1
        for vid, owner in owners.items():
            if owner.label != self.element or vid not in self.id_of:
                continue
            if clash:
                self.clashing[vid] = owner
            else:
                self.clashing.pop(vid, None)

    def _emit(self, report: ViolationReport) -> None:
        for v in self.not_single.values():
            report.add("id",
                       f"{self.element!r} element lacks a single ID "
                       "value", str(self.constraint), (v,))
        for vid, v in self.clashing.items():
            value = self.id_of[vid]
            others = [o for o in self.index.id_owner_list(value)
                      if o is not v]
            report.add(
                "id-clash",
                f"ID value {value!r} is shared by multiple elements",
                str(self.constraint), (v, *others))

    def corpus_aggregate(self) -> "dict | None":
        owners_out = []
        for value in sorted(self.index.id_owners):
            owners = self.index.id_owners[value]
            n_element = sum(1 for vid, o in owners.items()
                            if o.label == self.element
                            and vid in self.id_of)
            owners_out.append([value, len(owners), n_element])
        return {"kind": "id", "owners": owners_out}


class StaticViolationEvaluator(ConstraintEvaluator):
    """A constraint that can never hold on this schema (e.g. an ``L_id``
    constraint over a type with no declared ID attribute)."""

    def __init__(self, constraint, index, id_map, code: str, message: str):
        super().__init__(constraint, index, id_map)
        self.code = code
        self.message = message

    def full(self) -> None:
        pass

    def _emit(self, report: ViolationReport) -> None:
        report.add(self.code, self.message, str(self.constraint))


def evaluator_for(constraint: Constraint, index: AttributeIndex,
                  id_map: dict[str, str], obs=None) -> ConstraintEvaluator:
    """The evaluator object implementing ``constraint`` over ``index``.

    With a truthy ``obs`` handle, the evaluator's per-constraint
    counters are live; by default they are shared no-ops.
    """
    ev = _make_evaluator(constraint, index, id_map)
    if obs:
        ev.attach_obs(obs)
    return ev


def _make_evaluator(constraint: Constraint, index: AttributeIndex,
                    id_map: dict[str, str]) -> ConstraintEvaluator:
    if isinstance(constraint, Key):
        return KeyEvaluator(constraint, index, id_map,
                            fields=constraint.fields)
    if isinstance(constraint, UnaryKey):
        return KeyEvaluator(constraint, index, id_map,
                            fields=(constraint.field,))
    if isinstance(constraint, ForeignKey):
        return ForeignKeyEvaluator(constraint, index, id_map)
    if isinstance(constraint, (UnaryForeignKey, SetValuedForeignKey)):
        return ValueForeignKeyEvaluator(
            constraint, index, id_map,
            set_valued=isinstance(constraint, SetValuedForeignKey),
            target_field=constraint.target_field, id_style=False)
    if isinstance(constraint, Inverse):
        return InverseEvaluator(
            constraint, index, id_map,
            element=constraint.element, key_field=constraint.key_field,
            field=constraint.field, target=constraint.target,
            target_key_field=constraint.target_key_field,
            target_field=constraint.target_field, word="key")
    if isinstance(constraint, IDConstraint):
        id_attr = id_map.get(constraint.element)
        if id_attr is None:
            return StaticViolationEvaluator(
                constraint, index, id_map, "id",
                f"element type {constraint.element!r} has no "
                "declared ID attribute")
        return IDConstraintEvaluator(constraint, index, id_map, id_attr)
    if isinstance(constraint, (IDForeignKey, IDSetValuedForeignKey)):
        set_valued = isinstance(constraint, IDSetValuedForeignKey)
        id_attr = id_map.get(constraint.target)
        if id_attr is None:
            return StaticViolationEvaluator(
                constraint, index, id_map,
                "set-foreign-key" if set_valued else "foreign-key",
                f"target type {constraint.target!r} has no "
                "declared ID attribute")
        return ValueForeignKeyEvaluator(
            constraint, index, id_map, set_valued=set_valued,
            target_field=Field(id_attr), id_style=True)
    if isinstance(constraint, IDInverse):
        id_a = id_map.get(constraint.element)
        id_b = id_map.get(constraint.target)
        if id_a is None or id_b is None:
            return StaticViolationEvaluator(
                constraint, index, id_map, "inverse",
                "both element types of an ID inverse need "
                "declared ID attributes")
        return InverseEvaluator(
            constraint, index, id_map,
            element=constraint.element, key_field=Field(id_a),
            field=constraint.field, target=constraint.target,
            target_key_field=Field(id_b),
            target_field=constraint.target_field, word="ID")
    raise ConstraintError(f"unknown constraint type {constraint!r}")
