"""Constraint satisfaction checking: ``G ⊨ Σ``.

Two implementations are provided:

- :func:`check` — builds an :class:`~repro.datamodel.indexes.AttributeIndex`
  in one pass (or reuses a caller-supplied one) and answers every
  constraint through the per-constraint evaluator objects of
  :mod:`repro.constraints.evaluators`, with hash lookups throughout.
  Total cost is O(size of the document + size of Σ) up to hashing,
  matching the complexity the paper's validation story presumes.  The
  same evaluators power the incremental revalidation engine
  (:mod:`repro.incremental`), so the batch and incremental paths cannot
  drift apart.
- :func:`check_naive` — the textbook nested-loop evaluation of the
  logical formulas, quadratic per key/inverse constraint.  Kept as the
  baseline for the E13 ablation benchmark, and as an executable
  specification: the property tests assert both checkers always agree.

For ``L_id`` constraints the DTD structure must be supplied so ``tau.id``
can be resolved to the concrete ID attribute of each element type.

These functions are the low-level entry points; prefer the
:class:`repro.Validator` facade, which bundles the schema once and
exposes batch checking, structural validation and incremental sessions
behind one object.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.constraints.base import Constraint
from repro.constraints.evaluators import evaluator_for
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.constraints.violations import ViolationReport
from repro.datamodel.indexes import AttributeIndex
from repro.datamodel.tree import DataTree, Vertex
from repro.errors import ConstraintError
from repro.obs import NULL_OBS

if TYPE_CHECKING:  # layering: constraints must not import dtd at runtime
    from repro.dtd.structure import DTDStructure


def check(tree: DataTree, constraints: Iterable[Constraint],
          structure: "DTDStructure | None" = None, *,
          index: AttributeIndex | None = None,
          obs=None) -> ViolationReport:
    """Check ``tree ⊨ Σ`` with hash indexes; returns a violation report.

    ``index`` may be a prebuilt :class:`AttributeIndex` over ``tree`` (it
    must have been built with the structure's ID-attribute map for
    ``L_id`` constraints to resolve); when omitted, one is built here.
    ``obs`` is an optional :class:`repro.obs.Observability` handle: one
    ``check`` span with a per-constraint ``evaluate`` child each, plus
    the evaluators' vertex/hit/violation counters.

    .. deprecated:: prefer ``repro.Validator(dtd).check(tree)``, which
       normalizes the argument order across all entry points.
    """
    obs = obs or NULL_OBS
    id_map = structure.id_attribute_map() if structure is not None else {}
    report = ViolationReport()
    with obs.span("check") as span:
        if index is None:
            index = AttributeIndex(tree, id_attributes=id_map, obs=obs)
        n = 0
        for constraint in constraints:
            n += 1
            with obs.span("evaluate", constraint=str(constraint)):
                evaluator = evaluator_for(constraint, index, id_map,
                                          obs=obs)
                evaluator.full()
                evaluator.emit(report)
        span.set(constraints=n, violations=len(report))
    return report


def check_constraint(tree: DataTree, constraint: Constraint,
                     structure: "DTDStructure | None" = None, *,
                     index: AttributeIndex | None = None) -> bool:
    """Whether ``tree ⊨ constraint`` (no report, just a boolean).

    Callers looping over many constraints should build one
    :class:`AttributeIndex` and pass it as ``index`` so the
    one-pass-over-the-document cost is paid once, not per call.
    """
    return check(tree, (constraint,), structure, index=index).ok


# ---------------------------------------------------------------------------
# Naive (quadratic) checking — the executable specification
# ---------------------------------------------------------------------------


def check_naive(tree: DataTree, constraints: Iterable[Constraint],
                structure: "DTDStructure | None" = None) -> ViolationReport:
    """Nested-loop evaluation of the defining formulas (E13 baseline).

    Reports one violation per violated constraint (without pinpointing
    every witness), so compare with :func:`check` on ``ok``/violated
    constraint sets rather than on violation counts.
    """
    id_map = structure.id_attribute_map() if structure is not None else {}
    report = ViolationReport()
    for constraint in constraints:
        if not _holds_naive(tree, constraint, id_map):
            report.add("violated", "constraint does not hold",
                       str(constraint))
    return report


def _ext(tree: DataTree, label: str) -> list[Vertex]:
    return [v for v in tree.root.subtree() if v.label == label]


def _holds_naive(tree: DataTree, constraint: Constraint,
                 id_map: dict[str, str]) -> bool:
    if isinstance(constraint, (Key, UnaryKey)):
        fields = constraint.fields if isinstance(constraint, Key) \
            else (constraint.field,)
        ext = _ext(tree, constraint.element)
        for i, x in enumerate(ext):
            for y in ext[i + 1:]:
                xr = [f.single_on(x) for f in fields]
                yr = [f.single_on(y) for f in fields]
                if None not in xr and xr == yr:
                    return False
        return True
    if isinstance(constraint, ForeignKey):
        targets = _ext(tree, constraint.target)
        for x in _ext(tree, constraint.element):
            xr = [f.single_on(x) for f in constraint.fields]
            if None in xr:
                return False
            if not any(xr == [f.single_on(y)
                              for f in constraint.target_fields]
                       for y in targets):
                return False
        return True
    if isinstance(constraint, UnaryForeignKey):
        target_values = {val for y in _ext(tree, constraint.target)
                         for val in constraint.target_field.values_on(y)}
        return all(
            constraint.field.single_on(x) in target_values
            for x in _ext(tree, constraint.element))
    if isinstance(constraint, SetValuedForeignKey):
        target_values = {val for y in _ext(tree, constraint.target)
                         for val in constraint.target_field.values_on(y)}
        return all(constraint.field.values_on(x) <= target_values
                   for x in _ext(tree, constraint.element))
    if isinstance(constraint, Inverse):
        for x in _ext(tree, constraint.element):
            for y in _ext(tree, constraint.target):
                xk = constraint.key_field.single_on(x)
                yk = constraint.target_key_field.single_on(y)
                if xk is not None and \
                        xk in constraint.target_field.values_on(y):
                    if yk is None or yk not in constraint.field.values_on(x):
                        return False
                if yk is not None and yk in constraint.field.values_on(x):
                    if xk is None or \
                            xk not in constraint.target_field.values_on(y):
                        return False
        return True
    if isinstance(constraint, IDConstraint):
        id_attr = id_map.get(constraint.element)
        if id_attr is None:
            return False
        for x in _ext(tree, constraint.element):
            values = x.attr_or_empty(id_attr)
            if len(values) != 1:
                return False
            (s,) = values
            for y in tree.root.subtree():
                if y is x:
                    continue
                y_id = id_map.get(y.label)
                if y_id is not None and s in y.attr_or_empty(y_id):
                    return False
        return True
    if isinstance(constraint, (IDForeignKey, IDSetValuedForeignKey)):
        id_attr = id_map.get(constraint.target)
        if id_attr is None:
            return False
        target_ids = {val for y in _ext(tree, constraint.target)
                      for val in y.attr_or_empty(id_attr)}
        for x in _ext(tree, constraint.element):
            values = constraint.field.values_on(x)
            if isinstance(constraint, IDForeignKey) and len(values) != 1:
                return False
            if not values <= target_ids:
                return False
        return True
    if isinstance(constraint, IDInverse):
        id_a = id_map.get(constraint.element)
        id_b = id_map.get(constraint.target)
        if id_a is None or id_b is None:
            return False
        for x in _ext(tree, constraint.element):
            for y in _ext(tree, constraint.target):
                x_ids = x.attr_or_empty(id_a)
                y_ids = y.attr_or_empty(id_b)
                x_id = next(iter(x_ids)) if len(x_ids) == 1 else None
                y_id = next(iter(y_ids)) if len(y_ids) == 1 else None
                if x_id is not None and \
                        x_id in constraint.target_field.values_on(y):
                    if y_id is None or \
                            y_id not in constraint.field.values_on(x):
                        return False
                if y_id is not None and y_id in constraint.field.values_on(x):
                    if x_id is None or \
                            x_id not in constraint.target_field.values_on(y):
                        return False
        return True
    raise ConstraintError(f"unknown constraint type {constraint!r}")
