"""Constraint satisfaction checking: ``G ⊨ Σ``.

Two implementations are provided:

- :func:`check` — builds an :class:`~repro.datamodel.indexes.AttributeIndex`
  in one pass and answers every constraint with hash lookups.  Total cost
  is O(size of the document + size of Σ) up to hashing, matching the
  complexity the paper's validation story presumes.
- :func:`check_naive` — the textbook nested-loop evaluation of the
  logical formulas, quadratic per key/inverse constraint.  Kept as the
  baseline for the E13 ablation benchmark, and as an executable
  specification: the property tests assert both checkers always agree.

For ``L_id`` constraints the DTD structure must be supplied so ``tau.id``
can be resolved to the concrete ID attribute of each element type.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.constraints.violations import ViolationReport
from repro.datamodel.indexes import AttributeIndex
from repro.datamodel.tree import DataTree, Vertex
from repro.errors import ConstraintError

if TYPE_CHECKING:  # layering: constraints must not import dtd at runtime
    from repro.dtd.structure import DTDStructure


def check(tree: DataTree, constraints: Iterable[Constraint],
          structure: "DTDStructure | None" = None) -> ViolationReport:
    """Check ``tree ⊨ Σ`` with hash indexes; returns a violation report."""
    id_map = structure.id_attribute_map() if structure is not None else {}
    index = AttributeIndex(tree, id_attributes=id_map)
    report = ViolationReport()
    for constraint in constraints:
        _check_indexed(constraint, index, id_map, report)
    return report


def check_constraint(tree: DataTree, constraint: Constraint,
                     structure: "DTDStructure | None" = None) -> bool:
    """Whether ``tree ⊨ constraint`` (no report, just a boolean)."""
    return check(tree, (constraint,), structure).ok


# ---------------------------------------------------------------------------
# Indexed checking
# ---------------------------------------------------------------------------


def _field_rows(index: AttributeIndex, element: str,
                fields: tuple[Field, ...]
                ) -> list[tuple[Vertex, tuple[str, ...]]]:
    """Pairs (vertex, value-row) for vertices where all fields are single."""
    out: list[tuple[Vertex, tuple[str, ...]]] = []
    for v in index.extension(element):
        row: list[str] = []
        ok = True
        for f in fields:
            value = f.single_on(v)
            if value is None:
                ok = False
                break
            row.append(value)
        if ok:
            out.append((v, tuple(row)))
    return out


def _check_indexed(constraint: Constraint, index: AttributeIndex,
                   id_map: dict[str, str], report: ViolationReport) -> None:
    if isinstance(constraint, Key):
        _key(constraint, constraint.element, constraint.fields, index, report)
    elif isinstance(constraint, UnaryKey):
        _key(constraint, constraint.element, (constraint.field,), index,
             report)
    elif isinstance(constraint, ForeignKey):
        _foreign_key(constraint, index, report)
    elif isinstance(constraint, UnaryForeignKey):
        _unary_fk(constraint, index, report, set_valued=False)
    elif isinstance(constraint, SetValuedForeignKey):
        _unary_fk(constraint, index, report, set_valued=True)
    elif isinstance(constraint, Inverse):
        _inverse(constraint, index, report)
    elif isinstance(constraint, IDConstraint):
        _id_constraint(constraint, index, id_map, report)
    elif isinstance(constraint, (IDForeignKey, IDSetValuedForeignKey)):
        _id_fk(constraint, index, id_map, report,
               set_valued=isinstance(constraint, IDSetValuedForeignKey))
    elif isinstance(constraint, IDInverse):
        _id_inverse(constraint, index, id_map, report)
    else:
        raise ConstraintError(f"unknown constraint type {constraint!r}")


def _key(constraint: Constraint, element: str, fields: tuple[Field, ...],
         index: AttributeIndex, report: ViolationReport) -> None:
    groups: dict[tuple[str, ...], list[Vertex]] = {}
    for v, row in _field_rows(index, element, fields):
        groups.setdefault(row, []).append(v)
    for row, vertices in groups.items():
        if len(vertices) > 1:
            report.add(
                "key",
                f"{len(vertices)} {element!r} elements share key value "
                f"{row!r}", str(constraint), tuple(vertices))


def _foreign_key(constraint: ForeignKey, index: AttributeIndex,
                 report: ViolationReport) -> None:
    target_rows = {row for _, row in _field_rows(
        index, constraint.target, constraint.target_fields)}
    for v, row in _field_rows(index, constraint.element, constraint.fields):
        if row not in target_rows:
            report.add(
                "foreign-key",
                f"{constraint.element!r} element has {row!r} with no "
                f"matching {constraint.target!r} key", str(constraint), (v,))
    # An element on which some FK field is missing/multi-valued cannot
    # satisfy "exists a matching y"; flag those too.
    complete = {v.vid for v, _ in _field_rows(
        index, constraint.element, constraint.fields)}
    for v in index.extension(constraint.element):
        if v.vid not in complete:
            report.add(
                "foreign-key",
                f"{constraint.element!r} element lacks single values for "
                "the foreign-key fields", str(constraint), (v,))


def _unary_fk(constraint, index: AttributeIndex, report: ViolationReport,
              set_valued: bool) -> None:
    target_values = index.value_set(constraint.target,
                                    constraint.target_field.name) \
        if not constraint.target_field.is_element else {
            val for v in index.extension(constraint.target)
            for val in constraint.target_field.values_on(v)}
    code = "set-foreign-key" if set_valued else "foreign-key"
    for v in index.extension(constraint.element):
        values = constraint.field.values_on(v)
        if not set_valued:
            if len(values) != 1:
                report.add(code,
                           f"{constraint.element!r} element lacks a single "
                           f"{constraint.field} value", str(constraint), (v,))
                continue
        missing = values - target_values
        if missing:
            report.add(
                code,
                f"value(s) {sorted(missing)!r} not among "
                f"{constraint.target}.{constraint.target_field} values",
                str(constraint), (v,))


def _inverse(constraint: Inverse, index: AttributeIndex,
             report: ViolationReport) -> None:
    # Direction 1: x in ext(tau), y in ext(tau'):  x.l_k in y.l' -> y.l_k' in x.l
    _inverse_direction(
        constraint, index, report,
        constraint.element, constraint.key_field, constraint.field,
        constraint.target, constraint.target_key_field, constraint.target_field)
    # Direction 2 (symmetric).
    _inverse_direction(
        constraint, index, report,
        constraint.target, constraint.target_key_field, constraint.target_field,
        constraint.element, constraint.key_field, constraint.field)


def _inverse_direction(constraint, index: AttributeIndex,
                       report: ViolationReport,
                       element: str, key_field: Field, field: Field,
                       other: str, other_key: Field, other_field: Field
                       ) -> None:
    """Check ``∀x∈ext(element) ∀y∈ext(other): x.key ∈ y.other_field →
    y.other_key ∈ x.field`` using the value->owners index."""
    for x in index.extension(element):
        key_value = key_field.single_on(x)
        if key_value is None:
            continue
        mentions = index.vertices_with_value(other, other_field.name,
                                             key_value) \
            if not other_field.is_element else [
                y for y in index.extension(other)
                if key_value in other_field.values_on(y)]
        x_values = field.values_on(x)
        for y in mentions:
            back = other_key.single_on(y)
            if back is None or back not in x_values:
                report.add(
                    "inverse",
                    f"{other!r} element references {element!r} key "
                    f"{key_value!r} but is not referenced back",
                    str(constraint), (x, y))


def _id_constraint(constraint: IDConstraint, index: AttributeIndex,
                   id_map: dict[str, str], report: ViolationReport) -> None:
    id_attr = id_map.get(constraint.element)
    if id_attr is None:
        report.add("id", f"element type {constraint.element!r} has no "
                   "declared ID attribute", str(constraint))
        return
    for v in index.extension(constraint.element):
        values = v.attr_or_empty(id_attr)
        if len(values) != 1:
            report.add("id",
                       f"{constraint.element!r} element lacks a single ID "
                       "value", str(constraint), (v,))
            continue
        (value,) = values
        owners = index.id_owners.get(value, [])
        clashing = [o for o in owners if o is not v]
        if clashing:
            report.add(
                "id-clash",
                f"ID value {value!r} is shared by multiple elements",
                str(constraint), (v, *clashing))


def _id_fk(constraint, index: AttributeIndex, id_map: dict[str, str],
           report: ViolationReport, set_valued: bool) -> None:
    id_attr = id_map.get(constraint.target)
    code = "set-foreign-key" if set_valued else "foreign-key"
    if id_attr is None:
        report.add(code, f"target type {constraint.target!r} has no "
                   "declared ID attribute", str(constraint))
        return
    target_ids = index.value_set(constraint.target, id_attr)
    for v in index.extension(constraint.element):
        values = constraint.field.values_on(v)
        if not set_valued and len(values) != 1:
            report.add(code,
                       f"{constraint.element!r} element lacks a single "
                       f"{constraint.field} value", str(constraint), (v,))
            continue
        missing = values - target_ids
        if missing:
            report.add(
                code,
                f"value(s) {sorted(missing)!r} are not IDs of "
                f"{constraint.target!r} elements", str(constraint), (v,))


def _id_inverse(constraint: IDInverse, index: AttributeIndex,
                id_map: dict[str, str], report: ViolationReport) -> None:
    id_a = id_map.get(constraint.element)
    id_b = id_map.get(constraint.target)
    if id_a is None or id_b is None:
        report.add("inverse", "both element types of an ID inverse need "
                   "declared ID attributes", str(constraint))
        return
    _id_inverse_direction(constraint, index, report,
                          constraint.element, id_a, constraint.field,
                          constraint.target, id_b, constraint.target_field)
    _id_inverse_direction(constraint, index, report,
                          constraint.target, id_b, constraint.target_field,
                          constraint.element, id_a, constraint.field)


def _id_inverse_direction(constraint, index: AttributeIndex,
                          report: ViolationReport,
                          element: str, id_attr: str, field: Field,
                          other: str, other_id: str, other_field: Field
                          ) -> None:
    """``∀x∈ext(element) ∀y∈ext(other): x.id ∈ y.other_field →
    y.id ∈ x.field``."""
    for x in index.extension(element):
        x_ids = x.attr_or_empty(id_attr)
        if len(x_ids) != 1:
            continue
        (x_id,) = x_ids
        x_values = field.values_on(x)
        for y in index.vertices_with_value(other, other_field.name, x_id):
            y_ids = y.attr_or_empty(other_id)
            if len(y_ids) != 1 or next(iter(y_ids)) not in x_values:
                report.add(
                    "inverse",
                    f"{other!r} element references {element!r} ID "
                    f"{x_id!r} but is not referenced back",
                    str(constraint), (x, y))


# ---------------------------------------------------------------------------
# Naive (quadratic) checking — the executable specification
# ---------------------------------------------------------------------------


def check_naive(tree: DataTree, constraints: Iterable[Constraint],
                structure: "DTDStructure | None" = None) -> ViolationReport:
    """Nested-loop evaluation of the defining formulas (E13 baseline).

    Reports one violation per violated constraint (without pinpointing
    every witness), so compare with :func:`check` on ``ok``/violated
    constraint sets rather than on violation counts.
    """
    id_map = structure.id_attribute_map() if structure is not None else {}
    report = ViolationReport()
    for constraint in constraints:
        if not _holds_naive(tree, constraint, id_map):
            report.add("violated", "constraint does not hold",
                       str(constraint))
    return report


def _ext(tree: DataTree, label: str) -> list[Vertex]:
    return [v for v in tree.root.subtree() if v.label == label]


def _holds_naive(tree: DataTree, constraint: Constraint,
                 id_map: dict[str, str]) -> bool:
    if isinstance(constraint, (Key, UnaryKey)):
        fields = constraint.fields if isinstance(constraint, Key) \
            else (constraint.field,)
        ext = _ext(tree, constraint.element)
        for i, x in enumerate(ext):
            for y in ext[i + 1:]:
                xr = [f.single_on(x) for f in fields]
                yr = [f.single_on(y) for f in fields]
                if None not in xr and xr == yr:
                    return False
        return True
    if isinstance(constraint, ForeignKey):
        targets = _ext(tree, constraint.target)
        for x in _ext(tree, constraint.element):
            xr = [f.single_on(x) for f in constraint.fields]
            if None in xr:
                return False
            if not any(xr == [f.single_on(y)
                              for f in constraint.target_fields]
                       for y in targets):
                return False
        return True
    if isinstance(constraint, UnaryForeignKey):
        target_values = {val for y in _ext(tree, constraint.target)
                         for val in constraint.target_field.values_on(y)}
        return all(
            constraint.field.single_on(x) in target_values
            for x in _ext(tree, constraint.element))
    if isinstance(constraint, SetValuedForeignKey):
        target_values = {val for y in _ext(tree, constraint.target)
                         for val in constraint.target_field.values_on(y)}
        return all(constraint.field.values_on(x) <= target_values
                   for x in _ext(tree, constraint.element))
    if isinstance(constraint, Inverse):
        for x in _ext(tree, constraint.element):
            for y in _ext(tree, constraint.target):
                xk = constraint.key_field.single_on(x)
                yk = constraint.target_key_field.single_on(y)
                if xk is not None and \
                        xk in constraint.target_field.values_on(y):
                    if yk is None or yk not in constraint.field.values_on(x):
                        return False
                if yk is not None and yk in constraint.field.values_on(x):
                    if xk is None or \
                            xk not in constraint.target_field.values_on(y):
                        return False
        return True
    if isinstance(constraint, IDConstraint):
        id_attr = id_map.get(constraint.element)
        if id_attr is None:
            return False
        for x in _ext(tree, constraint.element):
            values = x.attr_or_empty(id_attr)
            if len(values) != 1:
                return False
            (s,) = values
            for y in tree.root.subtree():
                if y is x:
                    continue
                y_id = id_map.get(y.label)
                if y_id is not None and s in y.attr_or_empty(y_id):
                    return False
        return True
    if isinstance(constraint, (IDForeignKey, IDSetValuedForeignKey)):
        id_attr = id_map.get(constraint.target)
        if id_attr is None:
            return False
        target_ids = {val for y in _ext(tree, constraint.target)
                      for val in y.attr_or_empty(id_attr)}
        for x in _ext(tree, constraint.element):
            values = constraint.field.values_on(x)
            if isinstance(constraint, IDForeignKey) and len(values) != 1:
                return False
            if not values <= target_ids:
                return False
        return True
    if isinstance(constraint, IDInverse):
        id_a = id_map.get(constraint.element)
        id_b = id_map.get(constraint.target)
        if id_a is None or id_b is None:
            return False
        for x in _ext(tree, constraint.element):
            for y in _ext(tree, constraint.target):
                x_ids = x.attr_or_empty(id_a)
                y_ids = y.attr_or_empty(id_b)
                x_id = next(iter(x_ids)) if len(x_ids) == 1 else None
                y_id = next(iter(y_ids)) if len(y_ids) == 1 else None
                if x_id is not None and \
                        x_id in constraint.target_field.values_on(y):
                    if y_id is None or \
                            y_id not in constraint.field.values_on(x):
                        return False
                if y_id is not None and y_id in constraint.field.values_on(x):
                    if x_id is None or \
                            x_id not in constraint.target_field.values_on(y):
                        return False
        return True
    raise ConstraintError(f"unknown constraint type {constraint!r}")
