"""The basic XML constraint languages L, L_u and L_id (§2.2).

Constraint objects are immutable, hashable dataclasses.  Fields of a
constraint may be *attributes* or (per §3.4) *unique sub-elements*; both
are represented by :class:`Field`.

- ``L``   : :class:`Key` (``tau[X] -> tau``) and :class:`ForeignKey`
  (``tau[X] ⊆ tau'[Y]``);
- ``L_u`` : :class:`UnaryKey`, :class:`UnaryForeignKey`,
  :class:`SetValuedForeignKey`, :class:`Inverse`;
- ``L_id``: :class:`UnaryKey`, :class:`IDConstraint`,
  :class:`IDForeignKey`, :class:`IDSetValuedForeignKey`,
  :class:`IDInverse`.

Satisfaction is checked with :func:`check` (indexed, near-linear) or
:func:`check_naive` (quadratic baseline, kept for the E13 ablation);
well-formedness against a DTD structure with :func:`well_formed`.
"""

from repro.constraints.base import Constraint, Field, Language, attr, elem
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.checker import check, check_constraint, check_naive
from repro.constraints.violations import Violation, ViolationReport
from repro.constraints.wellformed import well_formed
from repro.constraints.parser import parse_constraint, parse_constraints

__all__ = [
    "Constraint", "Field", "Language", "attr", "elem",
    "Key", "ForeignKey",
    "UnaryKey", "UnaryForeignKey", "SetValuedForeignKey", "Inverse",
    "IDConstraint", "IDForeignKey", "IDSetValuedForeignKey", "IDInverse",
    "check", "check_constraint", "check_naive",
    "Violation", "ViolationReport", "well_formed",
    "parse_constraint", "parse_constraints",
]
