"""Independent checking of derivation trees.

Every implication engine returns a :class:`Derivation` when it answers
"implied".  This module re-validates those proofs *without trusting the
engines*: each rule application is checked syntactically against the
paper's axiom schemas, leaves must be members of Σ (or instances of the
reflexivity/definition axioms), and the root must conclude φ.  The test
suite runs every engine over a corpus and asserts all emitted proofs
check — a second, independent line of defense for the §3 results.

Checked rule schemas (conclusions and premises are re-parsed from their
string forms with the library's own constraint parser):

=================  ==========================================================
``given``          conclusion ∈ Σ
``reflexivity``    trivially valid conclusions (``x ⊆ x``, ``ρ = ϱ``)
``UK-FK``          key ``τ.l → τ``  ⊢  ``τ.l ⊆ τ.l``
``UFK-K``/``SFK-K`` foreign key ⊢ its target key
``UFK-trans``/``USFK-trans``  chains of inclusions compose end to end
``Inv-SFK``        inverse + two keys ⊢ a derived set-valued foreign key
``FK-ID``/``SFK-ID``  L_id foreign key ⊢ target ID constraint
``Inv-SFK-ID``     L_id inverse ⊢ a derived set-valued foreign key
``ID-FK``          ID constraint ⊢ ``τ.id ⊆ τ.id``
``ID-Key``         ID constraint ⊢ ``τ.id → τ`` (documented completion)
``cycle-rule``     conclusion is the reverse of the premise inclusion
``PK-FK``          a key ⊢ its reflexive foreign key
``PFK-K``          a foreign key ⊢ its target key
``PFK-perm``       premise and conclusion are canonical-equal
``PFK-trans``      alignments compose
``primary-key``    conclusion's field set is stated or FK-induced in Σ
``K-augment``      premise key's fields ⊆ conclusion key's fields
=================  ==========================================================
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.base import Constraint
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lid import (
    IDConstraint, IDForeignKey, IDInverse, IDSetValuedForeignKey,
)
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.constraints.parser import parse_constraint
from repro.errors import ConstraintSyntaxError
from repro.implication.result import Derivation


def check_derivation(derivation: Derivation,
                     sigma: Iterable[Constraint]) -> list[str]:
    """All problems found in the proof tree (empty list = proof checks)."""
    stated = {str(c) for c in sigma}
    # Inverse constraints match up to flip.
    for c in sigma:
        if isinstance(c, (Inverse, IDInverse)):
            stated.add(str(c.flipped()))
    problems: list[str] = []
    _check_node(derivation, stated, problems)
    return problems


def _parse(text: str):
    try:
        return parse_constraint(text)
    except ConstraintSyntaxError:
        return None


def _check_node(node: Derivation, stated: set[str],
                problems: list[str]) -> None:
    for premise in node.premises:
        _check_node(premise, stated, problems)
    checker = _CHECKERS.get(node.rule)
    if checker is None:
        problems.append(f"unknown rule {node.rule!r} concluding "
                        f"{node.conclusion!r}")
        return
    error = checker(node, stated)
    if error:
        problems.append(f"{node.rule}: {error} (concluding "
                        f"{node.conclusion!r})")


# -- rule handlers -----------------------------------------------------------


def _rule_given(node: Derivation, stated: set[str]) -> str | None:
    # Engines attach helper premises (e.g. key facts for an inverse);
    # the conclusion itself must be stated.
    if node.conclusion in stated:
        return None
    return "conclusion is not a member of Sigma"


def _rule_reflexivity(node: Derivation, _stated) -> str | None:
    c = _parse(node.conclusion)
    if isinstance(c, UnaryForeignKey) and c.element == c.target and \
            c.field == c.target_field:
        return None
    if isinstance(c, ForeignKey) and c.element == c.target and \
            c.fields == c.target_fields:
        return None
    if c is None:
        return None  # path-constraint reflexivity; textual by design
    return "conclusion is not a reflexive inclusion"


def _conclusion_and_single_premise(node: Derivation):
    c = _parse(node.conclusion)
    p = _parse(node.premises[0].conclusion) if node.premises else None
    return c, p


def _rule_uk_fk(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, UnaryForeignKey) and isinstance(p, UnaryKey) and \
            c.element == c.target == p.element and \
            c.field == c.target_field == p.field:
        return None
    return "not an instance of UK-FK"


def _rule_ufk_k(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, UnaryKey) and \
            isinstance(p, (UnaryForeignKey, SetValuedForeignKey)) and \
            p.target == c.element and p.target_field == c.field:
        return None
    return "premise foreign key does not target the concluded key"


def _rule_trans(node, _stated) -> str | None:
    links = [_parse(p.conclusion) for p in node.premises]
    c = _parse(node.conclusion)
    if not links or c is None or None in links:
        return "unparseable chain"
    ok_types = (UnaryForeignKey, SetValuedForeignKey)
    if not isinstance(c, ok_types) or \
            not all(isinstance(l, ok_types) for l in links):
        return "chain members must be unary inclusions"
    if (links[0].element, links[0].field) != (c.element, c.field):
        return "chain does not start at the conclusion's source"
    if (links[-1].target, links[-1].target_field) != \
            (c.target, c.target_field):
        return "chain does not end at the conclusion's target"
    for a, b in zip(links, links[1:]):
        if (a.target, a.target_field) != (b.element, b.field):
            return "adjacent chain links do not connect"
    return None


def _rule_inv_sfk(node, _stated) -> str | None:
    c = _parse(node.conclusion)
    premises = [_parse(p.conclusion) for p in node.premises]
    inverse = next((p for p in premises if isinstance(p, Inverse)), None)
    if not isinstance(c, SetValuedForeignKey) or inverse is None:
        return "needs an inverse premise and an SFK conclusion"
    for cand in (inverse, inverse.flipped()):
        derived = cand.implied_foreign_keys()[0]
        if derived == c:
            return None
    return "conclusion is not one of the inverse's derived foreign keys"


def _rule_fk_id(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, IDConstraint) and \
            isinstance(p, (IDForeignKey, IDSetValuedForeignKey)) and \
            p.target == c.element:
        return None
    return "premise does not target the concluded ID constraint"


def _rule_inv_sfk_id(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, IDSetValuedForeignKey) and isinstance(p, IDInverse):
        for cand in (p, p.flipped()):
            if cand.implied_foreign_keys()[0] == c:
                return None
    return "conclusion is not one of the inverse's derived foreign keys"


def _rule_id_fk(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, IDForeignKey) and isinstance(p, IDConstraint) and \
            c.element == c.target == p.element and c.field.name == "id":
        return None
    return "not the reflexive id inclusion of the premise's type"


def _rule_id_key(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, UnaryKey) and isinstance(p, IDConstraint) and \
            c.element == p.element and c.field.name == "id":
        return None
    return "not the id-key of the premise's type"


def _rule_cycle(node, _stated) -> str | None:
    if not node.premises:
        return None  # cycle-derived keys carry no syntactic premise
    c = _parse(node.conclusion.replace("subseteq", "sub"))
    p = _parse(node.premises[0].conclusion.replace("subseteq", "sub"))
    ok_types = (UnaryForeignKey, SetValuedForeignKey)
    if isinstance(c, ok_types) and isinstance(p, ok_types) and \
            (c.element, c.field) == (p.target, p.target_field) and \
            (c.target, c.target_field) == (p.element, p.field):
        return None
    return "conclusion is not the reverse of the premise inclusion"


def _rule_pk_fk(node, _stated) -> str | None:
    c = _parse(node.conclusion)
    if isinstance(c, (ForeignKey, UnaryForeignKey)) and \
            c.element == c.target:
        fields = c.fields if isinstance(c, ForeignKey) else (c.field,)
        targets = c.target_fields if isinstance(c, ForeignKey) \
            else (c.target_field,)
        if fields == targets:
            return None
    return "conclusion is not a reflexive foreign key"


def _rule_pfk_k(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    key_fields = None
    if isinstance(c, Key):
        key_fields = c.field_set
    elif isinstance(c, UnaryKey):
        key_fields = frozenset((c.field,))
    if key_fields is None:
        return "conclusion is not a key"
    if isinstance(p, ForeignKey) and p.target == c.element and \
            frozenset(p.target_fields) == key_fields:
        return None
    if isinstance(p, UnaryForeignKey) and p.target == c.element and \
            frozenset((p.target_field,)) == key_fields:
        return None
    return "premise foreign key does not target the concluded key"


def _rule_pfk_perm(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, ForeignKey) and isinstance(p, ForeignKey) and \
            c.canonical() == p.canonical():
        return None
    return "premise and conclusion are not permutations of each other"


def _rule_pfk_trans(node, _stated) -> str | None:
    from repro.implication.l_primary import _compose

    c = _parse(node.conclusion)
    links = [_parse(p.conclusion) for p in node.premises]
    if len(links) != 2 or not all(isinstance(l, ForeignKey)
                                  for l in links) or \
            not isinstance(c, ForeignKey):
        return "needs two foreign-key premises"
    composed = _compose(links[0], links[1])
    if composed is not None and composed.canonical() == c.canonical():
        return None
    return "premises do not compose to the conclusion"


def _rule_primary_key(node, stated) -> str | None:
    c = _parse(node.conclusion)
    if isinstance(c, UnaryKey):
        c = Key(c.element, (c.field,))
    if not isinstance(c, Key):
        return "conclusion is not a key"
    for text in stated:
        s = _parse(text)
        if isinstance(s, UnaryKey):
            s = Key(s.element, (s.field,))
        if isinstance(s, Key) and s.element == c.element and \
                s.field_set == c.field_set:
            return None
        if isinstance(s, UnaryForeignKey) and s.target == c.element and \
                frozenset((s.target_field,)) == c.field_set:
            return None
        if isinstance(s, ForeignKey) and s.target == c.element and \
                frozenset(s.target_fields) == c.field_set:
            return None
    return "key is neither stated nor induced by a stated foreign key"


def _rule_k_augment(node, _stated) -> str | None:
    c, p = _conclusion_and_single_premise(node)
    if isinstance(c, UnaryKey):
        c = Key(c.element, (c.field,))
    if isinstance(p, UnaryKey):
        p = Key(p.element, (p.field,))
    if isinstance(c, Key) and isinstance(p, Key) and \
            p.element == c.element and p.field_set <= c.field_set:
        return None
    return "premise key is not a subset of the conclusion key"


_CHECKERS = {
    "given": _rule_given,
    "reflexivity": _rule_reflexivity,
    "UK-FK": _rule_uk_fk,
    "UFK-K": _rule_ufk_k,
    "SFK-K": _rule_ufk_k,
    "UFK-trans": _rule_trans,
    "USFK-trans": _rule_trans,
    "Inv-SFK": _rule_inv_sfk,
    "FK-ID": _rule_fk_id,
    "SFK-ID": _rule_fk_id,
    "Inv-SFK-ID": _rule_inv_sfk_id,
    "ID-FK": _rule_id_fk,
    "ID-Key": _rule_id_key,
    "cycle-rule": _rule_cycle,
    "PK-FK": _rule_pk_fk,
    "PFK-K": _rule_pfk_k,
    "PFK-perm": _rule_pfk_perm,
    "PFK-trans": _rule_pfk_trans,
    "primary-key": _rule_primary_key,
    "K-augment": _rule_k_augment,
}
