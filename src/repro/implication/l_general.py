"""General ``L`` constraints: the undecidable regime (§3.3, Theorem 3.6).

Without the primary-key restriction, implication and finite implication
of multi-attribute keys + foreign keys are **undecidable** — the paper
proves this by reduction from implication of functional + inclusion
dependencies (Mitchell; Chandra–Vardi).  An exact decider therefore
cannot exist; :class:`LGeneralEngine` offers the three things that can:

- :meth:`prove` — a **sound but incomplete** saturation prover using the
  rules that remain sound without the restriction (PK-FK, PFK-K,
  PFK-perm, PFK-trans, plus key augmentation ``tau[X] -> tau ⊢
  tau[X ∪ Y] -> tau``, which is semantically sound though absent from
  ``I_p``).  A ``True`` answer is a real proof; ``False`` means "no
  proof found", nothing more.
- :meth:`refute` — bounded finite-model refutation via the relational
  chase: element types become relations with an extra ``#vid`` attribute
  (so that "same values" does not collapse distinct vertices), keys
  become FDs ``X -> #vid``, foreign keys become INDs, and the implicit
  ``#vid -> everything`` FD ties rows to vertices.  A terminating chase
  yields a finite counterexample (valid against both implication
  flavours) or establishes the goal.
- :meth:`decide` — prove, then chase, then honestly report
  ``UNKNOWN`` — the operational content of Theorem 3.6.

:func:`fd_ind_to_l` is the executable face of the reduction *direction*
the paper uses: it embeds an FD+IND implication instance whose FDs are
key-based and whose INDs target keys into ``L`` verbatim, and
:func:`l_to_fd_ind` is the (always applicable) reverse translation used
by the chase.  E7 exhibits a finitely-valid consequence the sound rules
miss — the reason no ``I_p``-style finite axiomatization can exist
outside the primary restriction.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import UnaryForeignKey, UnaryKey
from repro.errors import LanguageMismatchError, UndecidableProblemError
from repro.implication.l_primary import _compose
from repro.implication.result import Derivation, ImplicationResult, given
from repro.obs import NULL_OBS
from repro.relational.chase import ChaseOutcome, ChaseResult, chase
from repro.relational.fd import FD
from repro.relational.ind import IND
from repro.relational.schema import Database, RelationSchema

VID = "#vid"


def _normalize(constraints: Iterable[Constraint]) -> list[Constraint]:
    out: list[Constraint] = []
    for c in constraints:
        if isinstance(c, UnaryKey):
            out.append(Key(c.element, (c.field,)))
        elif isinstance(c, UnaryForeignKey):
            out.append(ForeignKey(c.element, (c.field,), c.target,
                                  (c.target_field,)))
        elif isinstance(c, (Key, ForeignKey)):
            out.append(c)
        else:
            raise LanguageMismatchError(f"{c} is not an L constraint")
    return out


def l_to_fd_ind(sigma: Iterable[Constraint],
                scope: Iterable[Constraint] = ()
                ) -> tuple[Database, list[FD], list[IND]]:
    """Translate L constraints over element types into FDs + INDs.

    Every element type becomes a relation over its mentioned fields plus
    the reserved ``#vid`` attribute distinguishing vertices; a key
    ``tau[X] -> tau`` becomes ``X -> #vid`` and ``#vid`` determines all
    fields (vertices carry their values).

    ``scope`` contributes extra constraints (typically the query φ) to
    the *schema* — their types and fields get relations/attributes — but
    NOT to the translated dependency set.
    """
    sigma = _normalize(sigma)
    fields: dict[str, set[str]] = {}
    for c in sigma + _normalize(scope):
        if isinstance(c, Key):
            fields.setdefault(c.element, set()).update(
                str(f) for f in c.fields)
        else:
            fields.setdefault(c.element, set()).update(
                str(f) for f in c.fields)
            fields.setdefault(c.target, set()).update(
                str(f) for f in c.target_fields)
    database = Database(
        RelationSchema(t, tuple(sorted(fs)) + (VID,))
        for t, fs in sorted(fields.items()))
    fds: list[FD] = []
    inds: list[IND] = []
    for t, fs in sorted(fields.items()):
        fds.append(FD(t, frozenset((VID,)), frozenset(fs) | {VID}))
    for c in sigma:
        if isinstance(c, Key):
            fds.append(FD(c.element,
                          frozenset(str(f) for f in c.fields),
                          frozenset((VID,))))
        else:
            inds.append(IND(c.element, tuple(str(f) for f in c.fields),
                            c.target,
                            tuple(str(f) for f in c.target_fields)))
    return database, fds, inds


def fd_ind_to_l(fds: Iterable[FD], inds: Iterable[IND],
                relation_attrs: dict[str, tuple[str, ...]]
                ) -> list[Constraint]:
    """Embed a *key-based* FD+IND instance into ``L`` verbatim.

    Supported fragment: every FD's right-hand side covers its relation
    (i.e. it is a key) and every IND targets such a key — exactly the
    shapes ``L`` expresses.  Raises :class:`ValueError` outside it; the
    general reduction of Theorem 3.6 needs auxiliary constructions the
    technical report develops, and the chase covers those cases
    semantically instead.
    """
    constraints: list[Constraint] = []
    key_sets: dict[str, list[frozenset[str]]] = {}
    for fd in fds:
        attrs = frozenset(relation_attrs[fd.relation])
        if not (fd.lhs | fd.rhs) >= attrs:
            raise ValueError(
                f"{fd} is not key-shaped; the verbatim embedding needs "
                "X -> (all attributes)")
        constraints.append(
            Key(fd.relation, tuple(Field(a) for a in sorted(fd.lhs))))
        key_sets.setdefault(fd.relation, []).append(fd.lhs)
    for ind in inds:
        targets = frozenset(ind.target_attrs)
        if targets not in key_sets.get(ind.target, []):
            raise ValueError(
                f"{ind} does not target a key; the verbatim embedding "
                "requires foreign-key-shaped INDs")
        constraints.append(
            ForeignKey(ind.relation, tuple(Field(a) for a in ind.attrs),
                       ind.target,
                       tuple(Field(a) for a in ind.target_attrs)))
    return constraints


class LGeneralEngine:
    """Sound prover + bounded refuter for general ``L`` implication."""

    def __init__(self, sigma: Iterable[Constraint], obs=None):
        self.sigma = _normalize(sigma)
        self.obs = obs or NULL_OBS
        self.keys: dict[tuple[str, frozenset[Field]], Derivation] = {}
        self.fks: dict[ForeignKey, Derivation] = {}
        self._saturate()

    # -- sound saturation ---------------------------------------------------------

    def _count_rule(self, rule: str) -> None:
        self.obs.counter(
            "implication_rule_applications",
            {"engine": "l_general", "rule": rule},
            help="successful inference-rule applications").inc()

    def _saturate(self) -> None:
        obs = self.obs
        counting = obs.enabled
        queue: deque[ForeignKey] = deque()
        if counting:
            c_iters = obs.counter(
                "implication_closure_iterations", {"engine": "l_general"},
                help="worklist iterations of the closure computation")

        def add_key(element: str, fields: frozenset[Field],
                    d: Derivation) -> None:
            k = (element, fields)
            if k not in self.keys:
                self.keys[k] = d
                if counting:
                    self._count_rule(d.rule)

        def add_fk(fk: ForeignKey, d: Derivation) -> None:
            canon = fk.canonical()
            if canon not in self.fks:
                self.fks[canon] = d
                if counting:
                    self._count_rule(d.rule)
                queue.append(canon)

        with obs.span("l_general.saturate", sigma=len(self.sigma)) as span:
            for c in self.sigma:
                if isinstance(c, Key):
                    add_key(c.element, c.field_set, given(c))
                    ordered = tuple(sorted(c.field_set, key=str))
                    refl = ForeignKey(c.element, ordered, c.element, ordered)
                    add_fk(refl, Derivation(str(refl), "PK-FK", (given(c),)))
                else:
                    add_fk(c, given(c))
                    tk = c.implied_target_key()
                    add_key(c.target, frozenset(c.target_fields),
                            Derivation(str(tk), "PFK-K", (given(c),)))
            while queue:
                if counting:
                    c_iters.inc()
                fk = queue.popleft()
                for g in list(self.fks):
                    for left, right in ((fk, g), (g, fk)):
                        composed = _compose(left, right)
                        if composed is not None:
                            add_fk(composed, Derivation(
                                str(composed), "PFK-trans",
                                (self.fks[left], self.fks[right])))
            if counting:
                span.set(keys=len(self.keys), foreign_keys=len(self.fks))

    def prove(self, phi: Constraint) -> ImplicationResult:
        """Sound, incomplete proof search.  ``True`` is a proof;
        ``False`` only means the rules do not reach φ."""
        (phi,) = _normalize((phi,))
        if isinstance(phi, Key):
            d = self.keys.get((phi.element, phi.field_set))
            if d is not None:
                return ImplicationResult(True, derivation=d)
            # Key augmentation (sound; not in I_p): any derivable key
            # whose field set is contained in phi's proves phi.
            for (element, fields), base in self.keys.items():
                if element == phi.element and fields <= phi.field_set:
                    return ImplicationResult(True, derivation=Derivation(
                        str(phi), "K-augment", (base,)))
            return ImplicationResult(
                False, reason="no proof found (the rule system is "
                "incomplete for general L — Theorem 3.6)")
        d = self.fks.get(phi.canonical())
        if d is not None:
            return ImplicationResult(True, derivation=d)
        return ImplicationResult(
            False, reason="no proof found (the rule system is incomplete "
            "for general L — Theorem 3.6)")

    # -- bounded refutation ----------------------------------------------------------

    def _translated(self, phi: Constraint
                    ) -> tuple[Database, list[FD], list[IND], "FD | IND"]:
        database, fds, inds = l_to_fd_ind(self.sigma, scope=(phi,))
        (phi,) = _normalize((phi,))
        if isinstance(phi, Key):
            goal: "FD | IND" = FD(phi.element,
                                  frozenset(str(f) for f in phi.fields),
                                  frozenset((VID,)))
        else:
            goal = IND(phi.element, tuple(str(f) for f in phi.fields),
                       phi.target, tuple(str(f) for f in phi.target_fields))
        return database, fds, inds, goal

    def refute(self, phi: Constraint, max_steps: int = 2_000,
               max_rows: int = 2_000) -> ChaseResult:
        """Bounded chase; ``NOT_IMPLIED`` comes with a finite
        counterexample instance, ``IMPLIED`` with a chase certificate."""
        obs = self.obs
        database, fds, inds, goal = self._translated(phi)
        with obs.span("l_general.chase", query=str(phi)) as span:
            result = chase(database, fds, inds, goal,
                           max_steps=max_steps, max_rows=max_rows)
            if obs.enabled:
                span.set(outcome=result.outcome.value, steps=result.steps)
                if result.model is not None:
                    rows = sum(len(rs) for rs in result.model.rows.values())
                    span.set(counterexample_rows=rows)
                    obs.histogram(
                        "implication_counterexample_rows",
                        {"engine": "l_general"},
                        buckets=(1, 2, 4, 8, 16, 64, 256, 1024),
                        help="rows in chase-produced counterexample models",
                    ).observe(rows)
        return result

    # -- combined -----------------------------------------------------------------------

    def decide(self, phi: Constraint, max_steps: int = 2_000,
               max_rows: int = 2_000,
               strict: bool = False) -> ImplicationResult:
        """Prove, else chase, else report unknown.

        With ``strict=True`` an exhausted budget raises
        :class:`~repro.errors.UndecidableProblemError` instead of
        returning an inconclusive result (``details['outcome'] ==
        'unknown'``).
        """
        proved = self.prove(phi)
        if proved:
            return proved
        result = self.refute(phi, max_steps=max_steps, max_rows=max_rows)
        if result.outcome is ChaseOutcome.IMPLIED:
            return ImplicationResult(
                True, reason="established by the chase",
                details={"steps": result.steps})
        if result.outcome is ChaseOutcome.NOT_IMPLIED:
            return ImplicationResult(
                False, reason=result.reason,
                counterexample=result.model,
                details={"steps": result.steps})
        if strict:
            raise UndecidableProblemError(result.reason)
        return ImplicationResult(
            False, reason=result.reason,
            details={"outcome": "unknown", "steps": result.steps})
