"""Implication of ``L`` constraints under the primary-key restriction
(§3.3, Theorem 3.8, Corollary 3.9).

The restriction: each element type has at most one (minimal) key set,
and every foreign key into a type references that primary key.  Under
it, the system ``I_p`` is sound and complete for both implication and
finite implication (which therefore coincide)::

    PK-FK:     tau[X] -> tau                      ⊢  tau[X] ⊆ tau[X]
    PFK-K:     tau[X] ⊆ tau'[Y]                   ⊢  tau'[Y] -> tau'
    PFK-perm:  simultaneous permutation of both sides of a foreign key
    PFK-trans: tau1[X] ⊆ tau2[Y], tau2[Y] ⊆ tau3[Z] ⊢ tau1[X] ⊆ tau3[Z]

Implementation: a foreign key ``tau[X] ⊆ tau'[Y]`` is, up to PFK-perm,
exactly a *field alignment* — an injective map from the source fields
onto the target's primary key.  PFK-trans composes alignments when the
middle sequences coincide as sets (always the target's primary key under
the restriction).  The closure is a saturation over canonical
(sorted-source) alignments; the state space is bounded by
``|E|² × (max key width)!`` — the paper's closing PSPACE remark — but on
realistic schemas composition chains are short (exp E8 stresses the
factorial corner explicitly with wide keys).

Keys are implied only when equal *as sets* to a stated/derived key:
``I_p`` has no augmentation rule, deliberately — a query that would make
a second key for some type violates the restriction and is rejected with
:class:`~repro.errors.PrimaryKeyRestrictionError` instead of answered.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_l import ForeignKey, Key
from repro.constraints.lang_lu import UnaryForeignKey, UnaryKey
from repro.errors import LanguageMismatchError, PrimaryKeyRestrictionError
from repro.implication.result import Derivation, ImplicationResult, given
from repro.obs import NULL_OBS


def _normalize(constraints: Iterable[Constraint]) -> list[Constraint]:
    """Accept L constraints; lift unary L_u forms into L classes."""
    out: list[Constraint] = []
    for c in constraints:
        if isinstance(c, UnaryKey):
            out.append(Key(c.element, (c.field,)))
        elif isinstance(c, UnaryForeignKey):
            out.append(ForeignKey(c.element, (c.field,), c.target,
                                  (c.target_field,)))
        elif isinstance(c, (Key, ForeignKey)):
            out.append(c)
        else:
            raise LanguageMismatchError(f"{c} is not an L constraint")
    return out


class LPrimaryEngine:
    """Decider for (finite) implication of primary keys and foreign keys."""

    def __init__(self, sigma: Iterable[Constraint], obs=None):
        self.sigma = _normalize(sigma)
        self.obs = obs or NULL_OBS
        self.primary: dict[str, frozenset[Field]] = {}
        self._collect_keys()
        self.closure: dict[ForeignKey, Derivation] = {}
        self._saturate()

    # -- restriction validation ---------------------------------------------------

    def _collect_keys(self) -> None:
        """Gather the primary key of each type; enforce the restriction."""
        for c in self.sigma:
            key_sets: list[tuple[str, frozenset[Field]]] = []
            if isinstance(c, Key):
                key_sets.append((c.element, c.field_set))
            elif isinstance(c, ForeignKey):
                key_sets.append((c.target, frozenset(c.target_fields)))
            for element, fields in key_sets:
                existing = self.primary.get(element)
                if existing is None:
                    self.primary[element] = fields
                elif existing != fields:
                    raise PrimaryKeyRestrictionError(
                        f"element type {element!r} would have two key "
                        f"sets: {{{_fmt(existing)}}} and {{{_fmt(fields)}}}")

    # -- saturation ------------------------------------------------------------------

    def _saturate(self) -> None:
        """Close the stated foreign keys under PK-FK, PFK-perm and
        PFK-trans (canonical forms only).

        Composition candidates are indexed by source and target element
        type, so each pop touches only the foreign keys it can actually
        compose with — the closure is O(|closure| × out-degree) instead
        of O(|closure|²).
        """
        obs = self.obs
        counting = obs.enabled
        queue: deque[ForeignKey] = deque()
        by_element: dict[str, list[ForeignKey]] = {}
        by_target: dict[str, list[ForeignKey]] = {}
        if counting:
            rule_counters: dict[str, object] = {}

            def count_rule(rule: str) -> None:
                counter = rule_counters.get(rule)
                if counter is None:
                    counter = rule_counters[rule] = obs.counter(
                        "implication_rule_applications",
                        {"engine": "l_primary", "rule": rule},
                        help="successful inference-rule applications")
                counter.inc()
            c_iters = obs.counter(
                "implication_closure_iterations", {"engine": "l_primary"},
                help="worklist iterations of the closure computation")

        def add(fk: ForeignKey, d: Derivation) -> None:
            canon = fk.canonical()
            if canon in self.closure:
                return
            self.closure[canon] = d
            if counting:
                count_rule(d.rule)
            by_element.setdefault(canon.element, []).append(canon)
            by_target.setdefault(canon.target, []).append(canon)
            queue.append(canon)

        with obs.span("l_primary.closure", sigma=len(self.sigma)) as span:
            for element, fields in self.primary.items():
                ordered = tuple(sorted(fields, key=str))
                refl = ForeignKey(element, ordered, element, ordered)
                add(refl, Derivation(str(refl), "PK-FK",
                                     (given(str(Key(element, ordered))),)))
            for c in self.sigma:
                if isinstance(c, ForeignKey):
                    add(c, given(c))

            while queue:
                if counting:
                    c_iters.inc()
                fk = queue.popleft()
                # fk : tau1 -> tau2 composed with g : tau2 -> tau3 ...
                for g in list(by_element.get(fk.target, ())):
                    composed = _compose(fk, g)
                    if composed is not None:
                        add(composed, Derivation(
                            str(composed), "PFK-trans",
                            (self.closure[fk], self.closure[g])))
                # ... and g : tau0 -> tau1 composed with fk.
                for g in list(by_target.get(fk.element, ())):
                    composed = _compose(g, fk)
                    if composed is not None:
                        add(composed, Derivation(
                            str(composed), "PFK-trans",
                            (self.closure[g], self.closure[fk])))
            if counting:
                span.set(closure=len(self.closure))

    # -- queries ----------------------------------------------------------------------

    def implies(self, phi: Constraint) -> ImplicationResult:
        """Decide ``Σ ⊨ φ`` (equivalently ``Σ ⊨_f φ``, Theorem 3.8)."""
        (phi,) = _normalize((phi,))
        if isinstance(phi, Key):
            existing = self.primary.get(phi.element)
            if existing is not None and existing != phi.field_set:
                raise PrimaryKeyRestrictionError(
                    f"query key {{{_fmt(phi.field_set)}}} conflicts with "
                    f"the primary key {{{_fmt(existing)}}} of "
                    f"{phi.element!r}")
            if existing == phi.field_set:
                return ImplicationResult(
                    True, derivation=Derivation(str(phi), "primary-key"))
            return ImplicationResult(
                False, reason=f"{phi.element!r} has no derivable key")
        if isinstance(phi, ForeignKey):
            target_key = self.primary.get(phi.target)
            if target_key is not None and \
                    target_key != frozenset(phi.target_fields):
                raise PrimaryKeyRestrictionError(
                    f"query foreign key targets {{{_fmt(frozenset(phi.target_fields))}}} "
                    f"but the primary key of {phi.target!r} is "
                    f"{{{_fmt(target_key)}}}")
            canon = phi.canonical()
            d = self.closure.get(canon)
            if d is not None:
                if tuple(canon.fields) != tuple(phi.fields):
                    d = Derivation(str(phi), "PFK-perm", (d,))
                return ImplicationResult(True, derivation=d)
            return ImplicationResult(
                False, reason=f"{phi} is not derivable by I_p")
        raise LanguageMismatchError(f"{phi} is not an L constraint")

    def finitely_implies(self, phi: Constraint) -> ImplicationResult:
        """Alias of :meth:`implies`: the problems coincide (Thm 3.8)."""
        return self.implies(phi)

    def derivable_foreign_keys(self) -> list[ForeignKey]:
        """All canonical foreign keys in the ``I_p`` closure."""
        return sorted(self.closure, key=str)


def _fmt(fields: frozenset[Field]) -> str:
    return ", ".join(sorted(str(f) for f in fields))


def _compose(f: ForeignKey, g: ForeignKey) -> ForeignKey | None:
    """PFK-trans with PFK-perm folded in: compose ``f : tau1 -> tau2``
    with ``g : tau2 -> tau3`` when ``g``'s source fields are exactly the
    fields ``f`` targets (as sets)."""
    if f.target != g.element:
        return None
    if frozenset(f.target_fields) != frozenset(g.fields):
        return None
    align = g.alignment()
    new_targets = tuple(align[t] for t in f.target_fields)
    return ForeignKey(f.element, f.fields, g.target, new_targets)
