"""Implication and finite implication of basic XML constraints (§3).

One engine per result of the paper:

- :mod:`repro.implication.lid`       — Prop 3.1: the ``I_id`` system,
  linear-time (finite) implication for ``L_id``.
- :mod:`repro.implication.lu`        — Thm 3.2 / Cor 3.3: the ``I_u``
  system for implication and the cycle-rule (``I_u^f``) decision
  procedure for finite implication of ``L_u``; the two differ.
- :mod:`repro.implication.lu_primary` — Thm 3.4: under the primary-key
  restriction the two problems coincide.
- :mod:`repro.implication.l_primary` — Thm 3.8: the ``I_p`` system for
  multi-attribute primary keys and foreign keys.
- :mod:`repro.implication.l_general` — Thm 3.6: general ``L`` is
  undecidable; chase-based semi-decision, sound rule prover, bounded
  counterexample search.
- :mod:`repro.implication.counterexample` — witness construction for
  non-implication.

All deciders share the :class:`ImplicationResult` shape: a boolean plus
either a :class:`Derivation` (why it is implied) or a witness /
explanation (why it is not).
"""

from repro.implication.result import Derivation, ImplicationResult
from repro.implication.proofcheck import check_derivation
from repro.implication.lid import LidEngine, lid_closure
from repro.implication.lu import LuEngine
from repro.implication.lu_primary import LuPrimaryEngine
from repro.implication.l_primary import LPrimaryEngine
from repro.implication.l_general import LGeneralEngine

__all__ = [
    "Derivation", "ImplicationResult", "check_derivation",
    "LidEngine", "lid_closure", "LuEngine", "LuPrimaryEngine",
    "LPrimaryEngine", "LGeneralEngine",
]
