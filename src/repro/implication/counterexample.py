"""Witness construction for non-implication of ``L_u`` constraints.

Two constructions back the negative answers of the Theorem 3.2 /
Corollary 3.3 experiments:

- :func:`finite_counterexample` — when ``Σ ⊭_f φ``, build a concrete
  finite model of Σ violating φ.  The construction follows the
  completeness proof strategy (after Cosmadakis–Kanellakis–Vardi):
  value-equality classes are the SCCs of the finitely-closed inclusion
  graph; every class gets a base token plus the tokens of the classes
  that flow into it; key attributes enumerate their class's value set,
  so per-type cardinalities are equalized by forward-propagated padding;
  inverses are realized through a maximal consistent pairing.  The
  result is **always re-verified** with the independent evaluator before
  being returned; instances outside the supported fragment (e.g. one
  set-valued attribute shared by several inverse constraints) yield
  ``None`` rather than an unverified witness, and the randomized /
  exhaustive searchers in :mod:`repro.implication.search` cover those.
- :class:`InfiniteWitness` — when ``Σ ⊨_f φ`` but ``Σ ⊭ φ`` (the
  cycle-rule gap), no finite witness exists; the witness is an infinite
  model presented finitely: each attribute in the refuting cycle is an
  affine map on ℕ.  :meth:`InfiniteWitness.check` verifies Σ and ¬φ
  symbolically on the presented family, and
  :meth:`InfiniteWitness.prefix` materializes a finite prefix showing
  how the violation of Σ shrinks to the boundary as the prefix grows
  (the standard intuition for why only infinite models work).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from dataclasses import dataclass

from repro.constraints.base import Constraint, Field
from repro.constraints.lang_lu import (
    Inverse, SetValuedForeignKey, UnaryForeignKey, UnaryKey,
)
from repro.implication.lu import LuEngine, Node, _require_lu
from repro.implication.models import AbstractElement, AbstractModel


# ---------------------------------------------------------------------------
# Finite counterexamples (CKV-style token construction)
# ---------------------------------------------------------------------------


class _Classes:
    """Value-equality classes: SCCs of the finitely-closed inclusion
    graph, plus the token sets V(C) induced by the quotient DAG."""

    def __init__(self, engine: LuEngine, extra_nodes: Iterable[Node]):
        self.engine = engine
        nodes: set[Node] = set(engine.arities.single)
        nodes |= engine.arities.set_valued
        nodes |= set(engine.fin_keys)
        nodes |= set(engine.fin_edges)
        for out in engine.fin_edges.values():
            nodes |= set(out)
        nodes |= set(extra_nodes)
        self.nodes = nodes
        graph = {n: set(engine.fin_edges.get(n, {})) & nodes for n in nodes}
        comp = engine._sccs(graph)
        self.class_of: dict[Node, int] = {n: comp[n] for n in nodes}
        # Quotient DAG edges.
        self.succ: dict[int, set[int]] = {c: set() for c in
                                          set(self.class_of.values())}
        for n, out in graph.items():
            for m in out:
                a, b = self.class_of[n], self.class_of[m]
                if a != b:
                    self.succ[a].add(b)
        # Token sets: V(C) = {t_C'} for all C' that reach C, plus t_C.
        self.tokens: dict[int, set[str]] = {
            c: {f"t{c}"} for c in self.succ}
        order = self._topological()
        for c in order:  # sources first; propagate forward
            for d in self.succ[c]:
                self.tokens[d] |= self.tokens[c]
        self._pad_counter = itertools.count()

    def _topological(self) -> list[int]:
        indeg = {c: 0 for c in self.succ}
        for c, outs in self.succ.items():
            for d in outs:
                indeg[d] += 1
        order = [c for c, d in indeg.items() if d == 0]
        i = 0
        while i < len(order):
            c = order[i]
            i += 1
            for d in self.succ[c]:
                indeg[d] -= 1
                if indeg[d] == 0:
                    order.append(d)
        return order

    def pad(self, c: int, count: int) -> None:
        """Add ``count`` fresh tokens to class ``c`` and propagate them
        forward through the quotient DAG."""
        fresh = {f"p{next(self._pad_counter)}" for _ in range(count)}
        stack = [c]
        seen = {c}
        while stack:
            d = stack.pop()
            self.tokens[d] |= fresh
            for e in self.succ[d]:
                if e not in seen:
                    seen.add(e)
                    stack.append(e)

    def values(self, n: Node) -> set[str]:
        return self.tokens[self.class_of[n]]


def finite_counterexample(sigma: Iterable[Constraint], phi: Constraint,
                          verify: bool = True) -> AbstractModel | None:
    """Build a finite model of Σ violating φ, or ``None``.

    Precondition: the finite decider answers "not implied" — when
    ``Σ ⊨_f φ`` no such model exists and the function returns ``None``.
    """
    sigma = list(_require_lu(sigma))
    engine = LuEngine(sigma)
    if engine.finitely_implies(phi):
        return None
    phi_nodes = _nodes_of(phi)
    classes = _Classes(engine, phi_nodes)
    builder = _ModelBuilder(engine, classes, sigma)
    model = builder.build(phi)
    if model is None:
        return None
    if verify and not (model.satisfies_all(sigma)
                       and not model.satisfies(phi)):
        return None
    return model


def _nodes_of(c: Constraint) -> list[Node]:
    if isinstance(c, UnaryKey):
        return [(c.element, c.field)]
    if isinstance(c, (UnaryForeignKey, SetValuedForeignKey)):
        return [(c.element, c.field), (c.target, c.target_field)]
    if isinstance(c, Inverse):
        return [(c.element, c.field), (c.element, c.key_field),
                (c.target, c.target_field), (c.target, c.target_key_field)]
    raise TypeError(f"not an L_u constraint: {c!r}")


class _ModelBuilder:
    """Materializes the token construction as an abstract model."""

    #: Safety cap on the padding fixpoint (see DESIGN.md: termination is
    #: guaranteed because cardinality cycles were collapsed by the finite
    #: closure; the cap guards against implementation bugs).
    MAX_ROUNDS = 200

    def __init__(self, engine: LuEngine, classes: _Classes,
                 sigma: list[Constraint]):
        self.engine = engine
        self.classes = classes
        self.sigma = sigma
        self.types = sorted({n[0] for n in classes.nodes})
        self.fields: dict[str, set[Field]] = {t: set() for t in self.types}
        for (t, f) in classes.nodes:
            self.fields[t].add(f)
        self.inverses = [c for c in sigma if isinstance(c, Inverse)]
        # Nodes used by more than one inverse are outside the fragment.
        used: dict[Node, int] = {}
        for inv in self.inverses:
            for n in ((inv.element, inv.field), (inv.target,
                                                 inv.target_field)):
                used[n] = used.get(n, 0) + 1
        self.supported = all(v == 1 for v in used.values())

    def key_nodes(self, t: str) -> list[Node]:
        return [n for n in self.engine.fin_keys if n[0] == t
                and n in self.classes.nodes]

    def build(self, phi: Constraint) -> AbstractModel | None:
        if not self.supported:
            return None
        want_two = isinstance(phi, UnaryKey)
        weak_target: Node | None = None
        witness_pad: Node | None = None
        if isinstance(phi, (UnaryForeignKey, SetValuedForeignKey)):
            target = (phi.target, phi.target_field)
            source = (phi.element, phi.field)
            if target not in self.engine.fin_keys:
                # Assign the target a constant; pad the source class so
                # it holds a token the constant can never equal.
                weak_target = target
                witness_pad = source
        if isinstance(phi, Inverse):
            # Inverse violations need bespoke handling; support the case
            # where both value attributes are unconstrained by Sigma.
            constrained = {n for inv in self.inverses
                           for n in ((inv.element, inv.field),
                                     (inv.target, inv.target_field))}
            constrained |= {(c.element, c.field) for c in self.sigma
                            if isinstance(c, SetValuedForeignKey)}
            if (phi.element, phi.field) in constrained or \
                    (phi.target, phi.target_field) in constrained:
                return None
        if witness_pad is not None:
            self.classes.pad(self.classes.class_of[witness_pad], 1)

        # Equalize per-type key cardinalities by forward padding.
        sizes = self._equalize(want_two, phi)
        if sizes is None:
            return None

        model = AbstractModel()
        for t in self.types:
            for f in self.fields[t]:
                if (t, f) in self.engine.arities.set_valued:
                    model.set_valued.add((t, f))

        # Elements with key/single-valued assignments.
        for t in self.types:
            n_elems = sizes[t]
            keys = self.key_nodes(t)
            enumerations: dict[Field, list[str]] = {}
            for n in keys:
                values = sorted(self.classes.values(n))
                if len(values) != n_elems:
                    return None  # equalization failed; bail out honestly
                enumerations[n[1]] = values
            for i in range(n_elems):
                e = AbstractElement()
                for f in sorted(self.fields[t], key=str):
                    node = (t, f)
                    if node in self.engine.arities.set_valued:
                        continue  # set-valued handled below
                    if f in enumerations:
                        e.values[f] = frozenset((enumerations[f][i],))
                    elif weak_target == node:
                        e.values[f] = frozenset((f"c{t}.{f}",))
                    else:
                        values = sorted(self.classes.values(node))
                        # Constant assignment; for a pure witness token
                        # prefer the padded/fresh one when present.
                        pick = values[-1] if witness_pad == node else values[0]
                        e.values[f] = frozenset((pick,))
                model.elements.setdefault(t, []).append(e)
            model.elements.setdefault(t, [])

        # Set-valued attributes bound by an inverse: maximal pairing.
        bound: set[Node] = set()
        for inv in self.inverses:
            self._realize_inverse(model, inv)
            bound.add((inv.element, inv.field))
            bound.add((inv.target, inv.target_field))
        # Free set-valued attributes: first element takes the whole class.
        for t in self.types:
            for f in self.fields[t]:
                node = (t, f)
                if node not in self.engine.arities.set_valued or \
                        node in bound:
                    continue
                elems = model.elements.get(t, [])
                for i, e in enumerate(elems):
                    e.values[f] = frozenset(
                        self.classes.values(node)) if i == 0 \
                        else frozenset()
        if isinstance(phi, Inverse):
            self._violate_inverse(model, phi)
        return model

    def _equalize(self, want_two: bool,
                  phi: Constraint) -> dict[str, int] | None:
        for _round in range(self.MAX_ROUNDS):
            changed = False
            sizes: dict[str, int] = {}
            for t in self.types:
                keys = self.key_nodes(t)
                if not keys:
                    sizes[t] = 2 if (want_two and t == phi.element) else 1
                    continue
                cards = {n: len(self.classes.values(n)) for n in keys}
                target = max(cards.values())
                if want_two and t == phi.element:
                    target = max(target, 2)
                for n, card in cards.items():
                    if card < target:
                        self.classes.pad(self.classes.class_of[n],
                                         target - card)
                        changed = True
                sizes[t] = target
            if not changed:
                return sizes
        return None

    def _realize_inverse(self, model: AbstractModel, inv: Inverse) -> None:
        """R = A x B pairing (see the completeness discussion in
        DESIGN.md): pair every x whose key lies in V(C_l') with every y
        whose key lies in V(C_l)."""
        v_l = self.classes.values((inv.element, inv.field))
        v_lp = self.classes.values((inv.target, inv.target_field))
        xs = [x for x in model.ext(inv.element)
              if x.single(inv.key_field) in v_lp]
        ys = [y for y in model.ext(inv.target)
              if y.single(inv.target_key_field) in v_l]
        x_side = frozenset(y.single(inv.target_key_field) for y in ys)
        y_side = frozenset(x.single(inv.key_field) for x in xs)
        for x in model.ext(inv.element):
            x.values[inv.field] = x_side if x in xs else frozenset()
        for y in model.ext(inv.target):
            y.values[inv.target_field] = y_side if y in ys else frozenset()

    def _violate_inverse(self, model: AbstractModel, phi: Inverse) -> None:
        """Make some y reference x's key without being referenced back."""
        xs = model.ext(phi.element)
        ys = model.ext(phi.target)
        if not xs or not ys:
            return
        x, y = xs[0], ys[0]
        xk = x.single(phi.key_field)
        if xk is None:
            return
        y.values[phi.target_field] = frozenset((xk,))
        x.values[phi.field] = frozenset()


# ---------------------------------------------------------------------------
# Infinite witnesses (the cycle-rule gap of Corollary 3.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AffineAttribute:
    """An attribute interpreted over ℕ as ``i -> i + shift``."""

    field: Field
    shift: int

    def value(self, i: int) -> str:
        return f"n{i + self.shift}"


@dataclass
class InfiniteWitness:
    """A finitely-presented infinite model over one element type.

    ``ext(element) = {e_0, e_1, ...}`` (all of ℕ) and every attribute is
    an affine map.  This presents the classical separator for
    implication vs finite implication: with ``Σ = {tau.a -> tau,
    tau.b -> tau, tau.a ⊆ tau.b}`` take ``b(i) = i`` (shift 0) and
    ``a(i) = i + 1``; then ``a`` and ``b`` are injective (keys), every
    ``a``-value is a ``b``-value, but ``b``'s value ``n0`` is no
    ``a``-value — ``tau.b ⊆ tau.a`` fails, so the finite-implication
    consequence is *not* an unrestricted one.
    """

    element: str
    attributes: tuple[AffineAttribute, ...]

    def _attr(self, f: Field) -> AffineAttribute:
        for a in self.attributes:
            if a.field == f:
                return a
        raise KeyError(str(f))

    def satisfies(self, c: Constraint) -> bool:
        """Symbolic evaluation on the affine family (single type only)."""
        if isinstance(c, UnaryKey):
            # i + s is injective in i for every shift: always a key.
            self._attr(c.field)
            return True
        if isinstance(c, UnaryForeignKey):
            if c.element != self.element or c.target != self.element:
                return False
            src = self._attr(c.field)
            dst = self._attr(c.target_field)
            # {i + s1 : i in N} subseteq {i + s2 : i in N}  iff  s1 >= s2.
            return src.shift >= dst.shift
        raise TypeError(
            "InfiniteWitness evaluates unary keys and foreign keys over "
            f"its single element type, got {c!r}")

    def check(self, sigma: Iterable[Constraint], phi: Constraint) -> bool:
        """Whether this model witnesses ``Σ ⊭ φ``."""
        return all(self.satisfies(c) for c in sigma) and \
            not self.satisfies(phi)

    def prefix(self, n: int) -> AbstractModel:
        """The finite restriction to ``{e_0..e_{n-1}}``.

        The prefix violates exactly the Σ-inclusions at the boundary —
        materializing why no finite model exists: truncation always
        clips the front of some shifted copy of ℕ.
        """
        model = AbstractModel()
        for i in range(n):
            e = AbstractElement()
            for a in self.attributes:
                e.values[a.field] = frozenset((a.value(i),))
            model.elements.setdefault(self.element, []).append(e)
        return model


def divergence_witness(element: str = "tau", key_a: str = "a",
                       key_b: str = "b") -> tuple[list[Constraint],
                                                  Constraint,
                                                  InfiniteWitness]:
    """The canonical Corollary 3.3 separator, packaged: returns
    ``(Σ, φ, witness)`` with ``Σ ⊨_f φ``, ``Σ ⊭ φ`` and a verified
    infinite witness."""
    fa, fb = Field(key_a), Field(key_b)
    sigma: list[Constraint] = [
        UnaryKey(element, fa),
        UnaryKey(element, fb),
        UnaryForeignKey(element, fa, element, fb),
    ]
    phi = UnaryForeignKey(element, fb, element, fa)
    witness = InfiniteWitness(element, (AffineAttribute(fa, 1),
                                        AffineAttribute(fb, 0)))
    return sigma, phi, witness
